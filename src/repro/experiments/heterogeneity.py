"""Shared evaluation helpers for the heterogeneous experiments (Figs 4-11).

Each helper builds a randomized topology family and evaluates
random-permutation traffic through the pipeline's cached solver-registry
entry point over several seeds, reporting mean/std per-flow throughput.
Disconnected samples score zero throughput (the LP optimum when some
demand cannot be routed), which is exactly how a physically stranded
cluster behaves. The seed-sweep loop itself lives in
:func:`repro.experiments.common.mean_throughput_over_seeds`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    mean_and_std,
    mean_throughput_over_seeds,
)
from repro.metrics.paths import average_shortest_path_length
from repro.pipeline.engine import evaluate_throughput
from repro.topology.heterogeneous import (
    heterogeneous_random_topology,
    mixed_linespeed_topology,
)
from repro.topology.two_cluster import (
    cluster_cut_capacity,
    two_cluster_random_topology,
)
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import spawn_seeds


@dataclass(frozen=True)
class TwoTypeConfig:
    """An equipment pool of two switch types plus a server count.

    ``large_ports``/``small_ports`` are *total* ports per switch (servers
    consume them).
    """

    num_large: int
    large_ports: int
    num_small: int
    small_ports: int
    total_servers: int
    label: str = ""

    @property
    def total_ports(self) -> int:
        return (
            self.num_large * self.large_ports + self.num_small * self.small_ports
        )

    def describe(self) -> str:
        return self.label or (
            f"{self.num_large}x{self.large_ports}p + "
            f"{self.num_small}x{self.small_ports}p, {self.total_servers} servers"
        )


def unbiased_throughput(
    config: TwoTypeConfig,
    servers_per_large: int,
    servers_per_small: int,
    runs: int = 3,
    seed=None,
) -> tuple[float, float]:
    """Mean/std throughput of the unbiased random interconnect (§5.1).

    Servers are attached per the given split; every remaining port joins
    one uniform random graph over all switches (no cross-cluster control).
    """
    port_counts: dict = {}
    servers: dict = {}
    for i in range(config.num_large):
        port_counts[("L", i)] = config.large_ports
        servers[("L", i)] = servers_per_large
    for i in range(config.num_small):
        port_counts[("S", i)] = config.small_ports
        servers[("S", i)] = servers_per_small

    def build(child):
        topo = heterogeneous_random_topology(port_counts, servers, seed=child)
        return topo, lambda: random_permutation_traffic(topo, seed=child)

    return mean_throughput_over_seeds(build, runs, seed)


@dataclass(frozen=True)
class ClusteredSample:
    """One two-cluster measurement with the quantities §6 analyses need."""

    throughput: float
    cut_capacity: float
    total_capacity: float
    aspl: float


def clustered_throughput(
    config: TwoTypeConfig,
    servers_per_large: int,
    servers_per_small: int,
    cross_fraction: float,
    runs: int = 3,
    seed=None,
    detailed: bool = False,
):
    """Mean/std throughput of the cross-controlled two-cluster network.

    With ``detailed=True`` returns ``(mean, std, samples)`` where samples
    carry cut capacity, total capacity and ASPL per run (for Figures 10-11).
    """
    samples: list[ClusteredSample] = []
    for child in spawn_seeds(seed, runs):
        topo = two_cluster_random_topology(
            num_large=config.num_large,
            large_network_ports=config.large_ports - servers_per_large,
            num_small=config.num_small,
            small_network_ports=config.small_ports - servers_per_small,
            servers_per_large=servers_per_large,
            servers_per_small=servers_per_small,
            cross_fraction=cross_fraction,
            clamp_cross=True,
            seed=child,
        )
        cut = cluster_cut_capacity(topo)
        if not topo.is_connected():
            samples.append(ClusteredSample(0.0, cut, topo.total_capacity, 0.0))
            continue
        traffic = random_permutation_traffic(topo, seed=child)
        throughput = evaluate_throughput(topo, traffic).throughput
        samples.append(
            ClusteredSample(
                throughput=throughput,
                cut_capacity=cut,
                total_capacity=topo.total_capacity,
                aspl=average_shortest_path_length(topo),
            )
        )
    mean, std = mean_and_std(s.throughput for s in samples)
    if detailed:
        return mean, std, samples
    return mean, std


def mixed_speed_throughput(
    config: TwoTypeConfig,
    servers_per_large: int,
    servers_per_small: int,
    cross_fraction: float,
    high_ports_per_large: int,
    high_speed: float,
    runs: int = 3,
    seed=None,
) -> tuple[float, float]:
    """Mean/std throughput with extra high-line-speed ports on large switches.

    ``config`` port counts refer to *low-speed* ports; the high-speed mesh
    among large switches is additional equipment (§5.2's setting).
    """

    def build(child):
        topo = mixed_linespeed_topology(
            num_large=config.num_large,
            large_low_ports=config.large_ports - servers_per_large,
            num_small=config.num_small,
            small_low_ports=config.small_ports - servers_per_small,
            servers_per_large=servers_per_large,
            servers_per_small=servers_per_small,
            high_ports_per_large=high_ports_per_large,
            high_speed=high_speed,
            cross_fraction=cross_fraction,
            seed=child,
        )
        return topo, lambda: random_permutation_traffic(topo, seed=child)

    return mean_throughput_over_seeds(build, runs, seed)
