"""Growth study: incremental random-graph expansion vs the fat-tree ladder.

The paper's operational argument for random graphs is *expandability*:
a Jellyfish-style fabric absorbs any number of new switches by cheap
link swaps, while a fat-tree upgrades only at the discrete rungs of its
``5k^2/4`` ladder — between rungs, new equipment sits idle, and crossing
a rung rewires a large fraction of the fabric. This experiment grows
both designs along the *same* equipment timeline and measures, at every
stage, throughput (exact LP while small, calibrated estimators at
scale), servers actually deployed, idle switches, and rewiring/cabling
churn.

Default parameters keep CI fast (tens of switches, exact LP
everywhere); paper scale (``--paper``) runs the headline trajectory —
an RRG grown 64 -> 2048 in five doublings against the fat-tree upgrade
ladder — entirely on estimator backends beyond the exact limit.
"""

from __future__ import annotations

from repro.estimate import calibrate_estimators
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentResult, ExperimentSeries
from repro.flow.solvers import get_solver
from repro.growth.plan import GrowthSchedule
from repro.growth.trajectory import (
    DEFAULT_ESTIMATOR,
    DEFAULT_EXACT_LIMIT,
    run_growth_sweep,
)

#: Strategies the study compares by default.
DEFAULT_STRATEGIES = ("swap", "swap_anneal", "rebuild", "fattree_upgrade")

#: Strategies that show the granularity gap (series ``<name>/servers``).
GRANULARITY_STRATEGIES = ("swap", "fattree_upgrade")


def _family_for(strategy: str) -> str:
    """Calibration family an estimator band is fit against."""
    return "fat-tree" if strategy.startswith("fattree") else "rrg"


def _calibration_families(
    network_degree: int, servers_per_switch: int
) -> "dict[str, dict]":
    """Small-N calibration specs matching the study's own equipment."""
    return {
        "rrg": {
            "kind": "rrg",
            "params": {
                "network_degree": network_degree,
                "servers_per_switch": servers_per_switch,
            },
            "size_param": "num_switches",
            "sizes": (16, 24, 40),
        },
        "fat-tree": {
            "kind": "fat-tree",
            "params": {},
            "size_param": "k",
            "sizes": (4, 6),
        },
    }


def run_growth_study(
    start: int = 12,
    target: int = 32,
    num_stages: int = 2,
    network_degree: int = 4,
    servers_per_switch: int = 2,
    strategies: "tuple[str, ...]" = DEFAULT_STRATEGIES,
    traffic: str = "permutation",
    solver: str = "auto",
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    estimator: str = DEFAULT_ESTIMATOR,
    calibration_margin: float = 0.25,
    anneal_steps: int = 150,
    runs: int = 2,
    seed: int = 0,
    workers: int = 1,
) -> ExperimentResult:
    """Throughput and granularity along one shared equipment timeline.

    One throughput series per strategy (x = the stage's switch budget),
    plus ``<strategy>/servers`` series for the granularity pair (random
    vs fat-tree): the random fabric's server count climbs smoothly with
    the budget while the ladder's is a step function. Metadata records
    per-strategy churn tables (links touched, cable length, idle
    switches per stage) and, when estimators are in play, the
    calibration table their error bands came from.
    """
    if not strategies:
        raise ExperimentError("growth study needs at least one strategy")
    schedule = GrowthSchedule.geometric(
        start,
        target,
        num_stages,
        name="growth-study",
        network_degree=network_degree,
        servers_per_switch=servers_per_switch,
    )

    # Calibrate only when some stage will actually run an estimator: the
    # bands are fit against exact LPs at small N, under this study's own
    # equipment parameters and workload.
    estimator_bands: "dict[str, tuple]" = {}
    calibration_dict = None
    uses_estimator = (
        solver == "auto" and schedule.final_switches > exact_limit
    ) or (solver != "auto" and get_solver(solver).estimate)
    if uses_estimator:
        estimator_key = estimator if solver == "auto" else solver
        table = calibrate_estimators(
            (estimator_key,),
            families=_calibration_families(
                network_degree, servers_per_switch
            ),
            traffic=traffic,
            margin=calibration_margin,
        )
        calibration_dict = table.to_dict()
        estimator_bands = {
            strategy: table.band(_family_for(strategy), estimator_key)
            for strategy in strategies
        }

    # The ladder upgrades with the same fixed-radix switches the random
    # fabric deploys (network ports + server ports), so it steps between
    # rungs *and* saturates at its top rung while the random graph keeps
    # absorbing equipment — both halves of the paper's granularity
    # argument in one comparison.
    sweep = run_growth_sweep(
        schedule,
        strategies,
        seeds=runs,
        base_seed=seed,
        workers=workers,
        strategy_options={
            "swap_anneal": {"steps": anneal_steps},
            "fattree_upgrade": {
                "max_arity": network_degree + servers_per_switch
            },
        },
        estimator_bands=estimator_bands,
        traffic=traffic,
        solver=solver,
        exact_limit=exact_limit,
        estimator=estimator,
    )

    result = ExperimentResult(
        experiment_id="growth",
        title="Incremental growth vs the fat-tree upgrade ladder",
        x_label="equipment budget (switches)",
        y_label="throughput per flow (servers series: servers deployed)",
        metadata={
            "schedule": schedule.to_dict(),
            "strategies": list(strategies),
            "traffic": traffic,
            "solver": solver,
            "exact_limit": exact_limit,
            "estimator": estimator,
            "runs": runs,
            "seed": seed,
            "calibration": calibration_dict,
        },
    )

    summary = sweep.mean_series()
    labels: "dict[str, str]" = {}
    for trajectory in sweep.trajectories:
        # Map the sweep's option-decorated labels (e.g.
        # ``swap_anneal(steps=150,...)``) back to plain strategy names.
        for name in strategies:
            if trajectory.strategy == name or trajectory.strategy.startswith(
                f"{name}("
            ):
                labels[trajectory.strategy] = name
    series: "dict[str, ExperimentSeries]" = {}
    for entry in summary:
        name = labels.get(entry["strategy"], entry["strategy"])
        if name not in series:
            series[name] = ExperimentSeries(name)
            result.add_series(series[name])
        series[name].add(
            entry["target_switches"],
            entry["throughput_mean"],
            entry["throughput_std"],
        )
    for entry in summary:
        name = labels.get(entry["strategy"], entry["strategy"])
        if name not in GRANULARITY_STRATEGIES:
            continue
        key = f"{name}/servers"
        if key not in series:
            series[key] = ExperimentSeries(key)
            result.add_series(series[key])
        series[key].add(entry["target_switches"], entry["num_servers_mean"])

    result.metadata["stage_summary"] = summary
    result.metadata["churn"] = {
        labels.get(entry["strategy"], entry["strategy"]): {}
        for entry in summary
    }
    for entry in summary:
        name = labels.get(entry["strategy"], entry["strategy"])
        result.metadata["churn"][name][entry["target_switches"]] = {
            "links_touched": entry["links_touched_mean"],
            "cable_length": entry["cable_length_mean"],
            "idle_switches": entry["idle_switches_mean"],
            "cumulative_links_touched": entry[
                "cumulative_links_touched_mean"
            ],
        }
    return result
