"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments list
    repro-experiments run fig1a fig1b --runs 3 --seed 0
    repro-experiments run fig12a --paper
    repro-experiments run all --out results.txt
    repro-experiments analyze topo.json --traffic gravity
    repro-experiments sweep --topologies rrg --topo-param network_degree=6 \\
        --topo-param servers_per_switch=4 --sizes 16,24 \\
        --traffics permutation,stride --solvers edge_lp,ecmp --seeds 3 \\
        --workers 4 --cache-dir .sweep-cache --json sweep.json --csv sweep.csv
    repro-experiments sweep --grid grid.json --workers 4
    repro-experiments sweep --topologies rrg --topo-param network_degree=6 \\
        --topo-param servers_per_switch=4 --sizes 24 --seeds 3 \\
        --failure-rates 0 0.02 0.05 0.1 --failure-model random_links
    repro-experiments sweep --topologies rrg --topo-param network_degree=8 \\
        --topo-param servers_per_switch=1 --sizes 1000,5000,10000 \\
        --traffics permutation --solvers estimate_bound,estimate_cut
    repro-experiments sweep --grid grid.json --manifest run-manifest.json
    repro-experiments sweep --resume run-manifest.json
    repro-experiments serve --socket eval.sock --workers 4 \\
        --cache-dir .sweep-cache --http-port 8642
    repro-experiments submit --socket eval.sock --grid grid.json \\
        --priority interactive
    repro-experiments fidelity --k 4 --runs 2
    repro-experiments grow --start 64 --target 2048 --stages 5 \\
        --degree 8 --servers-per-switch 4 \\
        --strategies swap,rebuild,fattree_upgrade --seeds 2 \\
        --workers 4 --cache-dir .sweep-cache --json growth.json
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time

from repro.experiments.registry import (
    available_experiments,
    describe_experiments,
    run_experiment,
)


def _parse_value(text: str):
    """Parse a CLI parameter value: int/float/bool/tuple where possible."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(entries: "list[str] | None") -> dict:
    """Parse repeated ``key=value`` flags into a keyword dict."""
    params: dict = {}
    for entry in entries or ():
        key, sep, value = entry.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad parameter {entry!r}; expected key=value")
        params[key] = _parse_value(value)
    return params


def _split_list(text: "str | None") -> list[str]:
    return [item for item in (text or "").split(",") if item]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures of 'High Throughput Data Center Topology "
            "Design' (NSDI 2014)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    from repro.traffic.registry import available_traffic_models

    analyze = sub.add_parser(
        "analyze", help="analyze a serialized topology (JSON) under a workload"
    )
    analyze.add_argument("topology", help="path to a topology JSON file")
    analyze.add_argument(
        "--traffic",
        default="permutation",
        choices=[*available_traffic_models(), "none"],
        help="workload to solve (default: random permutation)",
    )
    analyze.add_argument("--seed", type=int, default=0, help="workload seed")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. fig1a fig12a) or 'all'",
    )
    run.add_argument(
        "--paper",
        action="store_true",
        help="use paper-scale parameters (slow; minutes to hours)",
    )
    run.add_argument("--runs", type=int, default=None, help="runs per point")
    run.add_argument("--seed", type=int, default=None, help="root RNG seed")
    run.add_argument(
        "--out", type=str, default=None, help="also append tables to this file"
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative scenario grid (topologies x traffic x "
        "solvers x sizes x seeds)",
    )
    sweep.add_argument(
        "--grid",
        type=str,
        default=None,
        help="JSON grid config file (ScenarioGrid.to_dict schema); other "
        "grid flags are ignored when given, except the failure flags, "
        "which apply on top",
    )
    sweep.add_argument(
        "--name", type=str, default="sweep", help="grid name for artifacts"
    )
    sweep.add_argument(
        "--topologies",
        type=str,
        default="rrg",
        help="comma-separated topology registry kinds",
    )
    sweep.add_argument(
        "--topo-param",
        action="append",
        metavar="KEY=VALUE",
        help="topology constructor parameter, applied to every kind "
        "(repeatable)",
    )
    sweep.add_argument(
        "--sizes",
        type=str,
        default=None,
        help="comma-separated sizes injected as the topology size parameter",
    )
    sweep.add_argument(
        "--size-param",
        type=str,
        default="num_switches",
        help="topology parameter the sizes map to (default: num_switches)",
    )
    sweep.add_argument(
        "--traffics",
        type=str,
        default="permutation",
        help="comma-separated traffic models",
    )
    sweep.add_argument(
        "--traffic-param",
        action="append",
        metavar="KEY=VALUE",
        help="traffic constructor parameter, applied to every model "
        "(repeatable)",
    )
    sweep.add_argument(
        "--solvers",
        type=str,
        default="edge_lp",
        help="comma-separated solver registry keys",
    )
    sweep.add_argument(
        "--solver-param",
        action="append",
        metavar="KEY=VALUE",
        help="solver option, applied to every solver (repeatable)",
    )
    sweep.add_argument(
        "--failure-rates",
        type=float,
        nargs="+",
        default=None,
        metavar="RATE",
        help="failure axis: one grid column per rate (0 means the intact "
        "fabric; its cells share seeds and cache entries with "
        "failure-free sweeps)",
    )
    sweep.add_argument(
        "--failure-model",
        type=str,
        default="random_links",
        help="failure model for --failure-rates: random_links, "
        "random_switches, or correlated (default: random_links)",
    )
    sweep.add_argument(
        "--failure-param",
        action="append",
        metavar="KEY=VALUE",
        help="failure-model parameter, e.g. cluster=small for correlated "
        "failures (repeatable)",
    )
    sweep.add_argument(
        "--unreachable",
        type=str,
        choices=("error", "drop"),
        default=None,
        help="demand policy on partitioned fabrics; failure cells default "
        "to 'drop', intact cells to 'error'",
    )
    sweep.add_argument(
        "--seeds", type=int, default=1, help="replicates per combination"
    )
    sweep.add_argument(
        "--base-seed", type=int, default=0, help="root seed for cell seeding"
    )
    sweep.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    sweep.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="content-addressed result cache directory (reused across runs)",
    )
    sweep.add_argument(
        "--manifest",
        type=str,
        default=None,
        help="write a resumable run manifest here (rewritten atomically "
        "after every completed work item)",
    )
    sweep.add_argument(
        "--resume",
        type=str,
        default=None,
        metavar="MANIFEST",
        help="re-attach to an interrupted run: cells the manifest records "
        "are skipped, the rest re-run against its cache (grid flags are "
        "ignored; reports re-solved / cache-hit / skipped counts)",
    )
    sweep.add_argument(
        "--json", type=str, default=None, help="write full sweep JSON here"
    )
    sweep.add_argument(
        "--csv", type=str, default=None, help="write per-cell CSV here"
    )
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress"
    )
    sweep.add_argument(
        "--profile",
        type=str,
        nargs="?",
        const="profile_sweep.json",
        default=None,
        metavar="PATH",
        help="emit a repro.perf JSON span artifact (timer spans + cProfile "
        "hotspots; cProfile covers this process only — with --workers > 1 "
        "the solve time lives in the span records) to PATH "
        "(default: profile_sweep.json)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the evaluation daemon: JSON-lines over a unix socket "
        "(streaming cell results), optional minimal HTTP; interactive "
        "submits preempt queued bulk sweeps, and repeat grids answer "
        "from the grid memo without touching a worker",
    )
    serve.add_argument(
        "--socket",
        type=str,
        default="repro-eval.sock",
        help="unix socket path to listen on (default: repro-eval.sock)",
    )
    serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="also serve minimal HTTP (GET /ping, GET /stats, "
        "POST /submit) on this localhost port",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker processes"
    )
    serve.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="content-addressed result cache directory (also persists the "
        "grid memo across daemon restarts)",
    )
    serve.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help="backpressure bound on concurrently dispatched work items "
        "(default: 2 x workers)",
    )
    serve.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="per-attempt wall-clock timeout for work items (retried "
        "with backoff until attempts run out)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit a grid to a running daemon and stream its cells",
    )
    submit.add_argument(
        "--socket",
        type=str,
        default="repro-eval.sock",
        help="daemon unix socket path",
    )
    submit.add_argument(
        "--grid",
        type=str,
        required=True,
        help="JSON grid config file (ScenarioGrid.to_dict schema)",
    )
    submit.add_argument(
        "--priority",
        type=str,
        default="bulk",
        help="'interactive' (jumps queued bulk work) or 'bulk'",
    )
    submit.add_argument(
        "--no-batch",
        action="store_true",
        help="disable shared-instance batching (reference path)",
    )
    submit.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress"
    )

    fidelity = sub.add_parser(
        "fidelity",
        help="routing-fidelity study: ECMP/MPTCP vs the exact LP on "
        "matched equipment, with calibrated-band and route-cache stats",
    )
    fidelity.add_argument(
        "--k", type=int, default=None, help="fat-tree arity / equipment scale"
    )
    fidelity.add_argument(
        "--runs", type=int, default=None, help="replicates per family"
    )
    fidelity.add_argument("--seed", type=int, default=None, help="root seed")
    fidelity.add_argument(
        "--paper",
        action="store_true",
        help="use paper-scale parameters (slower)",
    )

    grow = sub.add_parser(
        "grow",
        help="run a multi-stage growth campaign (strategies x seeds over "
        "one equipment schedule)",
    )
    grow.add_argument(
        "--schedule",
        type=str,
        default=None,
        help="JSON growth schedule file (GrowthSchedule.to_dict schema); "
        "--start/--target/--stages/--degree/--servers-per-switch are "
        "ignored when given",
    )
    grow.add_argument(
        "--name", type=str, default="growth", help="schedule name for artifacts"
    )
    grow.add_argument(
        "--start", type=int, default=64, help="initial switch budget"
    )
    grow.add_argument(
        "--target", type=int, default=2048, help="final switch budget"
    )
    grow.add_argument(
        "--stages",
        type=int,
        default=5,
        help="growth stages after the initial build (geometric spacing)",
    )
    grow.add_argument(
        "--degree", type=int, default=8, help="network ports per switch"
    )
    grow.add_argument(
        "--servers-per-switch", type=int, default=4, help="servers per switch"
    )
    grow.add_argument(
        "--strategies",
        type=str,
        default="swap,fattree_upgrade",
        help="comma-separated growth strategies (swap, swap_anneal, "
        "rebuild, fattree_upgrade)",
    )
    grow.add_argument(
        "--traffic", type=str, default="permutation", help="traffic model"
    )
    grow.add_argument(
        "--solver",
        type=str,
        default="auto",
        help="throughput solver; 'auto' uses the exact LP up to "
        "--exact-limit switches and --estimator beyond it",
    )
    grow.add_argument(
        "--exact-limit",
        type=int,
        default=80,
        help="largest fabric the auto policy solves exactly",
    )
    grow.add_argument(
        "--estimator",
        type=str,
        default="estimate_bound",
        help="estimator backend the auto policy scales with",
    )
    grow.add_argument(
        "--anneal-steps",
        type=int,
        default=150,
        help="annealing budget per stage for the swap_anneal strategy",
    )
    grow.add_argument(
        "--seeds", type=int, default=1, help="replicates per strategy"
    )
    grow.add_argument(
        "--base-seed", type=int, default=0, help="root seed for replicates"
    )
    grow.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    grow.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="content-addressed result cache directory (reused across runs)",
    )
    grow.add_argument(
        "--json", type=str, default=None, help="write full campaign JSON here"
    )
    grow.add_argument(
        "--csv", type=str, default=None, help="write per-stage CSV here"
    )
    grow.add_argument(
        "--quiet", action="store_true", help="suppress per-trajectory progress"
    )
    grow.add_argument(
        "--profile",
        type=str,
        nargs="?",
        const="profile_grow.json",
        default=None,
        metavar="PATH",
        help="emit a repro.perf JSON span artifact (timer spans + cProfile "
        "hotspots; cProfile covers this process only) to PATH "
        "(default: profile_grow.json)",
    )

    replay = sub.add_parser(
        "replay",
        help="replay a time-varying traffic timeline step by step, "
        "warm-starting the solver between steps (VDC workload generator "
        "or a JSON/CSV trace file)",
    )
    replay.add_argument(
        "--name", type=str, default="replay", help="run name for artifacts"
    )
    replay.add_argument(
        "--topology",
        type=str,
        default="rrg",
        help="topology registry kind (default: rrg)",
    )
    replay.add_argument(
        "--topo-param",
        action="append",
        metavar="KEY=VALUE",
        help="topology constructor parameter (repeatable)",
    )
    replay.add_argument(
        "--trace",
        type=str,
        default=None,
        help="JSON/CSV trace file (step,src,dst,units rows; step 0 is the "
        "base matrix, later steps are deltas); timeline flags are "
        "ignored when given",
    )
    replay.add_argument(
        "--timeline",
        type=str,
        default="vdc",
        help="timeline generator registry kind (default: vdc)",
    )
    replay.add_argument(
        "--steps", type=int, default=100, help="generated timeline length"
    )
    replay.add_argument(
        "--timeline-param",
        action="append",
        metavar="KEY=VALUE",
        help="timeline generator parameter, e.g. arrival_rate=1.5 "
        "(repeatable)",
    )
    replay.add_argument(
        "--solver",
        type=str,
        default="edge_lp",
        help="solver registry key; edge_lp and bound re-solve "
        "incrementally between steps, others fall back to per-step "
        "cold solves",
    )
    replay.add_argument(
        "--solver-param",
        action="append",
        metavar="KEY=VALUE",
        help="solver option (repeatable)",
    )
    replay.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the topology build and the timeline generator",
    )
    replay.add_argument(
        "--window",
        type=int,
        default=None,
        help="timeline steps per work item (the warm-chain unit; "
        "default: 16)",
    )
    replay.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    replay.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="content-addressed result cache directory; replay steps are "
        "addressed by chained content fingerprints, so a warm re-run "
        "of the same trace answers every step from the cache",
    )
    replay.add_argument(
        "--manifest",
        type=str,
        default=None,
        help="write a resumable run manifest here",
    )
    replay.add_argument(
        "--resume",
        type=str,
        default=None,
        metavar="MANIFEST",
        help="re-attach to an interrupted replay (other flags are ignored)",
    )
    replay.add_argument(
        "--json", type=str, default=None, help="write full replay JSON here"
    )
    replay.add_argument(
        "--csv", type=str, default=None, help="write per-step CSV here"
    )
    replay.add_argument(
        "--quiet", action="store_true", help="suppress per-step progress"
    )

    design = sub.add_parser(
        "design",
        help="cost-Pareto topology designer: search buildable designs "
        "from a parts catalog for the cost x throughput x resilience x "
        "churn frontier under a budget",
    )
    design.add_argument(
        "--budget",
        type=float,
        required=True,
        help="total dollar budget (equipment + cabling)",
    )
    design.add_argument(
        "--servers", type=int, default=16, help="server target for candidates"
    )
    design.add_argument(
        "--catalog",
        type=str,
        default=None,
        help="parts catalog JSON (PartsCatalog schema); default: the "
        "built-in 4-SKU catalog",
    )
    design.add_argument(
        "--traffic", type=str, default="permutation", help="traffic model"
    )
    design.add_argument(
        "--replicates", type=int, default=2, help="instances per design point"
    )
    design.add_argument(
        "--base-seed", type=int, default=0, help="root seed for replicates"
    )
    design.add_argument(
        "--failure-model",
        type=str,
        default="random_links",
        help="failure model for the resilience axis ('none' disables it)",
    )
    design.add_argument(
        "--failure-rate",
        type=float,
        default=0.1,
        help="failure rate for the resilience axis",
    )
    design.add_argument(
        "--estimator",
        type=str,
        default="estimate_bound",
        help="calibrated estimator for designs above --exact-limit",
    )
    design.add_argument(
        "--exact-limit",
        type=int,
        default=120,
        help="largest fabric (switches) evaluated with the exact LP",
    )
    design.add_argument(
        "--anneal-steps",
        type=int,
        default=0,
        help="annealing mutations after the generator population",
    )
    design.add_argument(
        "--generators",
        type=str,
        default=None,
        help="comma-separated candidate generators (default: all; see "
        "repro.design.available_generators)",
    )
    design.add_argument(
        "--no-promote",
        action="store_true",
        help="skip the exact-LP confirmation pass over frontier finalists",
    )
    design.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    design.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="content-addressed result cache directory; a warm re-run of "
        "the same spec + catalog answers every solve from the cache",
    )
    design.add_argument(
        "--json", type=str, default=None, help="write full frontier JSON here"
    )
    design.add_argument(
        "--csv", type=str, default=None, help="write per-design CSV here"
    )
    design.add_argument(
        "--quiet", action="store_true", help="suppress the frontier table"
    )
    return parser


def _failure_axis(args) -> "tuple | None":
    """Build the failure axis from --failure-* flags (None when absent)."""
    if not args.failure_rates:
        return None
    from repro.resilience import FailureSpec

    params = _parse_params(args.failure_param)
    return tuple(
        FailureSpec.make(args.failure_model, rate=rate, **params)
        for rate in args.failure_rates
    )


def _grid_from_args(args) -> "object":
    from dataclasses import replace

    from repro.flow.solvers import SolverConfig
    from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec

    failures = _failure_axis(args)
    if args.grid:
        with open(args.grid, "r", encoding="utf-8") as handle:
            grid = ScenarioGrid.from_dict(json.load(handle))
        if failures is not None:
            grid = replace(grid, failures=failures)
        if args.unreachable is not None:
            grid = replace(
                grid,
                solvers=tuple(
                    SolverConfig.make(
                        config.name,
                        **{
                            **config.options_dict(),
                            "unreachable": args.unreachable,
                        },
                    )
                    for config in grid.solvers
                ),
            )
        return grid

    topo_params = _parse_params(args.topo_param)
    traffic_params = _parse_params(args.traffic_param)
    solver_params = _parse_params(args.solver_param)
    if args.unreachable is not None:
        solver_params["unreachable"] = args.unreachable
    sizes = (
        tuple(int(s) for s in _split_list(args.sizes)) if args.sizes else None
    )
    return ScenarioGrid(
        name=args.name,
        topologies=tuple(
            TopologySpec.make(kind, **topo_params)
            for kind in _split_list(args.topologies)
        ),
        traffics=tuple(
            TrafficSpec.make(model, **traffic_params)
            for model in _split_list(args.traffics)
        ),
        solvers=tuple(
            SolverConfig.make(solver, **solver_params)
            for solver in _split_list(args.solvers)
        ),
        sizes=sizes,
        seeds=args.seeds,
        base_seed=args.base_seed,
        size_param=args.size_param,
        failures=failures,
    )


def _make_profiler(args, label: str):
    """(profiler, scope) for a ``--profile`` run; inert otherwise."""
    from contextlib import nullcontext

    if not getattr(args, "profile", None):
        return None, nullcontext()
    from repro.perf import Profiler, profiling

    profiler = Profiler(label=label, cprofile=True)
    return profiler, profiling(profiler)


def _run_sweep(args) -> int:
    from contextlib import nullcontext

    from repro.perf import perf_span
    from repro.pipeline.engine import resume_grid, run_grid

    profiler, scope = _make_profiler(args, "sweep")
    with scope:
        if args.resume:
            grid = None
        else:
            with perf_span("grid"):
                grid = _grid_from_args(args)
            total = len(grid)
            print(
                f"sweep {grid.name!r}: {total} cells, {args.workers} worker(s)"
            )

        def progress(done: int, count: int, cell) -> None:
            if profiler is not None:
                profiler.record(
                    "cell",
                    cell.elapsed_s,
                    scenario=cell.scenario.label(),
                    cache_hit=cell.cache_hit,
                )
            if not args.quiet:
                hit = " [cached]" if cell.cache_hit else ""
                print(
                    f"  [{done}/{count}] {cell.scenario.label()}: "
                    f"throughput {cell.throughput:.4f}{hit}"
                )

        profiled = profiler.profiled() if profiler is not None else nullcontext()
        if args.resume:
            with perf_span("run", workers=args.workers), profiled:
                sweep = resume_grid(
                    args.resume, workers=args.workers, progress=progress
                )
            counts = sweep.solve_counts or {}
            print(
                f"resumed {sweep.grid.name!r} from {args.resume}: "
                f"{counts.get('re_solved', 0)} re-solved, "
                f"{counts.get('cache_hit', 0)} cache-hit, "
                f"{counts.get('skipped', 0)} skipped"
            )
        else:
            with perf_span("run", cells=total, workers=args.workers), profiled:
                sweep = run_grid(
                    grid,
                    workers=args.workers,
                    cache_dir=args.cache_dir,
                    progress=progress,
                    manifest=args.manifest,
                )
        print(sweep.to_table())
        with perf_span("artifacts"):
            if args.json:
                sweep.write_json(args.json)
                print(f"wrote {args.json}")
            if args.csv:
                sweep.write_csv(args.csv)
                print(f"wrote {args.csv}")
    if profiler is not None:
        profiler.write_json(args.profile)
        print(f"wrote profile {args.profile}")
    return 0


def _run_grow(args) -> int:
    from contextlib import nullcontext

    from repro.growth.plan import GrowthSchedule
    from repro.growth.trajectory import run_growth_sweep
    from repro.perf import perf_span

    profiler, scope = _make_profiler(args, "grow")
    with scope:
        with perf_span("schedule"):
            if args.schedule:
                with open(args.schedule, "r", encoding="utf-8") as handle:
                    schedule = GrowthSchedule.from_dict(json.load(handle))
            else:
                schedule = GrowthSchedule.geometric(
                    args.start,
                    args.target,
                    args.stages,
                    name=args.name,
                    network_degree=args.degree,
                    servers_per_switch=args.servers_per_switch,
                )
        strategies = tuple(_split_list(args.strategies))
        print(
            f"growth {schedule.name!r}: {len(schedule)} stages to "
            f"N={schedule.final_switches}, {len(strategies)} strategies x "
            f"{args.seeds} seed(s), {args.workers} worker(s)"
        )

        def progress(done: int, count: int, trajectory) -> None:
            final = trajectory.final()
            hits = sum(1 for r in trajectory.records if r.cache_hit)
            if profiler is not None:
                profiler.record(
                    "trajectory",
                    sum(r.elapsed_s for r in trajectory.records),
                    strategy=trajectory.strategy,
                    replicate=trajectory.replicate,
                    cache_hits=hits,
                )
            if not args.quiet:
                print(
                    f"  [{done}/{count}] {trajectory.strategy} rep"
                    f"{trajectory.replicate}: final throughput "
                    f"{final.throughput:.4f} at N={final.num_switches}, "
                    f"{final.cumulative_links_touched} links touched "
                    f"({hits}/{len(trajectory.records)} cached)"
                )

        profiled = profiler.profiled() if profiler is not None else nullcontext()
        with perf_span(
            "run", strategies=len(strategies), workers=args.workers
        ), profiled:
            sweep = run_growth_sweep(
                schedule,
                strategies,
                seeds=args.seeds,
                base_seed=args.base_seed,
                workers=args.workers,
                cache_dir=args.cache_dir,
                strategy_options={"swap_anneal": {"steps": args.anneal_steps}},
                traffic=args.traffic,
                solver=args.solver,
                exact_limit=args.exact_limit,
                estimator=args.estimator,
                progress=progress,
            )
        print(sweep.to_table())
        with perf_span("artifacts"):
            if args.json:
                sweep.write_json(args.json)
                print(f"wrote {args.json}")
            if args.csv:
                sweep.write_csv(args.csv)
                print(f"wrote {args.csv}")
    if profiler is not None:
        profiler.write_json(args.profile)
        print(f"wrote profile {args.profile}")
    return 0


def _replay_plan_from_args(args):
    from repro.flow.solvers import SolverConfig
    from repro.pipeline.replay import DEFAULT_WINDOW, ReplayPlan
    from repro.pipeline.scenario import TopologySpec
    from repro.traffic.timeline import make_timeline, read_trace

    spec = TopologySpec.make(args.topology, **_parse_params(args.topo_param))
    if args.trace:
        timeline = read_trace(args.trace)
    else:
        topo = spec.build(seed=args.seed)
        timeline = make_timeline(
            args.timeline,
            topo,
            seed=args.seed,
            steps=args.steps,
            **_parse_params(args.timeline_param),
        )
    return ReplayPlan(
        name=args.name,
        topology=spec,
        timeline=timeline,
        solver=SolverConfig.make(
            args.solver, **_parse_params(args.solver_param)
        ),
        seed=args.seed,
        window=args.window if args.window is not None else DEFAULT_WINDOW,
    )


def _run_replay(args) -> int:
    from repro.pipeline.replay import resume_replay, run_replay

    def progress(done: int, count: int, cell) -> None:
        if not args.quiet:
            mode = cell.replay_mode or ("cached" if cell.cache_hit else "?")
            print(
                f"  [{done}/{count}] {cell.scenario.label()}: "
                f"throughput {cell.throughput:.4f} [{mode}]"
            )

    if args.resume:
        result = resume_replay(
            args.resume, workers=args.workers, progress=progress
        )
    else:
        plan = _replay_plan_from_args(args)
        print(
            f"replay {plan.name!r}: {plan.num_steps} steps of "
            f"{plan.timeline.name!r} on {plan.topology.label()}, "
            f"window {plan.window}, {args.workers} worker(s)"
        )
        result = run_replay(
            plan,
            workers=args.workers,
            cache_dir=args.cache_dir,
            progress=progress,
            manifest=args.manifest,
        )
    print(result.summary())
    retained = result.retained_series()
    if retained:
        print(
            f"retained throughput vs t0: min {min(retained):.4f}, "
            f"final {retained[-1]:.4f}"
        )
    if args.json:
        result.write_json(args.json)
        print(f"wrote {args.json}")
    if args.csv:
        result.write_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _run_design(args) -> int:
    from repro.design import DesignSpec, PartsCatalog, default_catalog, run_design

    catalog = (
        PartsCatalog.load(args.catalog) if args.catalog else default_catalog()
    )
    spec = DesignSpec.make(
        budget=args.budget,
        servers=args.servers,
        traffic=args.traffic,
        replicates=args.replicates,
        base_seed=args.base_seed,
        failure_model=args.failure_model,
        failure_rate=args.failure_rate,
        estimator=args.estimator,
        exact_limit=args.exact_limit,
        anneal_steps=args.anneal_steps,
        generators=tuple(_split_list(args.generators)),
    )
    if not args.quiet:
        print(
            f"design: budget {spec.budget:g}, {spec.servers} servers, "
            f"{len(catalog.skus)} SKUs, {args.workers} worker(s)"
        )
    report = run_design(
        spec,
        catalog=catalog,
        cache_dir=args.cache_dir,
        workers=args.workers,
        promote=not args.no_promote,
    )
    if args.quiet:
        lines = report.summary().splitlines()
        print("\n".join(lines[-2:]))
    else:
        print(report.summary())
    if args.json:
        report.write_json(args.json)
        print(f"wrote {args.json}")
    if args.csv:
        report.write_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _run_serve(args) -> int:
    from repro.pipeline.jobs import RetryPolicy
    from repro.service import serve

    retry = (
        RetryPolicy(timeout_s=args.timeout_s)
        if args.timeout_s is not None
        else None
    )

    def ready() -> None:
        http = (
            f", http http://127.0.0.1:{args.http_port}"
            if args.http_port is not None
            else ""
        )
        print(
            f"serving on {args.socket} ({args.workers} worker(s), "
            f"cache {args.cache_dir or 'off'}{http})",
            flush=True,
        )

    return serve(
        args.socket,
        workers=args.workers,
        cache_dir=args.cache_dir,
        http_port=args.http_port,
        retry=retry,
        max_in_flight=args.max_in_flight,
        ready=ready,
    )


def _run_submit(args) -> int:
    from repro.service import ServiceClient

    with open(args.grid, "r", encoding="utf-8") as handle:
        grid_dict = json.load(handle)

    def on_event(message: dict) -> None:
        event = message.get("event")
        if event == "accepted":
            mode = "cached" if message.get("cached") else "queued"
            print(
                f"job {message['job_id']}: {message['cells']} cells ({mode})"
            )
        elif event == "cell" and not args.quiet:
            row = message["row"]
            hit = " [cached]" if row.get("cache_hit") else ""
            print(
                f"  [{message['index']}] {row['topology']}/{row['traffic']}/"
                f"{row['solver']}: throughput {row['throughput']:.4f}{hit}"
            )

    client = ServiceClient(args.socket)
    done = client.submit(
        grid_dict,
        priority=args.priority,
        batch=not args.no_batch,
        on_event=on_event,
    )
    counts = done.get("solve_counts", {})
    print(
        f"done in {done['elapsed_s']:.3f}s: "
        f"{counts.get('re_solved', 0)} solves, "
        f"{counts.get('cache_hit', 0)} cache hits, "
        f"{counts.get('skipped', 0)} skipped"
        + (" (memo answer)" if done.get("cached") else "")
    )
    return 0


def _run_fidelity(args) -> int:
    overrides: dict = {}
    if args.k is not None:
        overrides["k"] = args.k
    if args.runs is not None:
        overrides["runs"] = args.runs
    if args.seed is not None:
        overrides["seed"] = args.seed
    scale = "paper" if args.paper else "default"
    result = run_experiment("fidelity", scale=scale, **overrides)
    print(result.to_table())
    stats = result.metadata.get("route_stats", {})
    print(f"routes computed: {stats.get('computed', 0)}")
    print(
        f"route cache hits: {stats.get('memo_hits', 0)} memo, "
        f"{stats.get('disk_hits', 0)} disk"
    )
    checks = result.metadata.get("band_checks", 0)
    violations = result.metadata.get("band_violations", 0)
    print(f"band violations: {violations} (of {checks} checks)")
    return 1 if violations else 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for eid, description in describe_experiments():
            print(f"{eid:8s}  {description}")
        return 0

    if args.command == "analyze":
        from repro.analysis.report import analyze_network
        from repro.topology.serialization import load_topology

        topo = load_topology(args.topology)
        traffic = None if args.traffic == "none" else args.traffic
        analysis = analyze_network(topo, traffic=traffic, seed=args.seed)
        print(analysis.to_text())
        return 0

    if args.command == "fidelity":
        return _run_fidelity(args)

    if args.command == "sweep":
        return _run_sweep(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "submit":
        return _run_submit(args)

    if args.command == "grow":
        return _run_grow(args)

    if args.command == "replay":
        return _run_replay(args)

    if args.command == "design":
        return _run_design(args)

    ids = list(args.experiments)
    if ids == ["all"]:
        ids = available_experiments()
    unknown = [eid for eid in ids if eid not in available_experiments()]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2

    overrides: dict = {}
    if args.runs is not None:
        overrides["runs"] = args.runs
    if args.seed is not None:
        overrides["seed"] = args.seed
    scale = "paper" if args.paper else "default"

    exit_code = 0
    for eid in ids:
        start = time.time()
        try:
            result = run_experiment(eid, scale=scale, **overrides)
        except Exception as exc:  # surface which figure failed, keep going
            print(f"!! {eid} failed: {exc}", file=sys.stderr)
            exit_code = 1
            continue
        elapsed = time.time() - start
        table = result.to_table()
        print(table)
        print(f"   ({elapsed:.1f}s)\n")
        if args.out:
            with open(args.out, "a", encoding="utf-8") as handle:
                handle.write(table + f"\n   ({elapsed:.1f}s)\n\n")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
