"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments list
    repro-experiments run fig1a fig1b --runs 3 --seed 0
    repro-experiments run fig12a --paper
    repro-experiments run all --out results.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import (
    available_experiments,
    describe_experiments,
    run_experiment,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures of 'High Throughput Data Center Topology "
            "Design' (NSDI 2014)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    analyze = sub.add_parser(
        "analyze", help="analyze a serialized topology (JSON) under a workload"
    )
    analyze.add_argument("topology", help="path to a topology JSON file")
    analyze.add_argument(
        "--traffic",
        default="permutation",
        choices=["permutation", "none"],
        help="workload to solve (default: random permutation)",
    )
    analyze.add_argument("--seed", type=int, default=0, help="workload seed")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. fig1a fig12a) or 'all'",
    )
    run.add_argument(
        "--paper",
        action="store_true",
        help="use paper-scale parameters (slow; minutes to hours)",
    )
    run.add_argument("--runs", type=int, default=None, help="runs per point")
    run.add_argument("--seed", type=int, default=None, help="root RNG seed")
    run.add_argument(
        "--out", type=str, default=None, help="also append tables to this file"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for eid, description in describe_experiments():
            print(f"{eid:8s}  {description}")
        return 0

    if args.command == "analyze":
        from repro.analysis.report import analyze_network
        from repro.topology.serialization import load_topology

        topo = load_topology(args.topology)
        traffic = None if args.traffic == "none" else args.traffic
        analysis = analyze_network(topo, traffic=traffic, seed=args.seed)
        print(analysis.to_text())
        return 0

    ids = list(args.experiments)
    if ids == ["all"]:
        ids = available_experiments()
    unknown = [eid for eid in ids if eid not in available_experiments()]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2

    overrides: dict = {}
    if args.runs is not None:
        overrides["runs"] = args.runs
    if args.seed is not None:
        overrides["seed"] = args.seed
    scale = "paper" if args.paper else "default"

    exit_code = 0
    for eid in ids:
        start = time.time()
        try:
            result = run_experiment(eid, scale=scale, **overrides)
        except Exception as exc:  # surface which figure failed, keep going
            print(f"!! {eid} failed: {exc}", file=sys.stderr)
            exit_code = 1
            continue
        elapsed = time.time() - start
        table = result.to_table()
        print(table)
        print(f"   ({elapsed:.1f}s)\n")
        if args.out:
            with open(args.out, "a", encoding="utf-8") as handle:
                handle.write(table + f"\n   ({elapsed:.1f}s)\n\n")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
