"""Degraded-fabric study: throughput retained under equipment failures.

The paper argues for random-graph fabrics on intact-network throughput;
the companion throughput-measurement line of work (Jyothi et al.) and
the topology surveys weight *fault tolerance* just as heavily when
comparing structured designs against random graphs. This experiment
measures the comparison directly: throughput versus failure rate for a
random graph, a fat-tree, and a VL2 built from matched equipment, each
curve normalized to its own intact-fabric throughput ("fraction of
intact throughput retained").

Equipment matching: a k-ary fat-tree has ``5k^2/4`` switches of ``k``
ports hosting ``k^3/4`` servers. The random fabric gets *exactly* that
equipment — same switch count, same per-switch port budget, servers
spread as evenly as the counts allow, every remaining port wired into a
uniform-random interconnect (the §5.1 construction). VL2 is built at the
same server count with ``DA = DI = k`` (its own design point uses
10-GbE aggregation links, so its switch count differs; the comparison is
servers-for-servers, which is how VL2 is deployed).

Degraded fabrics are solved with ``unreachable="drop"``: if a failure
pattern strands demand, the throughput concerns the served pairs and the
run also reports the mean served fraction in the result metadata.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSeries,
    mean_and_std,
)
from repro.pipeline.engine import evaluate_throughput
from repro.resilience import FailureSpec, apply_failures, failure_seed
from repro.topology.fattree import fat_tree_topology
from repro.topology.heterogeneous import matched_random_topology
from repro.topology.vl2 import vl2_topology
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import spawn_seeds


def _families(k: int):
    """(label, builder(child_seed) -> topology) for the three designs."""
    return (
        ("Random (matched equipment)", lambda child: matched_random_topology(k, seed=child)),
        (f"Fat-tree (k={k})", lambda child: fat_tree_topology(k)),
        (f"VL2 (DA=DI={k})", lambda child: vl2_topology(k, k, servers_per_tor=k)),
    )


def run_resilience(
    k: int = 4,
    rates: "tuple[float, ...]" = (0.0, 0.05, 0.1, 0.2),
    failure_model: str = "random_links",
    solver: str = "edge_lp",
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Fraction of intact throughput retained vs failure rate.

    Per run: build each family's fabric (the random fabric re-samples per
    run; fat-tree and VL2 are deterministic), offer one random
    permutation workload generated on the *intact* fabric, then degrade
    with nested failure sets (rate ``a``'s failures are a subset of rate
    ``b > a``'s for one run) and re-solve with ``unreachable="drop"``.
    """
    result = ExperimentResult(
        experiment_id="resilience",
        title="Throughput retained under failures (matched equipment)",
        x_label=f"{failure_model} failure rate",
        y_label="throughput (fraction of intact)",
        metadata={
            "k": k,
            "solver": solver,
            "failure_model": failure_model,
            "runs": runs,
            "seed": seed,
        },
    )
    served_fractions: dict[str, dict[float, list[float]]] = {}
    for family_index, (label, build) in enumerate(_families(k)):
        series = ExperimentSeries(label)
        ratios_by_rate: dict[float, list[float]] = {rate: [] for rate in rates}
        fractions_by_rate: dict[float, list[float]] = {}
        root = None if seed is None else seed * 86_243 + family_index
        for child in spawn_seeds(root, runs):
            topo = build(child)
            traffic = random_permutation_traffic(topo, seed=child)
            intact = evaluate_throughput(topo, traffic, solver=solver)
            if intact.throughput <= 0:
                continue
            draw_seed = int(child.generate_state(1, dtype="uint64")[0])
            for rate in rates:
                spec = FailureSpec.make(failure_model, rate=rate)
                if spec.is_null():
                    ratios_by_rate[rate].append(1.0)
                    continue
                degraded = apply_failures(
                    topo, spec, seed=failure_seed(draw_seed, spec)
                )
                outcome = evaluate_throughput(
                    degraded, traffic, solver=solver, unreachable="drop"
                )
                ratios_by_rate[rate].append(
                    outcome.throughput / intact.throughput
                )
                fractions_by_rate.setdefault(rate, []).append(
                    outcome.served_fraction
                )
        for rate in rates:
            mean, std = mean_and_std(ratios_by_rate[rate])
            series.add(rate, mean, std)
        served_fractions[label] = fractions_by_rate
        result.add_series(series)
    # Served fraction per family *per rate* (intact cells excluded: they
    # serve everything by definition and would only dilute the signal).
    # Throughput ratios must be read alongside this — a partitioned
    # fabric can post a high rate over little traffic.
    result.metadata["mean_served_fraction"] = {
        label: {
            rate: mean_and_std(values)[0]
            for rate, values in sorted(by_rate.items())
        }
        for label, by_rate in served_fractions.items()
    }
    return result
