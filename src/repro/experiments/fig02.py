"""Figure 2: random graphs vs. the bounds at fixed degree, sweeping size.

Same quantities as Figure 1 but with degree fixed (paper: r = 10) and the
switch count growing — the network becomes *sparser* to the right. The
throughput-to-bound ratio stays high (within a few percent for permutation
workloads) even as size grows; the ASPL bound shows its first "step" in
this range.
"""

from __future__ import annotations

from repro.core.bounds import aspl_lower_bound
from repro.core.optimality import measure_optimality_gap
from repro.experiments.common import ExperimentResult, ExperimentSeries, mean_and_std
from repro.util.rng import spawn_seeds

DEFAULT_SIZES = (15, 20, 30, 40, 60)
PAPER_SIZES = (20, 40, 60, 80, 100, 120, 140, 160, 180, 200)


def run_fig2a(
    sizes: "tuple[int, ...]" = DEFAULT_SIZES,
    network_degree: int = 10,
    servers_per_switch_options: "tuple[int, ...]" = (5, 10),
    include_all_to_all: bool = True,
    all_to_all_size_cap: int = 60,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Throughput-to-bound ratio vs. network size (Figure 2a).

    ``all_to_all_size_cap`` skips all-to-all beyond that size — the same
    scaling limit the paper notes for its simulator (commodity count grows
    quadratically).
    """
    result = ExperimentResult(
        experiment_id="fig2a",
        title="RRG throughput vs upper bound (degree fixed)",
        x_label="network size N",
        y_label="throughput (ratio to upper bound)",
        metadata={"network_degree": network_degree, "runs": runs, "seed": seed},
    )
    workloads: list[tuple[str, str, int]] = []
    if include_all_to_all:
        workloads.append(("All to All", "all-to-all", 1))
    for servers in servers_per_switch_options:
        workloads.append(
            (f"Permutation ({servers} servers per switch)", "permutation", servers)
        )
    for label, workload, servers in workloads:
        series = ExperimentSeries(label)
        for size_index, size in enumerate(sizes):
            if network_degree >= size:
                continue
            if workload == "all-to-all" and size > all_to_all_size_cap:
                continue
            gap = measure_optimality_gap(
                size,
                network_degree,
                servers_per_switch=servers,
                workload=workload,
                runs=runs,
                seed=None
                if seed is None
                else seed * 999_983 + size_index * 307 + servers,
            )
            series.add(size, min(gap.ratio, 1.0))
        result.add_series(series)
    return result


def run_fig2b(
    sizes: "tuple[int, ...]" = DEFAULT_SIZES,
    network_degree: int = 10,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Observed ASPL vs. the Cerf lower bound, size sweep (Figure 2b)."""
    from repro.metrics.paths import average_shortest_path_length
    from repro.topology.random_regular import random_regular_topology

    result = ExperimentResult(
        experiment_id="fig2b",
        title="RRG ASPL vs lower bound (degree fixed)",
        x_label="network size N",
        y_label="path length (hops)",
        metadata={"network_degree": network_degree, "runs": runs, "seed": seed},
    )
    observed = ExperimentSeries("Observed ASPL")
    bound = ExperimentSeries("ASPL lower-bound")
    for size in sizes:
        if network_degree >= size:
            continue
        values = []
        for child in spawn_seeds(None if seed is None else seed + size, runs):
            topo = random_regular_topology(size, network_degree, seed=child)
            values.append(average_shortest_path_length(topo))
        mean, std = mean_and_std(values)
        observed.add(size, mean, std)
        bound.add(size, aspl_lower_bound(size, network_degree))
    result.add_series(observed)
    result.add_series(bound)
    return result
