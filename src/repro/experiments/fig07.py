"""Figure 7: joint sweep of server placement x cross-cluster connectivity.

Multiple (split, cross-fraction) combinations achieve peak throughput, but
the proportional split with a vanilla random interconnect is always among
them; large deviations in either dimension lose throughput. Series are
labelled paper-style: '12H, 4L' means 12 servers on each large switch and
4 on each small one.
"""

from __future__ import annotations

from repro.core.interconnect import feasible_cross_fractions
from repro.core.placement import ServerSplit, feasible_server_splits
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentResult, ExperimentSeries
from repro.experiments.heterogeneity import TwoTypeConfig, clustered_throughput

DEFAULT_FIG7A_CONFIG = TwoTypeConfig(8, 15, 16, 5, 96, label="fig7a")
DEFAULT_FIG7B_CONFIG = TwoTypeConfig(8, 15, 16, 10, 96, label="fig7b")
PAPER_FIG7A_CONFIG = TwoTypeConfig(20, 30, 40, 10, 480, label="fig7a")
PAPER_FIG7B_CONFIG = TwoTypeConfig(20, 30, 40, 20, 560, label="fig7b")


def _spread_splits(splits: list[ServerSplit], count: int) -> list[ServerSplit]:
    """Pick ``count`` splits spread across the feasible ratio range."""
    if len(splits) <= count:
        return splits
    step = (len(splits) - 1) / (count - 1)
    return [splits[round(i * step)] for i in range(count)]


def run_fig7(
    config: TwoTypeConfig = DEFAULT_FIG7A_CONFIG,
    variant: str = "a",
    num_splits: int = 5,
    points: int = 7,
    min_fraction: float = 0.15,
    max_fraction: float = 1.8,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Combined placement x interconnect sweep for one equipment pool."""
    splits = feasible_server_splits(
        config.num_large,
        config.large_ports,
        config.num_small,
        config.small_ports,
        config.total_servers,
    )
    splits = [s for s in splits if s.servers_per_large > 0]
    if not splits:
        raise ExperimentError("no usable splits for this configuration")
    splits = _spread_splits(splits, num_splits)

    result = ExperimentResult(
        experiment_id=f"fig7{variant}",
        title="Combined server distribution and cross-cluster sweep",
        x_label="cross-cluster links (ratio to random expectation)",
        y_label="per-flow throughput",
        metadata={"config": config.describe(), "runs": runs, "seed": seed},
    )
    for split_index, split in enumerate(splits):
        label = f"{split.servers_per_large}H, {split.servers_per_small}L"
        series = ExperimentSeries(label)
        try:
            fractions = feasible_cross_fractions(
                config.num_large,
                config.large_ports - split.servers_per_large,
                config.num_small,
                config.small_ports - split.servers_per_small,
                points=points,
                min_fraction=min_fraction,
                max_fraction=max_fraction,
            )
        except ExperimentError:
            continue
        for frac_index, fraction in enumerate(fractions):
            child_seed = (
                None
                if seed is None
                else seed * 17_011 + split_index * 163 + frac_index
            )
            mean, std = clustered_throughput(
                config,
                split.servers_per_large,
                split.servers_per_small,
                cross_fraction=fraction,
                runs=runs,
                seed=child_seed,
            )
            series.add(fraction, mean, std)
        result.add_series(series)
    if not result.series:
        raise ExperimentError("no split produced a feasible sweep")
    return result


def run_fig7a(**kwargs) -> ExperimentResult:
    """Figure 7(a): 3:1 port-ratio equipment pool."""
    kwargs.setdefault("config", DEFAULT_FIG7A_CONFIG)
    return run_fig7(variant="a", **kwargs)


def run_fig7b(**kwargs) -> ExperimentResult:
    """Figure 7(b): 3:2 port-ratio equipment pool."""
    kwargs.setdefault("config", DEFAULT_FIG7B_CONFIG)
    return run_fig7(variant="b", **kwargs)
