"""Figure 6: throughput vs. cross-cluster connectivity (§5.1).

With servers placed proportionally (the Figure 4 optimum), sweep the number
of links crossing between the large- and small-switch clusters, normalized
to the unbiased-random expectation. The paper's surprise: throughput is
*flat* across a wide range and only collapses when the cross-cluster cut
becomes the bottleneck (left end), regardless of (a) port ratios, (b)
small-switch counts, and (c) oversubscription.
"""

from __future__ import annotations

from repro.core.interconnect import feasible_cross_fractions
from repro.core.placement import proportional_split_for
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentResult, ExperimentSeries
from repro.experiments.fig04 import (
    DEFAULT_FIG4A_CONFIGS,
    DEFAULT_FIG4B_CONFIGS,
    DEFAULT_FIG4C_CONFIGS,
    PAPER_FIG4A_CONFIGS,
    PAPER_FIG4B_CONFIGS,
    PAPER_FIG4C_CONFIGS,
)
from repro.experiments.heterogeneity import TwoTypeConfig, clustered_throughput

# Figure 6 reuses Figure 4's equipment configurations.
DEFAULT_FIG6A_CONFIGS = DEFAULT_FIG4A_CONFIGS
DEFAULT_FIG6B_CONFIGS = DEFAULT_FIG4B_CONFIGS
DEFAULT_FIG6C_CONFIGS = DEFAULT_FIG4C_CONFIGS
PAPER_FIG6A_CONFIGS = PAPER_FIG4A_CONFIGS
PAPER_FIG6B_CONFIGS = PAPER_FIG4B_CONFIGS
PAPER_FIG6C_CONFIGS = PAPER_FIG4C_CONFIGS


def run_fig6(
    configs: "tuple[TwoTypeConfig, ...]" = DEFAULT_FIG6A_CONFIGS,
    variant: str = "a",
    points: int = 8,
    min_fraction: float = 0.1,
    max_fraction: float = 1.8,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Throughput vs. cross-cluster link fraction, one series per config."""
    if not configs:
        raise ExperimentError("need at least one configuration")
    result = ExperimentResult(
        experiment_id=f"fig6{variant}",
        title="Interconnecting switches: cross-cluster sweep",
        x_label="cross-cluster links (ratio to random expectation)",
        y_label="per-flow throughput",
        metadata={"runs": runs, "seed": seed},
    )
    for config_index, config in enumerate(configs):
        split = proportional_split_for(
            config.num_large,
            config.large_ports,
            config.num_small,
            config.small_ports,
            config.total_servers,
        )
        fractions = feasible_cross_fractions(
            config.num_large,
            config.large_ports - split.servers_per_large,
            config.num_small,
            config.small_ports - split.servers_per_small,
            points=points,
            min_fraction=min_fraction,
            max_fraction=max_fraction,
        )
        series = ExperimentSeries(config.describe())
        for frac_index, fraction in enumerate(fractions):
            child_seed = (
                None
                if seed is None
                else seed * 13_007 + config_index * 149 + frac_index
            )
            mean, std = clustered_throughput(
                config,
                split.servers_per_large,
                split.servers_per_small,
                cross_fraction=fraction,
                runs=runs,
                seed=child_seed,
            )
            series.add(fraction, mean, std)
        result.add_series(series)
    return result


def run_fig6a(**kwargs) -> ExperimentResult:
    """Figure 6(a): cross sweep across port ratios."""
    kwargs.setdefault("configs", DEFAULT_FIG6A_CONFIGS)
    return run_fig6(variant="a", **kwargs)


def run_fig6b(**kwargs) -> ExperimentResult:
    """Figure 6(b): cross sweep across small-switch counts."""
    kwargs.setdefault("configs", DEFAULT_FIG6B_CONFIGS)
    return run_fig6(variant="b", **kwargs)


def run_fig6c(**kwargs) -> ExperimentResult:
    """Figure 6(c): cross sweep across server totals (oversubscription)."""
    kwargs.setdefault("configs", DEFAULT_FIG6C_CONFIGS)
    return run_fig6(variant="c", **kwargs)
