"""Shared containers and helpers for the figure-reproduction harness.

Beyond the series/result containers, this module hosts the one
seed-sweep evaluation loop every figure used to hand-roll:
:func:`mean_throughput_over_seeds` builds a scenario per child seed,
solves it through the pipeline's cached solver-registry entry point
(:func:`repro.pipeline.evaluate_throughput`), and aggregates. Setting
``REPRO_CACHE_DIR`` therefore warms every figure at once.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.exceptions import ExperimentError
from repro.util.tables import format_table


@dataclass(frozen=True)
class SeriesPoint:
    """One measured point: x, mean y over runs, and run std-deviation."""

    x: float
    y: float
    std: float = 0.0


@dataclass
class ExperimentSeries:
    """A named curve of an experiment figure."""

    name: str
    points: list[SeriesPoint] = field(default_factory=list)

    def add(self, x: float, y: float, std: float = 0.0) -> None:
        """Append a point (kept sorted by x on access)."""
        self.points.append(SeriesPoint(float(x), float(y), float(std)))

    def sorted_points(self) -> list[SeriesPoint]:
        return sorted(self.points, key=lambda p: p.x)

    def xs(self) -> list[float]:
        return [p.x for p in self.sorted_points()]

    def ys(self) -> list[float]:
        return [p.y for p in self.sorted_points()]

    def y_at(self, x: float, tolerance: float = 1e-9) -> float:
        """The y value at a given x (exact match within tolerance)."""
        for point in self.points:
            if abs(point.x - x) <= tolerance:
                return point.y
        raise ExperimentError(f"series {self.name!r} has no point at x={x}")

    def peak(self) -> SeriesPoint:
        """The point with the highest y."""
        if not self.points:
            raise ExperimentError(f"series {self.name!r} is empty")
        return max(self.points, key=lambda p: p.y)

    def normalized_to_peak(self) -> "ExperimentSeries":
        """A copy with y (and std) divided by the series' peak y."""
        peak = self.peak().y
        if peak <= 0:
            raise ExperimentError(
                f"series {self.name!r} has non-positive peak; cannot normalize"
            )
        out = ExperimentSeries(self.name)
        for p in self.sorted_points():
            out.add(p.x, p.y / peak, p.std / peak)
        return out


@dataclass
class ExperimentResult:
    """All series of one figure plus labelling and provenance metadata."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[ExperimentSeries] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def get_series(self, name: str) -> ExperimentSeries:
        for s in self.series:
            if s.name == name:
                return s
        known = ", ".join(s.name for s in self.series)
        raise ExperimentError(
            f"no series {name!r} in {self.experiment_id}; have: {known}"
        )

    def add_series(self, series: ExperimentSeries) -> None:
        self.series.append(series)

    def to_table(self, float_format: str = "{:.4f}") -> str:
        """Render all series as one aligned text table keyed by x."""
        xs = sorted({p.x for s in self.series for p in s.points})
        headers = [self.x_label] + [s.name for s in self.series]
        rows: list[list[object]] = []
        for x in xs:
            row: list[object] = [x]
            for s in self.series:
                try:
                    row.append(s.y_at(x))
                except ExperimentError:
                    row.append("-")
            rows.append(row)
        header = f"== {self.experiment_id}: {self.title} ==\n"
        header += f"   y: {self.y_label}\n"
        return header + format_table(headers, rows, float_format=float_format)


def mean_and_std(values: Iterable[float]) -> tuple[float, float]:
    """Mean and population std of a non-empty value collection."""
    data = list(values)
    if not data:
        raise ExperimentError("no values to aggregate")
    if len(data) == 1:
        return float(data[0]), 0.0
    return statistics.fmean(data), statistics.pstdev(data)


def sweep_average(
    measure: Callable[[object], float],
    seeds: Iterable,
) -> tuple[float, float]:
    """Run ``measure(seed)`` over seeds; return (mean, std)."""
    return mean_and_std(measure(seed) for seed in seeds)


def mean_throughput_over_seeds(
    build: Callable,
    runs: int,
    seed,
    solver: str = "edge_lp",
    solver_options: "dict | None" = None,
    zero_when_disconnected: bool = True,
) -> tuple[float, float]:
    """Mean/std throughput over ``runs`` independently seeded scenarios.

    ``build(child_seed)`` returns ``(topology, traffic)`` — or ``None`` to
    score the sample as zero throughput (e.g. an infeasible construction).
    Disconnected topologies score zero without solving when
    ``zero_when_disconnected`` (the LP optimum when some demand cannot be
    routed, and how a physically stranded cluster behaves); the workload
    is then never built, which keeps seed consumption identical to the
    historical per-figure loops.
    """
    from repro.pipeline.engine import evaluate_throughput
    from repro.util.rng import spawn_seeds

    options = solver_options or {}
    values: list[float] = []
    for child in spawn_seeds(seed, runs):
        scenario = build(child)
        if scenario is None:
            values.append(0.0)
            continue
        topo, traffic = scenario
        if zero_when_disconnected and not topo.is_connected():
            values.append(0.0)
            continue
        if callable(traffic):
            traffic = traffic()
        result = evaluate_throughput(topo, traffic, solver=solver, **options)
        values.append(result.throughput)
    return mean_and_std(values)
