"""Figure 8: heterogeneous line-speeds (§5.2).

Large switches gain extra high-line-speed ports wired only to other
high-speed ports (a fast mesh over the large cluster); small switches stay
low-speed. (a) sweeps server splits x cross connectivity — multiple
configurations tie, no clean rule; (b) sweeps the high-speed multiplier at
fixed count; (c) sweeps the high-port count at fixed speed. In (b)/(c) the
benefit of fast ports vanishes when the cross-cluster cut is starved: the
bottleneck has moved to the cut, so extra core capacity cannot raise the
minimum flow.
"""

from __future__ import annotations

from repro.core.interconnect import feasible_cross_fractions
from repro.core.placement import feasible_server_splits
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentResult, ExperimentSeries
from repro.experiments.fig07 import _spread_splits
from repro.experiments.heterogeneity import TwoTypeConfig, mixed_speed_throughput

#: CI-scale default: 8 large switches with 12 low-speed ports each plus a
#: high-speed mesh; 8 small switches with 8 low-speed ports.
DEFAULT_FIG8_CONFIG = TwoTypeConfig(8, 12, 8, 8, 64, label="fig8")
PAPER_FIG8_CONFIG = TwoTypeConfig(20, 40, 20, 15, 860, label="fig8")


def run_fig8a(
    config: TwoTypeConfig = DEFAULT_FIG8_CONFIG,
    high_ports_per_large: int = 3,
    high_speed: float = 10.0,
    num_splits: int = 5,
    points: int = 7,
    min_fraction: float = 0.2,
    max_fraction: float = 1.8,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Figure 8(a): server splits x cross sweep with a fast large-switch mesh."""
    splits = feasible_server_splits(
        config.num_large,
        config.large_ports,
        config.num_small,
        config.small_ports,
        config.total_servers,
    )
    splits = [s for s in splits if s.servers_per_large > 0]
    if not splits:
        raise ExperimentError("no usable splits for this configuration")
    splits = _spread_splits(splits, num_splits)

    result = ExperimentResult(
        experiment_id="fig8a",
        title="Mixed line-speeds: server splits x cross-cluster sweep",
        x_label="cross-cluster links (ratio to random expectation)",
        y_label="per-flow throughput",
        metadata={
            "config": config.describe(),
            "high_ports_per_large": high_ports_per_large,
            "high_speed": high_speed,
            "runs": runs,
            "seed": seed,
        },
    )
    for split_index, split in enumerate(splits):
        label = f"{split.servers_per_large}H, {split.servers_per_small}L"
        series = ExperimentSeries(label)
        try:
            fractions = feasible_cross_fractions(
                config.num_large,
                config.large_ports - split.servers_per_large,
                config.num_small,
                config.small_ports - split.servers_per_small,
                points=points,
                min_fraction=min_fraction,
                max_fraction=max_fraction,
            )
        except ExperimentError:
            continue
        for frac_index, fraction in enumerate(fractions):
            child_seed = (
                None
                if seed is None
                else seed * 19_013 + split_index * 167 + frac_index
            )
            mean, std = mixed_speed_throughput(
                config,
                split.servers_per_large,
                split.servers_per_small,
                cross_fraction=fraction,
                high_ports_per_large=high_ports_per_large,
                high_speed=high_speed,
                runs=runs,
                seed=child_seed,
            )
            series.add(fraction, mean, std)
        result.add_series(series)
    if not result.series:
        raise ExperimentError("no split produced a feasible sweep")
    return result


def _fixed_split_sweep(
    config: TwoTypeConfig,
    sweep_label: str,
    variants: "list[tuple[str, int, float]]",
    points: int,
    min_fraction: float,
    max_fraction: float,
    runs: int,
    seed: "int | None",
    experiment_id: str,
    title: str,
) -> ExperimentResult:
    """Shared body of Figures 8(b) and 8(c): proportional split, one series
    per (count, speed) variant."""
    from repro.core.placement import proportional_split_for

    split = proportional_split_for(
        config.num_large,
        config.large_ports,
        config.num_small,
        config.small_ports,
        config.total_servers,
    )
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="cross-cluster links (ratio to random expectation)",
        y_label="per-flow throughput",
        metadata={
            "config": config.describe(),
            "split": f"{split.servers_per_large}H, {split.servers_per_small}L",
            "sweep": sweep_label,
            "runs": runs,
            "seed": seed,
        },
    )
    fractions = feasible_cross_fractions(
        config.num_large,
        config.large_ports - split.servers_per_large,
        config.num_small,
        config.small_ports - split.servers_per_small,
        points=points,
        min_fraction=min_fraction,
        max_fraction=max_fraction,
    )
    for variant_index, (label, high_count, high_speed) in enumerate(variants):
        series = ExperimentSeries(label)
        for frac_index, fraction in enumerate(fractions):
            child_seed = (
                None
                if seed is None
                else seed * 23_017 + variant_index * 173 + frac_index
            )
            mean, std = mixed_speed_throughput(
                config,
                split.servers_per_large,
                split.servers_per_small,
                cross_fraction=fraction,
                high_ports_per_large=high_count,
                high_speed=high_speed,
                runs=runs,
                seed=child_seed,
            )
            series.add(fraction, mean, std)
        result.add_series(series)
    return result


def run_fig8b(
    config: TwoTypeConfig = DEFAULT_FIG8_CONFIG,
    high_ports_per_large: int = 3,
    speeds: "tuple[float, ...]" = (2.0, 4.0, 8.0),
    points: int = 7,
    min_fraction: float = 0.2,
    max_fraction: float = 1.6,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Figure 8(b): sweep the high-speed multiplier at fixed port count."""
    variants = [
        (f"High-speed = {speed:g}", high_ports_per_large, speed)
        for speed in speeds
    ]
    return _fixed_split_sweep(
        config,
        sweep_label="line-speed",
        variants=variants,
        points=points,
        min_fraction=min_fraction,
        max_fraction=max_fraction,
        runs=runs,
        seed=seed,
        experiment_id="fig8b",
        title="Mixed line-speeds: varying the high line-speed",
    )


def run_fig8c(
    config: TwoTypeConfig = DEFAULT_FIG8_CONFIG,
    high_counts: "tuple[int, ...]" = (1, 2, 3),
    high_speed: float = 4.0,
    points: int = 7,
    min_fraction: float = 0.2,
    max_fraction: float = 1.6,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Figure 8(c): sweep the number of high-speed ports at fixed speed."""
    variants = [
        (f"{count} H-links", count, high_speed) for count in high_counts
    ]
    return _fixed_split_sweep(
        config,
        sweep_label="high-port count",
        variants=variants,
        points=points,
        min_fraction=min_fraction,
        max_fraction=max_fraction,
        runs=runs,
        seed=seed,
        experiment_id="fig8c",
        title="Mixed line-speeds: varying the high-port count",
    )
