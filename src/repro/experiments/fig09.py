"""Figure 9: decomposing throughput into utilization, path length, stretch.

Re-analyses three earlier sweeps through the identity
``T ∝ U * (1/<D>) * (1/AS)``: (a) the server-placement sweep, (b) the
cross-cluster sweep, (c) the mixed-speed high-port-count sweep. Each
metric is normalized by its value at the throughput-peak x so curves are
comparable; the paper's conclusion is that utilization (i.e. bottleneck
formation) tracks throughput far better than path-length effects, though
path length contributes at the placement extremes.
"""

from __future__ import annotations

from repro.core.interconnect import feasible_cross_fractions
from repro.core.placement import feasible_server_splits, proportional_split_for
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentResult, ExperimentSeries, mean_and_std
# The PAPER_* tables are re-exported for the experiment registry, which
# reads them as fig09 attributes when building paper-scale overrides.
from repro.experiments.fig04 import (  # noqa: F401
    DEFAULT_FIG4C_CONFIGS,
    PAPER_FIG4C_CONFIGS,
)
from repro.experiments.fig08 import (  # noqa: F401
    DEFAULT_FIG8_CONFIG,
    PAPER_FIG8_CONFIG,
)
from repro.experiments.heterogeneity import TwoTypeConfig
from repro.flow.decomposition import decompose_throughput
from repro.pipeline.engine import evaluate_throughput
from repro.topology.heterogeneous import (
    heterogeneous_random_topology,
    mixed_linespeed_topology,
)
from repro.topology.two_cluster import two_cluster_random_topology
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import spawn_seeds

_METRICS = ("Throughput", "Utilization", "Inverse SPL", "Inverse Stretch")


def _measure(topo_factory, runs: int, seed) -> "dict[str, float] | None":
    """Average (T, U, 1/<D>, 1/AS) over runs; None if all runs disconnected."""
    rows: list[tuple[float, float, float, float]] = []
    for child in spawn_seeds(seed, runs):
        topo = topo_factory(child)
        if not topo.is_connected():
            continue
        traffic = random_permutation_traffic(topo, seed=child)
        result = evaluate_throughput(topo, traffic)
        if result.throughput <= 0:
            continue
        dec = decompose_throughput(topo, traffic, result)
        rows.append(
            (dec.throughput, dec.utilization, dec.inverse_aspl, dec.inverse_stretch)
        )
    if not rows:
        return None
    out: dict[str, float] = {}
    for index, metric in enumerate(_METRICS):
        mean, _ = mean_and_std(row[index] for row in rows)
        out[metric] = mean
    return out


def _assemble(
    experiment_id: str,
    title: str,
    x_label: str,
    measured: "list[tuple[float, dict[str, float]]]",
    metadata: dict,
) -> ExperimentResult:
    """Normalize each metric by its value at the throughput-peak x."""
    if not measured:
        raise ExperimentError("no connected samples measured")
    peak_x, peak_row = max(measured, key=lambda item: item[1]["Throughput"])
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        y_label="metric normalized at throughput peak",
        metadata={**metadata, "peak_x": peak_x},
    )
    for metric in _METRICS:
        series = ExperimentSeries(metric)
        base = peak_row[metric]
        for x, row in measured:
            series.add(x, row[metric] / base)
        result.add_series(series)
    return result


def run_fig9a(
    config: TwoTypeConfig = DEFAULT_FIG4C_CONFIGS[0],
    max_points: int = 7,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Figure 9(a): decomposition along the server-placement sweep."""
    splits = feasible_server_splits(
        config.num_large,
        config.large_ports,
        config.num_small,
        config.small_ports,
        config.total_servers,
    )
    if len(splits) > max_points:
        step = (len(splits) - 1) / (max_points - 1)
        splits = [splits[round(i * step)] for i in range(max_points)]
    measured = []
    for index, split in enumerate(splits):
        port_counts: dict = {}
        servers: dict = {}
        for i in range(config.num_large):
            port_counts[("L", i)] = config.large_ports
            servers[("L", i)] = split.servers_per_large
        for i in range(config.num_small):
            port_counts[("S", i)] = config.small_ports
            servers[("S", i)] = split.servers_per_small
        row = _measure(
            lambda child, pc=port_counts, sv=servers: heterogeneous_random_topology(
                pc, sv, seed=child
            ),
            runs,
            None if seed is None else seed * 29_021 + index,
        )
        if row is not None:
            measured.append((split.ratio, row))
    return _assemble(
        "fig9a",
        "Decomposition: server placement sweep",
        "servers at large switches (ratio to random expectation)",
        measured,
        {"config": config.describe(), "runs": runs, "seed": seed},
    )


def run_fig9b(
    config: TwoTypeConfig = DEFAULT_FIG4C_CONFIGS[1],
    points: int = 7,
    min_fraction: float = 0.1,
    max_fraction: float = 1.6,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Figure 9(b): decomposition along the cross-cluster sweep."""
    split = proportional_split_for(
        config.num_large,
        config.large_ports,
        config.num_small,
        config.small_ports,
        config.total_servers,
    )
    fractions = feasible_cross_fractions(
        config.num_large,
        config.large_ports - split.servers_per_large,
        config.num_small,
        config.small_ports - split.servers_per_small,
        points=points,
        min_fraction=min_fraction,
        max_fraction=max_fraction,
    )
    measured = []
    for index, fraction in enumerate(fractions):
        row = _measure(
            lambda child, f=fraction: two_cluster_random_topology(
                num_large=config.num_large,
                large_network_ports=config.large_ports - split.servers_per_large,
                num_small=config.num_small,
                small_network_ports=config.small_ports - split.servers_per_small,
                servers_per_large=split.servers_per_large,
                servers_per_small=split.servers_per_small,
                cross_fraction=f,
                clamp_cross=True,
                seed=child,
            ),
            runs,
            None if seed is None else seed * 31_013 + index,
        )
        if row is not None:
            measured.append((fraction, row))
    return _assemble(
        "fig9b",
        "Decomposition: cross-cluster sweep",
        "cross-cluster links (ratio to random expectation)",
        measured,
        {"config": config.describe(), "runs": runs, "seed": seed},
    )


def run_fig9c(
    config: TwoTypeConfig = DEFAULT_FIG8_CONFIG,
    high_ports_per_large: int = 1,
    high_speed: float = 4.0,
    points: int = 7,
    min_fraction: float = 0.2,
    max_fraction: float = 1.6,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Figure 9(c): decomposition along the mixed-speed cross sweep."""
    split = proportional_split_for(
        config.num_large,
        config.large_ports,
        config.num_small,
        config.small_ports,
        config.total_servers,
    )
    fractions = feasible_cross_fractions(
        config.num_large,
        config.large_ports - split.servers_per_large,
        config.num_small,
        config.small_ports - split.servers_per_small,
        points=points,
        min_fraction=min_fraction,
        max_fraction=max_fraction,
    )
    measured = []
    for index, fraction in enumerate(fractions):
        row = _measure(
            lambda child, f=fraction: mixed_linespeed_topology(
                num_large=config.num_large,
                large_low_ports=config.large_ports - split.servers_per_large,
                num_small=config.num_small,
                small_low_ports=config.small_ports - split.servers_per_small,
                servers_per_large=split.servers_per_large,
                servers_per_small=split.servers_per_small,
                high_ports_per_large=high_ports_per_large,
                high_speed=high_speed,
                cross_fraction=f,
                seed=child,
            ),
            runs,
            None if seed is None else seed * 37_019 + index,
        )
        if row is not None:
            measured.append((fraction, row))
    return _assemble(
        "fig9c",
        "Decomposition: mixed line-speed cross sweep",
        "cross-cluster links (ratio to random expectation)",
        measured,
        {
            "config": config.describe(),
            "high_ports_per_large": high_ports_per_large,
            "high_speed": high_speed,
            "runs": runs,
            "seed": seed,
        },
    )
