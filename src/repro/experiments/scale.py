"""Scale study: estimator throughput where exact LPs cannot go.

Sweeps RRG vs fat-tree vs VL2 across switch counts into the thousands —
scenario territory no exact backend in this repository can touch — using
the calibrated estimators of :mod:`repro.estimate`. At sizes where the
exact LP is still tractable the experiment solves it too and checks the
estimates land inside their calibrated error bands, so every scale curve
ships with its own small-N validation.

The default parameters keep CI fast (hundreds of switches); paper scale
(``--paper``) runs N to 10,000.
"""

from __future__ import annotations

import math

from repro.estimate import calibrate_estimators, within_band
from repro.exceptions import ExperimentError
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSeries,
    mean_and_std,
)
from repro.pipeline.engine import evaluate_throughput
from repro.topology.registry import factory_accepts_seed, make_topology
from repro.traffic.registry import make_traffic
from repro.util.hashing import stable_seed

import numpy as np

#: Estimators the study sweeps by default (the two true upper bounds).
DEFAULT_ESTIMATORS = ("estimate_bound", "estimate_cut")


def fat_tree_arity_for(num_switches: int) -> int:
    """Even fat-tree arity whose switch count (5k^2/4) is nearest N."""
    if num_switches < 20:
        return 4
    k = 2 * round(math.sqrt(4 * num_switches / 5) / 2)
    return max(4, k)


def vl2_degrees_for(num_switches: int) -> "tuple[int, int]":
    """Even DA = DI whose switch count (k^2/4 + 3k/2) is nearest N."""
    k = 2 * round((math.sqrt(9 + 16 * num_switches) - 3) / 4)
    return max(4, k), max(4, k)


def scale_families(
    num_switches: int, network_degree: int = 8, servers_per_switch: int = 4
):
    """(label, kind, params) triples sized to approximately ``num_switches``.

    Only the RRG hits N exactly; structured families land on the nearest
    legal design point (their actual switch count is reported per cell).
    """
    k_ft = fat_tree_arity_for(num_switches)
    da, di = vl2_degrees_for(num_switches)
    return (
        (
            "rrg",
            "rrg",
            {
                "num_switches": num_switches,
                "network_degree": network_degree,
                "servers_per_switch": servers_per_switch,
            },
        ),
        ("fat-tree", "fat-tree", {"k": k_ft}),
        ("vl2", "vl2", {"da": da, "di": di, "servers_per_tor": 4}),
    )


def calibration_families(
    network_degree: int, servers_per_switch: int
) -> "dict[str, dict]":
    """Small-N calibration specs matching the sweep's own family params.

    A band only describes the configuration it was fit with, so the RRG
    entry carries the sweep's density knobs instead of the library-wide
    defaults. The RRG ladder reaches N=40 because that is where the
    experiment's exact-vs-band checks run — estimator offsets drift with
    size on concentrated workloads, and a band must span the sizes it
    claims to cover (the fat-tree/VL2 entries already sit at their
    smallest checked design points).
    """
    return {
        "rrg": {
            "kind": "rrg",
            "params": {
                "network_degree": network_degree,
                "servers_per_switch": servers_per_switch,
            },
            "size_param": "num_switches",
            "sizes": (16, 24, 40),
        },
        "fat-tree": {
            "kind": "fat-tree",
            "params": {},
            "size_param": "k",
            "sizes": (4, 6),
        },
        "vl2": {
            "kind": "vl2",
            "params": {"servers_per_tor": 4},
            "size_params": ("da", "di"),
            "sizes": (4, 6),
        },
    }


def run_scale(
    sizes: "tuple[int, ...]" = (40, 80, 160),
    estimators: "tuple[str, ...]" = DEFAULT_ESTIMATORS,
    exact_limit: int = 80,
    traffic: str = "permutation",
    runs: int = 2,
    seed: int = 0,
    network_degree: int = 6,
    servers_per_switch: int = 4,
    calibration_margin: float = 0.25,
) -> ExperimentResult:
    """Throughput-per-flow vs network size, estimators beside exact LP.

    One series per (family, estimator) plus an exact-LP series per family
    covering the sizes up to ``exact_limit``. Metadata records the
    calibration table and, for every size where both an estimate and the
    exact value exist, whether the estimate fell inside its band
    (``band_checks`` / ``band_violations`` — the benchmark gates on the
    latter staying zero for the default workload). Bands are fit under
    this sweep's own ``traffic`` and family parameters; high-variance
    workloads (e.g. few-hotspot matrices) may need a larger
    ``calibration_margin`` before their checks run clean.
    """
    if not sizes:
        raise ExperimentError("scale study needs at least one size")
    # Bands are fit under the sweep's own workload and family parameters
    # — a band calibrated on permutation traffic says nothing about a
    # hotspot sweep.
    table = calibrate_estimators(
        estimators,
        families=calibration_families(network_degree, servers_per_switch),
        traffic=traffic,
        margin=calibration_margin,
    )
    result = ExperimentResult(
        experiment_id="scale",
        title="Estimator throughput at scale (RRG vs fat-tree vs VL2)",
        x_label="switches N",
        y_label="throughput per flow",
        metadata={
            "estimators": list(estimators),
            "traffic": traffic,
            "runs": runs,
            "seed": seed,
            "exact_limit": exact_limit,
            "calibration": table.to_dict(),
            "band_checks": 0,
            "band_violations": 0,
        },
    )
    family_labels = [label for label, _, _ in scale_families(sizes[0])]
    series: "dict[tuple[str, str], ExperimentSeries]" = {}
    for family in family_labels:
        for estimator in estimators:
            s = ExperimentSeries(f"{family}/{estimator}")
            series[(family, estimator)] = s
            result.add_series(s)
        s = ExperimentSeries(f"{family}/edge_lp")
        series[(family, "edge_lp")] = s
        result.add_series(s)

    for size in sizes:
        for family, kind, params in scale_families(
            size,
            network_degree=network_degree,
            servers_per_switch=servers_per_switch,
        ):
            per_solver: "dict[str, list[float]]" = {}
            for run in range(runs):
                cell_seed = stable_seed(
                    {
                        "scale": family,
                        "size": size,
                        "run": run,
                        "seed": seed,
                    }
                )
                topo_ss, traffic_ss = np.random.SeedSequence(
                    cell_seed
                ).spawn(2)
                if factory_accepts_seed(kind):
                    topo = make_topology(kind, seed=topo_ss, **params)
                else:
                    topo = make_topology(kind, **params)
                tm = make_traffic(traffic, topo, seed=traffic_ss)
                exact_value = None
                if size <= exact_limit:
                    exact_value = evaluate_throughput(
                        topo, tm, "edge_lp"
                    ).throughput
                    per_solver.setdefault("edge_lp", []).append(exact_value)
                for estimator in estimators:
                    band = table.band(family, estimator)
                    estimate = evaluate_throughput(
                        topo, tm, estimator, error_band=band
                    ).throughput
                    per_solver.setdefault(estimator, []).append(estimate)
                    if exact_value is not None and exact_value > 0:
                        result.metadata["band_checks"] += 1
                        if not within_band(estimate, exact_value, band):
                            result.metadata["band_violations"] += 1
            for solver, values in per_solver.items():
                mean, std = mean_and_std(values)
                series[(family, solver)].add(size, mean, std)
    return result
