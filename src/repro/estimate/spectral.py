"""Expansion-based throughput estimate.

The paper's Theorem 2 ties random-graph throughput to expansion; the
algebraic connectivity ``lambda_2`` of the capacity-weighted Laplacian
certifies expansion spectrally (Cheeger / expander mixing, see
:mod:`repro.metrics.spectral`). This estimator converts that certificate
into a throughput figure for roughly uniformly spread demand:

- a cut S separates about ``2 D |S||S~| / n^2`` demand units when total
  demand ``D`` is spread evenly over node pairs,
- the uniform sparsest-cut density ``min cap(S)/(|S||S~|)`` is bounded
  below by ``lambda_2 / n`` (Fiedler),

giving ``t_est = lambda_2 * n / (2 D)``. It is the coarsest of the
estimators — Cheeger-style arguments are loose by up to O(log n) — but it
is also the cheapest (one sparse eigensolve, no BFS, no LP) and its
systematic offset is stable within a topology family, which is exactly
what the calibration bands of :mod:`repro.estimate.calibrate` absorb.
"""

from __future__ import annotations

from repro.estimate.common import (
    check_error_band,
    finish_estimate,
    prepare_estimate,
)
from repro.flow.result import ThroughputResult
from repro.metrics.spectral import sparse_algebraic_connectivity
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix

SOLVER_LABEL = "estimate-spectral"


def estimate_spectral(
    topo: Topology,
    traffic: TrafficMatrix,
    unreachable: str = "error",
    error_band=None,
    weighted: bool = True,
) -> ThroughputResult:
    """Algebraic-connectivity throughput estimate.

    ``weighted`` uses link capacities as Laplacian weights (default);
    ``False`` treats the graph as unit-capacity, matching the adjacency
    spectral measures of the Theorem 2 checks.
    """
    band = check_error_band(error_band)
    served, dropped, dropped_demand, short = prepare_estimate(
        topo, traffic, unreachable, SOLVER_LABEL
    )
    if short is not None:
        short.error_band = band
        return short
    lambda2 = sparse_algebraic_connectivity(topo, weighted=weighted)
    throughput = (
        lambda2 * topo.num_switches / (2.0 * served.total_demand)
    )
    return finish_estimate(
        throughput, served, SOLVER_LABEL, dropped, dropped_demand, band
    )
