"""Estimator calibration: fit per-family error bands against exact LPs.

An estimator is only useful at N = 10,000 if its systematic offset is
known, and the offset can only be measured where the exact LP is still
tractable. Calibration runs estimator-vs-exact pairs on small instances
of each topology *family* and records the observed estimate/exact ratio
range, widened by a safety margin:

    band = (ratio_min / (1 + margin), ratio_max * (1 + margin))

The band travels with every estimate: pass it as the backend's
``error_band`` option (see :meth:`CalibrationTable.config_for`) and the
pipeline stores it on the :class:`~repro.flow.result.ThroughputResult`
and in sweep CSVs, so downstream consumers can recover the implied
exact-throughput interval ``[estimate / hi, estimate / lo]``.

Calibration instances are seeded by content (family, size, replicate) —
re-running calibration is deterministic, and fresh replicates drawn with
a different base seed give honest held-out coverage checks (the
differential test matrix and ``benchmarks/bench_estimate.py`` gate on
exactly that).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from statistics import fmean
from typing import Mapping

from repro.exceptions import ExperimentError
from repro.util.hashing import stable_seed

#: Default safety margin applied on both sides of the observed ratio range.
DEFAULT_MARGIN = 0.25

#: Families the scale experiment and benchmarks calibrate by default.
DEFAULT_FAMILIES: "dict[str, dict]" = {
    "rrg": {
        "kind": "rrg",
        "params": {"network_degree": 6, "servers_per_switch": 3},
        "size_param": "num_switches",
        "sizes": (16, 24),
    },
    "fat-tree": {
        "kind": "fat-tree",
        "params": {},
        "size_param": "k",
        "sizes": (4, 6),
    },
    "vl2": {
        "kind": "vl2",
        "params": {"servers_per_tor": 4},
        "size_params": ("da", "di"),
        "sizes": (4, 6),
    },
}


@dataclass(frozen=True)
class CalibrationRecord:
    """Observed estimate/exact ratio statistics for one (family, estimator)."""

    family: str
    estimator: str
    samples: int
    ratio_min: float
    ratio_mean: float
    ratio_max: float
    margin: float = DEFAULT_MARGIN

    def band(self) -> "tuple[float, float]":
        """The calibrated ``(lo, hi)`` multiplicative error band."""
        return (
            self.ratio_min / (1.0 + self.margin),
            self.ratio_max * (1.0 + self.margin),
        )

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "estimator": self.estimator,
            "samples": self.samples,
            "ratio_min": self.ratio_min,
            "ratio_mean": self.ratio_mean,
            "ratio_max": self.ratio_max,
            "margin": self.margin,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CalibrationRecord":
        return cls(
            family=str(payload["family"]),
            estimator=str(payload["estimator"]),
            samples=int(payload["samples"]),
            ratio_min=float(payload["ratio_min"]),
            ratio_mean=float(payload["ratio_mean"]),
            ratio_max=float(payload["ratio_max"]),
            margin=float(payload.get("margin", DEFAULT_MARGIN)),
        )


def within_band(
    estimate: float, exact: float, band: "tuple[float, float]",
    rel_tolerance: float = 1e-9,
) -> bool:
    """Whether ``estimate`` lies inside ``band`` relative to ``exact``."""
    lo, hi = band
    slack = rel_tolerance * max(abs(exact), 1.0)
    return lo * exact - slack <= estimate <= hi * exact + slack


class CalibrationTable:
    """All calibration records of one run, keyed by (family, estimator)."""

    def __init__(self, records: "list[CalibrationRecord] | None" = None) -> None:
        self._records: "dict[tuple[str, str], CalibrationRecord]" = {}
        for record in records or ():
            self.add(record)

    def add(self, record: CalibrationRecord) -> None:
        self._records[(record.family, record.estimator)] = record

    def get(self, family: str, estimator: str) -> CalibrationRecord:
        key = (family, self._canonical(estimator))
        if key not in self._records:
            known = ", ".join(
                f"{f}/{e}" for f, e in sorted(self._records)
            ) or "(empty table)"
            raise ExperimentError(
                f"no calibration for family {family!r} estimator "
                f"{estimator!r}; have: {known}"
            )
        return self._records[key]

    def band(self, family: str, estimator: str) -> "tuple[float, float]":
        return self.get(family, estimator).band()

    def records(self) -> "list[CalibrationRecord]":
        return [self._records[key] for key in sorted(self._records)]

    def config_for(self, family: str, estimator: str, **options):
        """A :class:`~repro.flow.solvers.SolverConfig` carrying the band.

        The returned config runs the estimator with its calibrated
        ``error_band`` attached, so every result it produces (and every
        cache entry / sweep row derived from it) records the band.
        """
        from repro.flow.solvers import SolverConfig

        return SolverConfig.make(
            self._canonical(estimator),
            error_band=self.band(family, estimator),
            **options,
        )

    @staticmethod
    def _canonical(estimator: str) -> str:
        from repro.flow.solvers import normalize_solver_name

        return normalize_solver_name(estimator)

    def to_dict(self) -> dict:
        return {"records": [record.to_dict() for record in self.records()]}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CalibrationTable":
        return cls(
            [
                CalibrationRecord.from_dict(entry)
                for entry in payload.get("records", ())
            ]
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path) -> "CalibrationTable":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def __len__(self) -> int:
        return len(self._records)


def calibration_pairs(
    family: str,
    spec: Mapping,
    sizes: "tuple | None" = None,
    replicates: int = 2,
    traffic: str = "permutation",
    traffic_params: "Mapping | None" = None,
    base_seed: int = 0,
):
    """Yield deterministic (topology, traffic matrix) calibration instances.

    Instance seeds hash (family, size, replicate, base_seed) by content,
    mirroring the pipeline's cell seeding: the same coordinates always
    build the same instance, and a different ``base_seed`` draws honest
    held-out replicates.

    The spec's ``size_params`` (default: ``(size_param,)``, default
    ``("num_switches",)``) lists every constructor parameter the size is
    injected into — VL2 calibrates with ``("da", "di")`` so both degrees
    sweep together.
    """
    import numpy as np

    from repro.topology.registry import factory_accepts_seed, make_topology
    from repro.traffic.registry import make_traffic

    size_params = tuple(
        spec.get("size_params", (spec.get("size_param", "num_switches"),))
    )
    params = dict(spec.get("params") or {})
    takes_seed = factory_accepts_seed(spec["kind"])
    for size in sizes if sizes is not None else spec.get("sizes", (16, 24)):
        for replicate in range(replicates):
            seed = stable_seed(
                {
                    "calibration": family,
                    "size": size,
                    "replicate": replicate,
                    "base": base_seed,
                }
            )
            topo_ss, traffic_ss = np.random.SeedSequence(seed).spawn(2)
            kwargs = dict(params)
            for name in size_params:
                kwargs[name] = size
            if takes_seed:
                kwargs["seed"] = topo_ss
            topo = make_topology(spec["kind"], **kwargs)
            tm = make_traffic(
                traffic, topo, seed=traffic_ss, **dict(traffic_params or {})
            )
            yield topo, tm


def calibrate_estimators(
    estimators: "tuple[str, ...]",
    families: "Mapping[str, Mapping] | None" = None,
    sizes: "tuple | None" = None,
    replicates: int = 2,
    traffic: str = "permutation",
    traffic_params: "Mapping | None" = None,
    margin: float = DEFAULT_MARGIN,
    base_seed: int = 0,
    exact_solver: str = "edge_lp",
    estimator_options: "Mapping[str, Mapping] | None" = None,
    solve=None,
) -> CalibrationTable:
    """Run estimator-vs-exact pairs and fit the per-family ratio bands.

    ``families`` maps a family label to a spec dict with keys ``kind``
    (topology registry name), ``params``, ``size_param`` and ``sizes``
    (defaults: :data:`DEFAULT_FAMILIES`); ``sizes`` given here overrides
    every family's own list. ``estimator_options`` maps estimator names
    to the keyword options to calibrate them under (a band only describes
    the configuration it was fit with — e.g. the sampled-LP estimator
    must validate with the same ``sample_fraction`` it calibrated with).
    Instances whose exact throughput is zero are skipped (nothing to
    take a ratio against).

    ``solve`` overrides the solve entry point — same signature as
    :func:`repro.flow.solvers.solve_throughput` (the default). The
    design engine passes a cache-routed wrapper here so calibration
    solves are content-addressed like every other evaluation.
    """
    from repro.flow.solvers import normalize_solver_name, solve_throughput

    if solve is None:
        solve = solve_throughput
    if margin < 0:
        raise ExperimentError(f"margin must be >= 0, got {margin}")
    if replicates < 1:
        raise ExperimentError(f"replicates must be >= 1, got {replicates}")
    estimator_keys = [normalize_solver_name(name) for name in estimators]
    if not estimator_keys:
        raise ExperimentError("need at least one estimator to calibrate")
    options_by_key = {
        normalize_solver_name(name): dict(opts)
        for name, opts in (estimator_options or {}).items()
    }
    table = CalibrationTable()
    for family, spec in (families or DEFAULT_FAMILIES).items():
        ratios: "dict[str, list[float]]" = {key: [] for key in estimator_keys}
        for topo, tm in calibration_pairs(
            family,
            spec,
            sizes=sizes,
            replicates=replicates,
            traffic=traffic,
            traffic_params=traffic_params,
            base_seed=base_seed,
        ):
            exact = solve(topo, tm, exact_solver).throughput
            if exact <= 0:
                continue
            for key in estimator_keys:
                estimate = solve(
                    topo, tm, key, **options_by_key.get(key, {})
                ).throughput
                ratios[key].append(estimate / exact)
        for key, observed in ratios.items():
            if not observed:
                raise ExperimentError(
                    f"family {family!r} produced no calibration pairs "
                    "(every exact solve returned zero throughput?)"
                )
            table.add(
                CalibrationRecord(
                    family=family,
                    estimator=key,
                    samples=len(observed),
                    ratio_min=min(observed),
                    ratio_mean=fmean(observed),
                    ratio_max=max(observed),
                    margin=margin,
                )
            )
    return table
