"""Capacity-charging throughput estimate (Theorem 1 at scale).

``estimate_bound`` reports the paper's path-length upper bound evaluated
against the *observed* network: total directed capacity divided by the
demand-weighted shortest-path hop sum,

    t_est = C / sum_pairs(units * dist(u, v)).

For random graphs this bound is the paper's headline comparison line —
§4 shows exact throughput tracks it within a few percent — which makes it
a remarkably good estimator exactly where exact LPs stop scaling.
Distances come from batched sparse BFS
(:func:`repro.metrics.paths.demand_hop_sum`), so N = 10,000 networks
evaluate in seconds.
"""

from __future__ import annotations

from repro.core.bounds import demand_throughput_upper_bound
from repro.estimate.common import (
    check_error_band,
    finish_estimate,
    prepare_estimate,
)
from repro.flow.result import ThroughputResult
from repro.metrics.paths import demand_hop_sum
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix

SOLVER_LABEL = "estimate-bound"


def estimate_bound(
    topo: Topology,
    traffic: TrafficMatrix,
    unreachable: str = "error",
    error_band=None,
    chunk_size: int = 512,
    max_sources: "int | None" = None,
    seed: int = 0,
) -> ThroughputResult:
    """ASPL/capacity-charging throughput estimate (an upper bound).

    Parameters mirror the exact backends; ``error_band`` attaches a
    calibrated ``(lo, hi)`` ratio band (see
    :mod:`repro.estimate.calibrate`) to the result, ``chunk_size`` sets
    the BFS source batch size (memory/speed knob only).

    The returned throughput never falls below the exact LP value for the
    same instance — it is a true upper bound, tight on expanders.

    ``max_sources`` turns the exact hop sum into a sampled one (BFS from
    that many demand sources, Horvitz-Thompson scaled; deterministic in
    ``seed``) — the N = 100,000 configuration benchmarked in
    ``BENCH_solvers.json``. Sampling trades the hard upper-bound
    guarantee for an unbiased estimate of the bound whose relative error
    on permutation workloads is far below the estimator's calibrated
    band.
    """
    band = check_error_band(error_band)
    served, dropped, dropped_demand, short = prepare_estimate(
        topo, traffic, unreachable, SOLVER_LABEL
    )
    if short is not None:
        short.error_band = band
        return short
    hop_sum = demand_hop_sum(
        topo,
        served,
        chunk_size=chunk_size,
        max_sources=max_sources,
        seed=seed,
    )
    throughput = demand_throughput_upper_bound(topo.total_capacity, hop_sum)
    return finish_estimate(
        throughput, served, SOLVER_LABEL, dropped, dropped_demand, band
    )
