"""Scalable throughput estimation.

Exact multicommodity-flow solves stop being practical around a few
hundred switches; the paper's claims are about networks two orders of
magnitude larger. This package provides throughput *estimators* that are
registered as first-class solver backends (see :mod:`repro.flow.solvers`)
so the whole pipeline — scenario grids, the result cache, the sweep CLI,
experiments — can take sweeps to N = 10,000:

- ``estimate_bound`` — Theorem 1's capacity-charging bound with observed
  demand-weighted path lengths (true upper bound, tight on expanders),
- ``estimate_cut`` — minimum over sparse sampled cuts (Fiedler sweep,
  random bipartitions, single-switch cuts; true upper bound),
- ``estimate_spectral`` — algebraic-connectivity expansion certificate
  (cheapest; coarse, order-of-magnitude),
- ``estimate_sampled_lp`` — exact LP on a scaled demand sample
  (mid-scale; concentrates on exchangeable workloads).

:mod:`repro.estimate.calibrate` measures each estimator's offset against
exact LPs at small N and produces per-family error bands that travel on
the results. See ``docs/estimation.md`` for the taxonomy and when to
trust which estimator.
"""

from repro.estimate.batch import (
    LADDER_SOLVERS,
    SharedArtifacts,
    active_artifacts,
    run_ladder,
    shared_artifacts,
)
from repro.estimate.bound import estimate_bound
from repro.estimate.cut import estimate_cut
from repro.estimate.sampled_lp import estimate_sampled_lp
from repro.estimate.spectral import estimate_spectral
from repro.estimate.calibrate import (
    DEFAULT_FAMILIES,
    DEFAULT_MARGIN,
    CalibrationRecord,
    CalibrationTable,
    calibrate_estimators,
    calibration_pairs,
    within_band,
)

#: Canonical registry keys of every estimator backend, in registration order.
ESTIMATOR_BACKENDS = (
    "estimate_bound",
    "estimate_cut",
    "estimate_spectral",
    "estimate_sampled_lp",
)

__all__ = [
    "ESTIMATOR_BACKENDS",
    "LADDER_SOLVERS",
    "SharedArtifacts",
    "active_artifacts",
    "run_ladder",
    "shared_artifacts",
    "DEFAULT_FAMILIES",
    "DEFAULT_MARGIN",
    "CalibrationRecord",
    "CalibrationTable",
    "calibrate_estimators",
    "calibration_pairs",
    "estimate_bound",
    "estimate_cut",
    "estimate_sampled_lp",
    "estimate_spectral",
    "within_band",
]
