"""Sampled-demand exact-LP throughput estimate.

Solve the *exact* concurrent-flow LP, but on a uniformly sampled subset
of the demand pairs, with the sampled units scaled up so total offered
demand is preserved:

    sample m of the p pairs, multiply each sampled unit count by
    (total units) / (sampled units), solve edge_lp on the surrogate.

On *dense* workloads (all-to-all, gravity — many pairs per source) the
sampled pairs preserve every switch's demand marginal in expectation, so
the surrogate's arc-load profile concentrates around the full problem's
as m grows and the optimum tracks the true throughput (biased mildly low;
the calibration bands quantify it). On *atomic* workloads (permutation:
one pair per source) pair sampling concentrates whole flows onto few
sources and the estimate degrades — use ``estimate_bound`` there.
Unlike the bound/cut estimators this one is neither an upper nor a
lower bound in general. The payoff is LP size: commodities scale with
distinct sampled sources instead of N^2 pairs.

This is the mid-scale workhorse: exact enough to cross-check the
closed-form estimators at N in the hundreds-to-thousands, far past
where the full LP gives up, but not intended for N = 10,000 (use
``estimate_bound``/``estimate_cut`` there).
"""

from __future__ import annotations

import numpy as np

from repro.estimate.common import check_error_band, prepare_estimate
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.result import ThroughputResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.util.validation import check_positive_int

SOLVER_LABEL = "estimate-sampled-lp"


def estimate_sampled_lp(
    topo: Topology,
    traffic: TrafficMatrix,
    unreachable: str = "error",
    error_band=None,
    max_pairs: int = 128,
    sample_fraction: "float | None" = None,
    min_pairs: int = 16,
    seed: int = 0,
) -> ThroughputResult:
    """Exact LP on a scaled demand sample of at most ``max_pairs`` pairs.

    When the workload already has ``max_pairs`` or fewer pairs the full
    LP is solved and the "estimate" coincides with the exact optimum
    (still reported with ``exact=False``/``is_estimate=True`` so callers
    treat all estimator output uniformly). ``seed`` drives the pair
    sample; the arc flows on the result are the surrogate problem's
    optimal flows (a genuinely feasible routing of the sampled demand).

    ``sample_fraction`` replaces the absolute cap with a *relative* one
    (still clamped to ``[min_pairs, max_pairs]``): the sampling bias is
    governed by the sampled fraction, so holding the fraction constant
    across sizes is what makes one calibrated band transfer along a size
    sweep.
    """
    check_positive_int(max_pairs, "max_pairs")
    check_positive_int(min_pairs, "min_pairs")
    band = check_error_band(error_band)
    served, dropped, dropped_demand, short = prepare_estimate(
        topo, traffic, unreachable, SOLVER_LABEL
    )
    if short is not None:
        short.error_band = band
        return short

    pairs = sorted(
        served.demands.items(), key=lambda kv: (repr(kv[0][0]), repr(kv[0][1]))
    )
    if sample_fraction is not None:
        if not 0 < sample_fraction <= 1:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        max_pairs = min(
            max_pairs, max(min_pairs, round(sample_fraction * len(pairs)))
        )
    if len(pairs) > max_pairs:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(pairs), size=max_pairs, replace=False)
        sampled = [pairs[i] for i in sorted(chosen)]
        total_units = served.total_demand
        sampled_units = float(sum(units for _, units in sampled))
        scale = total_units / sampled_units
        surrogate = TrafficMatrix(
            name=f"{served.name}|sampled{max_pairs}",
            demands={pair: units * scale for pair, units in sampled},
            num_flows=served.num_flows,
            num_local_flows=served.num_local_flows,
        )
    else:
        surrogate = served

    solved = max_concurrent_flow(topo, surrogate)
    return ThroughputResult(
        throughput=solved.throughput,
        arc_flows=solved.arc_flows,
        arc_capacities=solved.arc_capacities,
        total_demand=surrogate.total_demand,
        solver=SOLVER_LABEL,
        exact=False,
        dropped_pairs=tuple(dropped),
        dropped_demand=dropped_demand,
        is_estimate=True,
        error_band=band,
    )
