"""Batched estimator evaluation over shared per-instance artifacts.

The estimator ladder (``bound`` / ``cut`` / ``spectral``) repeats two
expensive per-instance computations when backends run one at a time:

- the **sparse CSR adjacency** (``bound``'s batched BFS; several seconds
  to build at N = 100,000), and
- the **Fiedler eigenpair** — ``cut`` needs the vector for its sweep
  prefixes, ``spectral`` needs the eigenvalue, and both come out of the
  *same* ARPACK solve (minutes at N = 100,000).

:class:`SharedArtifacts` memoizes both, keyed by topology object
identity, and :func:`shared_artifacts` scopes the memo with a context
manager (the :func:`repro.pipeline.cache.cache_context` idiom — the
metric helpers consult :func:`active_artifacts` so backend signatures
never change). Identity keying is deliberate: the memo is only valid
while the topology is not mutated, and the context bounds exactly that
window — the sweep engine opens one context per grid-cell batch, inside
which every solver column sees the same frozen instance.

Numerics are untouched: a memo hit returns the same arrays the direct
computation would produce, so batched results are identical to per-cell
results, not merely close.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

from repro.exceptions import FlowError
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix


class SharedArtifacts:
    """Per-instance artifact memo shared across estimator backends.

    Entries hold a strong reference to their topology, so an ``id()``
    can never be recycled onto a different live object while memoized.
    """

    def __init__(self) -> None:
        self._fiedler: dict = {}
        self._csr: dict = {}
        self.stats = {
            "fiedler_solves": 0,
            "fiedler_hits": 0,
            "csr_builds": 0,
            "csr_hits": 0,
        }

    def fiedler_pair(self, topo: Topology, weighted: bool = True):
        """Memoized ``(lambda_2, fiedler vector, node order)`` for ``topo``."""
        from repro.metrics.spectral import _sparse_fiedler_pair

        key = (id(topo), bool(weighted))
        entry = self._fiedler.get(key)
        if entry is not None and entry[0] is topo:
            self.stats["fiedler_hits"] += 1
            return entry[1]
        pair = _sparse_fiedler_pair(topo, weighted=weighted)
        self.stats["fiedler_solves"] += 1
        self._fiedler[key] = (topo, pair)
        return pair

    def csr_adjacency(self, topo: Topology):
        """Memoized unweighted CSR adjacency over ``topo.switches`` order."""
        import networkx as nx

        entry = self._csr.get(id(topo))
        if entry is not None and entry[0] is topo:
            self.stats["csr_hits"] += 1
            return entry[1]
        adjacency = nx.to_scipy_sparse_array(
            topo.graph, nodelist=topo.switches, weight=None, format="csr"
        )
        self.stats["csr_builds"] += 1
        self._csr[id(topo)] = (topo, adjacency)
        return adjacency


_ACTIVE_ARTIFACTS: "ContextVar[SharedArtifacts | None]" = ContextVar(
    "repro_active_artifacts", default=None
)


@contextmanager
def shared_artifacts(store: "SharedArtifacts | None" = None):
    """Scope a :class:`SharedArtifacts` memo over the enclosed solves.

    Yields the active store (a fresh one when ``store`` is ``None``).
    Within the context the topology objects being solved must not be
    mutated — the sweep engine guarantees this per batch; direct callers
    own the same obligation.
    """
    active = store if store is not None else SharedArtifacts()
    token = _ACTIVE_ARTIFACTS.set(active)
    try:
        yield active
    finally:
        _ACTIVE_ARTIFACTS.reset(token)


def active_artifacts() -> "SharedArtifacts | None":
    """The store of the enclosing :func:`shared_artifacts`, if any."""
    return _ACTIVE_ARTIFACTS.get()


#: Estimator ladder rungs in cost order (cheapest eigensolve last so a
#: ladder run exercises the memo: ``cut`` computes the Fiedler pair,
#: ``spectral`` reuses it).
LADDER_SOLVERS = ("bound", "cut", "spectral")


def run_ladder(
    topo: Topology,
    traffic: TrafficMatrix,
    solvers=LADDER_SOLVERS,
    options: "dict | None" = None,
    store: "SharedArtifacts | None" = None,
) -> dict:
    """Run several estimator backends over one shared-artifact scope.

    ``solvers`` names rungs of the ladder (``bound`` / ``cut`` /
    ``spectral``); ``options`` maps a rung name to keyword arguments for
    its backend. Returns ``{name: ThroughputResult}`` — each result
    identical to calling the backend alone, with the CSR adjacency and
    the Fiedler eigensolve paid once instead of per rung. Passing
    ``store`` carries the memo across several calls on the same frozen
    topology (e.g. per-rung timing loops).
    """
    from repro.estimate.bound import estimate_bound
    from repro.estimate.cut import estimate_cut
    from repro.estimate.spectral import estimate_spectral

    backends = {
        "bound": estimate_bound,
        "cut": estimate_cut,
        "spectral": estimate_spectral,
    }
    options = options or {}
    unknown = [name for name in solvers if name not in backends]
    if unknown:
        raise FlowError(
            f"unknown ladder solver(s) {unknown!r}; known: {sorted(backends)}"
        )
    results: dict = {}
    with shared_artifacts(store):
        for name in solvers:
            results[name] = backends[name](topo, traffic, **options.get(name, {}))
    return results
