"""Shared scaffolding for the throughput estimators.

Every estimator backend follows the same contract as the exact engines:
``fn(topo, traffic, unreachable=..., **options) -> ThroughputResult``.
The helpers here centralize the two pieces that must behave *identically*
to the exact solvers — the unreachable-demand policy (see
:mod:`repro.flow.reachability`) and the result bookkeeping — so the
differential test matrix can hold estimators and LPs to the same rules.

Estimates carry no per-arc flow data (``arc_flows``/``arc_capacities``
empty) unless an estimator actually computed a feasible flow; callers
reading ``utilization`` from an estimate get 0.0 by convention.
"""

from __future__ import annotations

from repro.exceptions import FlowError
from repro.flow.reachability import resolve_unreachable, unserved_result
from repro.flow.result import ThroughputResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix


def check_error_band(error_band) -> "tuple[float, float] | None":
    """Validate and normalize an ``error_band`` option to ``(lo, hi)``."""
    if error_band is None:
        return None
    band = tuple(float(b) for b in error_band)
    if len(band) != 2:
        raise FlowError(
            f"error_band must be a (lo, hi) pair, got {error_band!r}"
        )
    lo, hi = band
    if not 0 < lo <= hi:
        raise FlowError(
            f"error_band must satisfy 0 < lo <= hi, got ({lo}, {hi})"
        )
    return band


def prepare_estimate(
    topo: Topology,
    traffic: TrafficMatrix,
    unreachable: str,
    solver_label: str,
) -> "tuple[TrafficMatrix, tuple, float, ThroughputResult | None]":
    """Apply the unreachable policy exactly as the exact backends do.

    Returns ``(served traffic, dropped pairs, dropped demand, short)``
    where ``short`` is a ready zero-throughput result when the served set
    is empty (the estimator then returns it unchanged).
    """
    served, dropped, dropped_demand = resolve_unreachable(
        topo, traffic, unreachable
    )
    if dropped and not served.demands:
        short = unserved_result(
            topo, solver_label, dropped, dropped_demand, exact=False
        )
        short.is_estimate = True
        return served, dropped, dropped_demand, short
    if not served.demands:
        raise FlowError("traffic matrix has no network demands")
    served.validate_against(topo.switches)
    return served, dropped, dropped_demand, None


def finish_estimate(
    throughput: float,
    traffic: TrafficMatrix,
    solver_label: str,
    dropped: tuple,
    dropped_demand: float,
    error_band: "tuple | None",
    arc_flows: "dict | None" = None,
    arc_capacities: "dict | None" = None,
) -> ThroughputResult:
    """Assemble the estimator's :class:`ThroughputResult`."""
    return ThroughputResult(
        throughput=float(throughput),
        arc_flows=arc_flows or {},
        arc_capacities=arc_capacities or {},
        total_demand=traffic.total_demand,
        solver=solver_label,
        exact=False,
        dropped_pairs=tuple(dropped),
        dropped_demand=dropped_demand,
        is_estimate=True,
        error_band=error_band,
    )
