"""Sampled-cut throughput estimate.

Any node set S yields an upper bound on concurrent throughput: the flow
crossing between S and its complement cannot exceed the crossing
capacity, so ``t <= cap(S) / dem(S)`` where both sides count each
direction (the convention of :meth:`Topology.cut_capacity` and Theorem 3's
demand graph — cf. :mod:`repro.core.cut_bounds`). The exact sparsest cut
is NP-hard; this estimator takes the *minimum over a sparse sample* of
candidate cuts:

- prefixes of the Fiedler-vector sweep (the classic spectral cut
  heuristic of :mod:`repro.metrics.cuts`, here on the sparse
  eigensolver so N = 10,000 stays tractable),
- random balanced bipartitions, and
- all single-switch cuts (the local "thin ToR uplink" bottleneck).

Every candidate is a valid upper bound, so the minimum is too. Jyothi et
al. (arXiv:1402.2531) observe that such cut estimates track exact
throughput closely on both structured and random topologies.
"""

from __future__ import annotations

import numpy as np

from repro.estimate.common import (
    check_error_band,
    finish_estimate,
    prepare_estimate,
)
from repro.flow.result import ThroughputResult
from repro.metrics.spectral import sparse_fiedler_vector
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.util.validation import check_positive_int

SOLVER_LABEL = "estimate-cut"


def _cut_ratios(
    topo: Topology,
    traffic: TrafficMatrix,
    num_sweep_cuts: int,
    num_random_cuts: int,
    seed,
) -> float:
    """Minimum cap/demand ratio over the sampled candidate sides."""
    nodes = topo.switches
    n = len(nodes)
    index = {node: i for i, node in enumerate(nodes)}

    links = topo.links
    link_u = np.fromiter(
        (index[link.u] for link in links), dtype=np.int64, count=len(links)
    )
    link_v = np.fromiter(
        (index[link.v] for link in links), dtype=np.int64, count=len(links)
    )
    link_cap = np.fromiter(
        (link.capacity for link in links), dtype=np.float64, count=len(links)
    )

    pairs = list(traffic.demands.items())
    dem_u = np.fromiter(
        (index[u] for (u, _), _ in pairs), dtype=np.int64, count=len(pairs)
    )
    dem_v = np.fromiter(
        (index[v] for (_, v), _ in pairs), dtype=np.int64, count=len(pairs)
    )
    dem_units = np.fromiter(
        (units for _, units in pairs), dtype=np.float64, count=len(pairs)
    )

    def ratio(mask: np.ndarray) -> float:
        crossing = mask[link_u] != mask[link_v]
        capacity = 2.0 * float(link_cap[crossing].sum())
        separated = mask[dem_u] != mask[dem_v]
        demand = float(dem_units[separated].sum())
        if demand <= 0.0:
            return float("inf")
        return capacity / demand

    best = float("inf")

    # Fiedler sweep prefixes, evenly spaced (always includes the median).
    # All prefix masks come out of one stacked rank comparison — node i is
    # inside prefix p iff its sweep rank is below p — which is the
    # vectorized identity of the scatter loop (same masks, same ratios).
    order = sparse_fiedler_vector(topo)
    ranked = np.array(
        [index[node] for node, _ in sorted(order.items(), key=lambda kv: kv[1])]
    )
    positions = sorted(
        {
            int(p)
            for p in np.linspace(1, n - 1, num=min(num_sweep_cuts, n - 1))
        }
    )
    rank = np.empty(n, dtype=np.int64)
    rank[ranked] = np.arange(n)
    sweep_masks = rank[None, :] < np.asarray(positions, dtype=np.int64)[:, None]
    for mask in sweep_masks:
        best = min(best, ratio(mask))

    # Random balanced bipartitions.
    rng = np.random.default_rng(seed)
    for _ in range(num_random_cuts):
        mask = np.zeros(n, dtype=bool)
        mask[rng.permutation(n)[: n // 2]] = True
        best = min(best, ratio(mask))

    # All single-switch sides, in closed form: cap(v) is twice the sum of
    # incident link capacities, dem(v) the units touching v.
    node_cap = np.zeros(n)
    np.add.at(node_cap, link_u, link_cap)
    np.add.at(node_cap, link_v, link_cap)
    node_dem = np.zeros(n)
    np.add.at(node_dem, dem_u, dem_units)
    np.add.at(node_dem, dem_v, dem_units)
    active = node_dem > 0
    if active.any():
        best = min(
            best, float((2.0 * node_cap[active] / node_dem[active]).min())
        )
    return best


def estimate_cut(
    topo: Topology,
    traffic: TrafficMatrix,
    unreachable: str = "error",
    error_band=None,
    num_sweep_cuts: int = 24,
    num_random_cuts: int = 8,
    seed: int = 0,
) -> ThroughputResult:
    """Sampled sparsest-cut throughput estimate (an upper bound).

    ``num_sweep_cuts`` Fiedler-sweep prefixes, ``num_random_cuts`` random
    balanced bipartitions, and every single-switch cut are sampled; the
    reported throughput is the minimum cap/demand ratio. ``seed`` drives
    only the random bipartitions — the estimate is deterministic given it.
    """
    check_positive_int(num_sweep_cuts, "num_sweep_cuts")
    if num_random_cuts < 0:
        raise ValueError(f"num_random_cuts must be >= 0, got {num_random_cuts}")
    band = check_error_band(error_band)
    served, dropped, dropped_demand, short = prepare_estimate(
        topo, traffic, unreachable, SOLVER_LABEL
    )
    if short is not None:
        short.error_band = band
        return short
    best = _cut_ratios(topo, served, num_sweep_cuts, num_random_cuts, seed)
    if not np.isfinite(best):
        # Degenerate sample: no candidate separated any demand (possible
        # only on tiny or pathological instances). Fall back to the
        # capacity-charging bound so the estimate stays finite and valid.
        from repro.estimate.bound import estimate_bound

        fallback = estimate_bound(topo, served, unreachable="error")
        best = fallback.throughput
    return finish_estimate(
        best, served, SOLVER_LABEL, dropped, dropped_demand, band
    )
