"""Estimators honor the unreachable-demand policy exactly like exact solvers.

Satellite regression for the reachability/estimator interaction: on a
partitioned fabric, every estimator must (a) raise under
``unreachable="error"`` with the same exception type as the LPs, and
(b) under ``unreachable="drop"`` report dropped_pairs / dropped_demand /
served_fraction *identical* to the exact backend's bookkeeping — the
served set is a policy decision, not a solver detail.
"""

from __future__ import annotations

import pytest

from repro.estimate import ESTIMATOR_BACKENDS
from repro.exceptions import FlowError
from repro.flow.solvers import solve_throughput
from repro.resilience import FailureSpec, apply_failures
from repro.topology.base import Topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.base import TrafficMatrix
from repro.traffic.permutation import random_permutation_traffic


@pytest.fixture
def partitioned():
    """Two disjoint 2-cliques plus demand crossing the partition."""
    topo = Topology("partitioned")
    for v in range(4):
        topo.add_switch(v, servers=1)
    topo.add_link(0, 1)
    topo.add_link(2, 3)
    traffic = TrafficMatrix(
        name="cross",
        demands={(0, 1): 1.0, (0, 2): 2.0, (3, 1): 1.5, (2, 3): 1.0},
        num_flows=5,
        num_local_flows=0,
    )
    return topo, traffic


@pytest.fixture
def missing_endpoint():
    """Demand whose endpoint switch is not in the topology at all."""
    topo = Topology("short")
    topo.add_switch("a", servers=1)
    topo.add_switch("b", servers=1)
    topo.add_link("a", "b")
    traffic = TrafficMatrix(
        name="ghost",
        demands={("a", "b"): 1.0, ("a", "ghost"): 1.0},
        num_flows=2,
    )
    return topo, traffic


@pytest.mark.parametrize("name", ESTIMATOR_BACKENDS)
class TestErrorPolicy:
    def test_partition_raises(self, partitioned, name):
        topo, traffic = partitioned
        with pytest.raises(FlowError):
            solve_throughput(topo, traffic, name)

    def test_missing_endpoint_raises(self, missing_endpoint, name):
        topo, traffic = missing_endpoint
        with pytest.raises(FlowError):
            solve_throughput(topo, traffic, name, unreachable="error")

    def test_unknown_policy_rejected(self, partitioned, name):
        topo, traffic = partitioned
        with pytest.raises(FlowError):
            solve_throughput(topo, traffic, name, unreachable="maybe")


@pytest.mark.parametrize("name", ESTIMATOR_BACKENDS)
class TestDropBookkeepingParity:
    def test_matches_exact_backend_on_partition(self, partitioned, name):
        topo, traffic = partitioned
        reference = solve_throughput(
            topo, traffic, "edge_lp", unreachable="drop"
        )
        result = solve_throughput(topo, traffic, name, unreachable="drop")
        assert result.dropped_pairs == reference.dropped_pairs
        assert result.dropped_demand == reference.dropped_demand
        assert result.total_demand == reference.total_demand
        assert result.served_fraction == reference.served_fraction
        assert result.is_estimate

    def test_matches_exact_backend_on_missing_endpoint(
        self, missing_endpoint, name
    ):
        topo, traffic = missing_endpoint
        reference = solve_throughput(
            topo, traffic, "edge_lp", unreachable="drop"
        )
        result = solve_throughput(topo, traffic, name, unreachable="drop")
        assert result.dropped_pairs == reference.dropped_pairs
        assert result.dropped_demand == reference.dropped_demand
        assert result.served_fraction == reference.served_fraction

    def test_fully_unserved_returns_zero_estimate(self, name):
        topo = Topology("islands")
        for v in range(4):
            topo.add_switch(v, servers=1)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        traffic = TrafficMatrix(
            name="all-cross", demands={(0, 2): 1.0, (1, 3): 1.0}, num_flows=2
        )
        result = solve_throughput(topo, traffic, name, unreachable="drop")
        assert result.throughput == 0.0
        assert result.num_dropped_pairs == 2
        assert result.dropped_demand == 2.0
        assert result.is_estimate
        assert result.served_fraction == 0.0


@pytest.mark.parametrize("name", ESTIMATOR_BACKENDS)
def test_degraded_fabric_regression(name):
    """Estimators agree with the exact backend's served set on a fabric
    degraded enough to partition (switch failures at a high rate)."""
    topo = random_regular_topology(12, 3, servers_per_switch=2, seed=11)
    traffic = random_permutation_traffic(topo, seed=12)
    degraded = apply_failures(
        topo, FailureSpec.make("random_switches", rate=0.4), seed=5
    )
    reference = solve_throughput(
        degraded, traffic, "edge_lp", unreachable="drop"
    )
    result = solve_throughput(degraded, traffic, name, unreachable="drop")
    assert result.dropped_pairs == reference.dropped_pairs
    assert result.dropped_demand == reference.dropped_demand
    assert result.total_demand == reference.total_demand
    if reference.offered_demand > 0:
        assert result.served_fraction == reference.served_fraction
