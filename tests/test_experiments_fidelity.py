"""The fidelity experiment: §5 result, band gate, CLI plumbing."""

from __future__ import annotations

import pytest

from repro.experiments.fidelity import run_fidelity
from repro.experiments.registry import available_experiments, run_experiment
from repro.experiments.runner import main


@pytest.fixture(scope="module")
def result():
    return run_fidelity(k=4, runs=2, seed=0)


class TestRunFidelity:
    def test_reproduces_section5_ordering(self, result):
        """MPTCP-8 within a few % of the LP on the random graph; ECMP far off."""
        random_mptcp = result.get_series("MPTCP (Random (matched equipment))")
        random_ecmp = result.get_series("ECMP (Random (matched equipment))")
        assert random_mptcp.y_at(8) >= 0.9
        assert random_ecmp.y_at(8) <= 0.8
        assert random_mptcp.y_at(8) > random_ecmp.y_at(8)

    def test_mptcp_improves_with_subflows(self, result):
        for name in (
            "MPTCP (Random (matched equipment))",
            "MPTCP (Fat-tree (k=4))",
        ):
            ys = result.get_series(name).ys()
            assert ys[0] <= ys[-1]
            assert all(y <= 1 + 1e-6 for y in ys)

    def test_band_gate_is_clean(self, result):
        assert result.metadata["band_checks"] >= 8
        assert result.metadata["band_violations"] == 0
        assert result.metadata["calibration"]["records"]

    def test_route_stats_reported(self, result):
        stats = result.metadata["route_stats"]
        assert set(stats) == {"computed", "memo_hits", "disk_hits"}

    def test_registered(self):
        assert "fidelity" in available_experiments()
        small = run_experiment(
            "fidelity", k=4, runs=1, path_counts=(2,), subflow_counts=(2,)
        )
        assert small.series


class TestCli:
    def test_fidelity_subcommand(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["fidelity", "--k", "4", "--runs", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "routes computed:" in out
        assert "band violations: 0" in out

    def test_fidelity_listed_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "fidelity" in capsys.readouterr().out
