"""Tests for ECMP fluid throughput."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError
from repro.flow.ecmp import ecmp_throughput
from repro.flow.edge_lp import max_concurrent_flow
from repro.topology.base import Topology
from repro.topology.complete import complete_bipartite_topology
from repro.topology.hypercube import hypercube_topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.base import TrafficMatrix
from repro.traffic.permutation import random_permutation_traffic


class TestEcmpBasics:
    def test_single_shortest_path(self, path_two):
        tm = TrafficMatrix(name="x", demands={("a", "b"): 1.0}, num_flows=1)
        result = ecmp_throughput(path_two, tm)
        assert result.throughput == pytest.approx(1.0)
        assert result.arc_flows[("a", "b")] == pytest.approx(1.0)

    def test_ignores_longer_paths(self, triangle):
        # ECMP uses only the one-hop shortest path; the LP also exploits
        # the detour and doubles throughput.
        tm = TrafficMatrix(name="x", demands={(0, 1): 1.0}, num_flows=1)
        ecmp = ecmp_throughput(triangle, tm)
        optimal = max_concurrent_flow(triangle, tm)
        assert ecmp.throughput == pytest.approx(1.0)
        assert optimal.throughput == pytest.approx(2.0)

    def test_equal_split_two_hop(self):
        # Leaf-spine: two equal-cost 2-hop paths; each carries half.
        topo = complete_bipartite_topology(2, 2, servers_per_left=1)
        tm = TrafficMatrix(name="x", demands={("l0", "l1"): 1.0}, num_flows=1)
        result = ecmp_throughput(topo, tm)
        assert result.throughput == pytest.approx(2.0)
        assert result.arc_flows[("l0", "r0")] == pytest.approx(1.0)
        assert result.arc_flows[("l0", "r1")] == pytest.approx(1.0)

    def test_modes_agree_on_symmetric_dag(self):
        topo = hypercube_topology(3, servers_per_switch=1)
        tm = TrafficMatrix(name="x", demands={(0, 7): 1.0}, num_flows=1)
        per_hop = ecmp_throughput(topo, tm, mode="per-hop")
        per_path = ecmp_throughput(topo, tm, mode="per-path")
        assert per_hop.throughput == pytest.approx(per_path.throughput)

    def test_modes_differ_on_asymmetric_dag(self):
        # Diamond where one branch re-splits: per-hop puts 1/2 on the first
        # split and 1/4 on the re-split arcs; per-path puts 1/3 per path.
        topo = Topology("asym")
        for v in ("s", "a", "b", "c", "d", "t"):
            topo.add_switch(v)
        topo.add_link("s", "a")
        topo.add_link("a", "t")
        topo.add_link("s", "b")
        topo.add_link("b", "c")
        topo.add_link("b", "d")
        topo.add_link("c", "t")
        topo.add_link("d", "t")
        # Make both routes length 3: s-a-x-t needs an extra hop.
        topo.remove_link("a", "t")
        topo.add_switch("e")
        topo.add_link("a", "e")
        topo.add_link("e", "t")
        tm = TrafficMatrix(name="x", demands={("s", "t"): 1.0}, num_flows=1)
        per_hop = ecmp_throughput(topo, tm, mode="per-hop")
        per_path = ecmp_throughput(topo, tm, mode="per-path")
        assert per_hop.arc_flows[("s", "a")] == pytest.approx(
            per_hop.throughput * 0.5
        )
        assert per_path.arc_flows[("s", "a")] == pytest.approx(
            per_path.throughput / 3.0
        )


class TestEcmpVsOptimal:
    def test_never_beats_lp(self, small_rrg, small_rrg_traffic):
        lp = max_concurrent_flow(small_rrg, small_rrg_traffic).throughput
        for mode in ("per-hop", "per-path"):
            ecmp = ecmp_throughput(small_rrg, small_rrg_traffic, mode=mode)
            ecmp.validate_feasibility()
            assert ecmp.throughput <= lp * (1 + 1e-9)

    def test_loses_noticeably_on_random_graphs(self):
        """Jellyfish's observation: shortest-path-only routing wastes RRG
        capacity; optimal routing wins by a clear margin."""
        topo = random_regular_topology(16, 4, servers_per_switch=4, seed=3)
        traffic = random_permutation_traffic(topo, seed=4)
        lp = max_concurrent_flow(topo, traffic).throughput
        ecmp = ecmp_throughput(topo, traffic).throughput
        assert ecmp < 0.95 * lp

    def test_matches_lp_on_nonblocking_clos(self):
        from repro.topology.clos import leaf_spine_topology

        topo = leaf_spine_topology(4, 4, servers_per_leaf=4)
        traffic = random_permutation_traffic(topo, seed=5)
        lp = max_concurrent_flow(topo, traffic).throughput
        ecmp = ecmp_throughput(topo, traffic).throughput
        # All paths are shortest and symmetric: ECMP is optimal here.
        assert ecmp == pytest.approx(lp, rel=1e-6)


class TestValidation:
    def test_unknown_mode_rejected(self, triangle):
        tm = TrafficMatrix(name="x", demands={(0, 1): 1.0}, num_flows=1)
        with pytest.raises(FlowError, match="mode"):
            ecmp_throughput(triangle, tm, mode="bogus")

    def test_empty_traffic_rejected(self, triangle):
        tm = TrafficMatrix(name="none", demands={}, num_flows=0)
        with pytest.raises(FlowError, match="no network demands"):
            ecmp_throughput(triangle, tm)

    def test_unreachable_demand_rejected(self):
        topo = Topology("disc")
        topo.add_switch(0)
        topo.add_switch(1)
        topo.add_switch(2)
        topo.add_link(0, 1)
        tm = TrafficMatrix(name="x", demands={(0, 2): 1.0}, num_flows=1)
        with pytest.raises(FlowError, match="no path"):
            ecmp_throughput(topo, tm)

    def test_result_marked_inexact(self, triangle):
        tm = TrafficMatrix(name="x", demands={(0, 1): 1.0}, num_flows=1)
        result = ecmp_throughput(triangle, tm)
        assert not result.exact
        assert result.solver == "ecmp-per-hop"


class TestPerPathTruncation:
    """Per-path mode caps enumerated paths; the cap is a parameter and
    hitting it is reported, never silent."""

    def _k33_pair(self):
        # Complete bipartite K(3,3): a same-side pair has 3 two-hop
        # shortest paths, one per opposite-side switch.
        topo = Topology("k33")
        left = ["l0", "l1", "l2"]
        right = ["r0", "r1", "r2"]
        for v in left + right:
            topo.add_switch(v, servers=1)
        for u in left:
            for v in right:
                topo.add_link(u, v)
        tm = TrafficMatrix(
            name="pair", demands={("l0", "l1"): 1.0}, num_flows=1
        )
        return topo, tm

    def test_truncation_counted(self):
        topo, tm = self._k33_pair()
        result = ecmp_throughput(topo, tm, mode="per-path", max_paths=2)
        assert result.truncated_pairs == 1
        # Demand split over 2 of the 3 shortest paths.
        assert result.throughput == pytest.approx(2.0)

    def test_no_truncation_at_exact_count(self):
        topo, tm = self._k33_pair()
        result = ecmp_throughput(topo, tm, mode="per-path", max_paths=3)
        assert result.truncated_pairs == 0
        assert result.throughput == pytest.approx(3.0)

    def test_default_cap_not_truncated_on_small_graphs(
        self, small_rrg, small_rrg_traffic
    ):
        result = ecmp_throughput(
            small_rrg, small_rrg_traffic, mode="per-path"
        )
        assert result.truncated_pairs == 0

    def test_per_hop_never_truncates(self, small_rrg, small_rrg_traffic):
        result = ecmp_throughput(small_rrg, small_rrg_traffic, mode="per-hop")
        assert result.truncated_pairs == 0

    def test_invalid_cap_rejected(self, triangle):
        tm = TrafficMatrix(name="x", demands={(0, 1): 1.0}, num_flows=1)
        with pytest.raises(ValueError, match="max_paths"):
            ecmp_throughput(triangle, tm, mode="per-path", max_paths=0)

    def test_truncated_pairs_serialized(self):
        import json

        topo, tm = self._k33_pair()
        result = ecmp_throughput(topo, tm, mode="per-path", max_paths=2)
        from repro.flow.result import ThroughputResult

        restored = ThroughputResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored.truncated_pairs == 1
