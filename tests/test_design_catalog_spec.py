"""Tests for the parts catalog and the design spec containers."""

from __future__ import annotations

import pytest

from repro.design import DesignSpec, PartsCatalog, SwitchSKU, default_catalog
from repro.design.spec import DEFAULT_WEIGHTS
from repro.exceptions import DesignError
from repro.topology.random_regular import random_regular_topology


class TestSwitchSKU:
    def test_cost_all_ports_by_default(self):
        sku = SwitchSKU(name="s", ports=8, unit_cost=100.0, port_cost=10.0)
        assert sku.cost() == pytest.approx(180.0)
        assert sku.cost(ports_used=4) == pytest.approx(140.0)

    def test_overlit_rejected(self):
        sku = SwitchSKU(name="s", ports=8, unit_cost=100.0)
        with pytest.raises(DesignError, match="cannot light"):
            sku.cost(ports_used=9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ports": 0},
            {"unit_cost": -1.0},
            {"port_cost": -0.5},
            {"line_speed": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        base = {"name": "s", "ports": 8, "unit_cost": 1.0}
        base.update(kwargs)
        with pytest.raises(DesignError):
            SwitchSKU(**base)


class TestPartsCatalog:
    def test_duplicate_sku_names_rejected(self):
        sku = SwitchSKU(name="s", ports=8, unit_cost=1.0)
        with pytest.raises(DesignError, match="duplicate"):
            PartsCatalog(skus=(sku, sku))

    def test_empty_catalog_rejected(self):
        with pytest.raises(DesignError, match="at least one SKU"):
            PartsCatalog(skus=())

    def test_cheapest_sku_prices_lit_ports(self):
        # The big chassis with cheap optics wins once enough ports are lit.
        small = SwitchSKU(name="small", ports=8, unit_cost=100.0, port_cost=50.0)
        big = SwitchSKU(name="big", ports=32, unit_cost=300.0, port_cost=5.0)
        catalog = PartsCatalog(skus=(small, big))
        assert catalog.cheapest_sku_for(4).name == "small"
        assert catalog.cheapest_sku_for(8).name == "big"
        assert catalog.cheapest_sku_for(33) is None
        assert catalog.max_ports() == 32

    def test_equipment_cost(self):
        catalog = default_catalog()
        bill = {"edge8": 3, "edge16": 1}
        expected = 3 * (600.0 + 8 * 40.0) + (1500.0 + 16 * 50.0)
        assert catalog.equipment_cost(bill) == pytest.approx(expected)
        partial = catalog.equipment_cost(bill, ports_used={"edge8": 4})
        assert partial == pytest.approx(
            3 * (600.0 + 4 * 40.0) + (1500.0 + 16 * 50.0)
        )

    def test_unknown_sku_rejected(self):
        with pytest.raises(DesignError, match="unknown SKU"):
            default_catalog().equipment_cost({"nope": 1})

    def test_cabling_cost_deterministic(self):
        topo = random_regular_topology(8, 3, seed=7)
        catalog = default_catalog()
        assert catalog.cabling_cost(topo, seed=3) == pytest.approx(
            catalog.cabling_cost(topo, seed=3)
        )
        assert catalog.cabling_cost(topo) > 0

    def test_json_round_trip(self, tmp_path):
        catalog = default_catalog()
        path = tmp_path / "catalog.json"
        catalog.save(path)
        assert PartsCatalog.load(path) == catalog


class TestDesignSpec:
    def test_round_trip(self):
        spec = DesignSpec.make(
            budget=5e4,
            servers=32,
            weights={"cost": 2.0},
            generators=("rrg", "fat-tree"),
            anneal_steps=8,
        )
        assert DesignSpec.from_dict(spec.to_dict()) == spec
        assert hash(spec) == hash(DesignSpec.from_dict(spec.to_dict()))

    def test_weights_merge_defaults(self):
        spec = DesignSpec.make(budget=1.0, servers=1, weights={"cost": 3.0})
        weights = spec.weights_dict()
        assert weights["cost"] == 3.0
        assert weights["churn"] == DEFAULT_WEIGHTS["churn"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget": 0.0},
            {"servers": 0},
            {"replicates": 0},
            {"failure_rate": 1.0},
            {"exact_limit": -1},
            {"anneal_steps": -1},
        ],
    )
    def test_validation(self, kwargs):
        base = {"budget": 100.0, "servers": 4}
        base.update(kwargs)
        with pytest.raises(DesignError):
            DesignSpec(**base)
