"""Tests for JSON round-trip and DOT export of topologies."""

from __future__ import annotations

import io
import json

import pytest

from repro.exceptions import TopologyError
from repro.topology.serialization import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
    topology_to_dot,
)
from repro.topology.two_cluster import two_cluster_random_topology
from repro.topology.vl2 import vl2_topology


def _equivalent(a, b) -> bool:
    if set(map(repr, a.switches)) != set(map(repr, b.switches)):
        return False
    def edge_set(t):
        return {
            (tuple(sorted((repr(l.u), repr(l.v)))), round(l.capacity, 9))
            for t_l in [t] for l in t_l.links
        }
    return edge_set(a) == edge_set(b)


class TestJsonRoundTrip:
    def test_two_cluster_roundtrip(self):
        topo = two_cluster_random_topology(
            3, 4, 5, 2, servers_per_large=2, servers_per_small=1, seed=1
        )
        clone = topology_from_dict(topology_to_dict(topo))
        assert _equivalent(topo, clone)
        assert clone.num_servers == topo.num_servers
        assert clone.cluster_of(0) == "large"

    def test_string_node_ids(self):
        topo = vl2_topology(4, 4, servers_per_tor=2)
        clone = topology_from_dict(topology_to_dict(topo))
        assert _equivalent(topo, clone)
        assert clone.switch_type_of("tor0") == "tor"

    def test_tuple_node_ids(self):
        from repro.topology.dragonfly import dragonfly_topology

        topo = dragonfly_topology(2, servers_per_router=1)
        clone = topology_from_dict(topology_to_dict(topo))
        assert _equivalent(topo, clone)
        assert (0, 0) in clone

    def test_file_round_trip(self, tmp_path):
        topo = vl2_topology(4, 4, servers_per_tor=2)
        path = str(tmp_path / "topo.json")
        save_topology(topo, path)
        assert _equivalent(topo, load_topology(path))

    def test_stream_round_trip(self):
        topo = vl2_topology(4, 4, servers_per_tor=2)
        buffer = io.StringIO()
        save_topology(topo, buffer)
        buffer.seek(0)
        assert _equivalent(topo, load_topology(buffer))

    def test_wrong_schema_rejected(self):
        with pytest.raises(TopologyError, match="schema"):
            topology_from_dict({"schema_version": 99, "switches": [], "links": []})

    def test_unserializable_node_rejected(self):
        from repro.topology.base import Topology

        topo = Topology("bad")
        topo.add_switch(frozenset({1}))
        with pytest.raises(TopologyError, match="cannot serialize"):
            topology_to_dict(topo)

    def test_json_is_valid(self):
        topo = vl2_topology(4, 4)
        text = json.dumps(topology_to_dict(topo))
        assert json.loads(text)["name"].startswith("vl2")


class TestDotExport:
    def test_contains_nodes_and_edges(self):
        topo = vl2_topology(4, 4, servers_per_tor=2)
        dot = topology_to_dot(topo)
        assert dot.startswith("graph")
        assert dot.rstrip().endswith("}")
        assert "'tor0'" in dot
        assert "--" in dot

    def test_cluster_colors_differ(self):
        topo = two_cluster_random_topology(3, 4, 4, 3, seed=2)
        dot = topology_to_dot(topo)
        colors = {
            line.split("fillcolor=")[1].rstrip("];")
            for line in dot.splitlines()
            if "fillcolor=" in line
        }
        assert len(colors) >= 2

    def test_penwidth_scales_with_capacity(self):
        from repro.topology.base import Topology

        topo = Topology("caps")
        topo.add_switch(0)
        topo.add_switch(1)
        topo.add_switch(2)
        topo.add_link(0, 1, capacity=1.0)
        topo.add_link(1, 2, capacity=10.0)
        dot = topology_to_dot(topo)
        widths = [
            float(part.split("penwidth=")[1].split(",")[0])
            for part in dot.splitlines()
            if "penwidth=" in part
        ]
        assert max(widths) > min(widths)
