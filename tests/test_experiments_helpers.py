"""Tests for experiment-harness helper internals."""

from __future__ import annotations


from repro.experiments.fig04 import _subsample
from repro.experiments.fig07 import _spread_splits
from repro.experiments.heterogeneity import (
    ClusteredSample,
    TwoTypeConfig,
    clustered_throughput,
    mixed_speed_throughput,
    unbiased_throughput,
)


class TestSubsampling:
    def test_subsample_keeps_endpoints(self):
        items = list(range(20))
        picked = _subsample(items, 5)
        assert len(picked) == 5
        assert picked[0] == 0
        assert picked[-1] == 19

    def test_subsample_short_lists_unchanged(self):
        items = [1, 2, 3]
        assert _subsample(items, 10) == items

    def test_spread_splits_endpoints(self):
        from repro.core.placement import feasible_server_splits

        splits = feasible_server_splits(8, 15, 16, 5, 96)
        spread = _spread_splits(splits, 4)
        assert len(spread) == 4
        assert spread[0] == splits[0]
        assert spread[-1] == splits[-1]


class TestTwoTypeConfig:
    def test_total_ports(self):
        config = TwoTypeConfig(8, 15, 16, 5, 96)
        assert config.total_ports == 8 * 15 + 16 * 5

    def test_describe_uses_label(self):
        config = TwoTypeConfig(8, 15, 16, 5, 96, label="mine")
        assert config.describe() == "mine"
        unnamed = TwoTypeConfig(8, 15, 16, 5, 96)
        assert "8x15p" in unnamed.describe()


class TestThroughputHelpers:
    CONFIG = TwoTypeConfig(4, 10, 8, 4, 28)

    def test_unbiased_mean_and_std(self):
        mean, std = unbiased_throughput(self.CONFIG, 5, 1, runs=2, seed=1)
        assert mean > 0
        assert std >= 0

    def test_clustered_detailed_samples(self):
        mean, std, samples = clustered_throughput(
            self.CONFIG, 5, 1, cross_fraction=1.0, runs=2, seed=2, detailed=True
        )
        assert len(samples) == 2
        for sample in samples:
            assert isinstance(sample, ClusteredSample)
            assert sample.cut_capacity > 0
            assert sample.total_capacity > sample.cut_capacity
            if sample.throughput > 0:
                assert sample.aspl >= 1.0

    def test_clustered_cross_controls_cut(self):
        _, _, samples_low = clustered_throughput(
            self.CONFIG, 5, 1, cross_fraction=0.3, runs=2, seed=3, detailed=True
        )
        _, _, samples_high = clustered_throughput(
            self.CONFIG, 5, 1, cross_fraction=1.0, runs=2, seed=3, detailed=True
        )
        assert samples_low[0].cut_capacity < samples_high[0].cut_capacity

    def test_mixed_speed_more_capacity_not_worse(self):
        slow, _ = mixed_speed_throughput(
            self.CONFIG, 5, 1, cross_fraction=1.0,
            high_ports_per_large=1, high_speed=2.0, runs=2, seed=4,
        )
        fast, _ = mixed_speed_throughput(
            self.CONFIG, 5, 1, cross_fraction=1.0,
            high_ports_per_large=1, high_speed=16.0, runs=2, seed=4,
        )
        assert fast >= slow - 0.1  # same seeds, strictly more capacity


class TestPaperConfigGenerators:
    def test_fig11_paper_configs(self):
        from repro.experiments.fig11 import paper_configs

        configs = paper_configs()
        assert len(configs) == 18
        assert len({c.label for c in configs}) == 18

    def test_fig11_paper_configs_truncation(self):
        from repro.experiments.fig11 import paper_configs

        assert len(paper_configs(5)) == 5
