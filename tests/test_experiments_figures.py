"""Integration tests: every figure experiment runs at micro scale and
reproduces the paper's qualitative shape.

These are the repository's "does the reproduction reproduce" checks: each
test asserts the *claim* the figure makes (ratios near 1, peaks at
proportional placement, plateaus, thresholds, improvement factors), not
exact numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig01 import run_fig1a, run_fig1b
from repro.experiments.fig02 import run_fig2a, run_fig2b
from repro.experiments.fig03 import run_fig3
from repro.experiments.fig04 import run_fig4a
from repro.experiments.fig05 import run_fig5
from repro.experiments.fig06 import run_fig6a
from repro.experiments.fig07 import run_fig7a
from repro.experiments.fig08 import run_fig8b, run_fig8c
from repro.experiments.fig09 import run_fig9b
from repro.experiments.fig10 import run_fig10a
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12a
from repro.experiments.fig13 import run_fig13
from repro.experiments.heterogeneity import TwoTypeConfig


@pytest.mark.slow
class TestHomogeneousFigures:
    def test_fig1a_ratio_rises_with_density(self):
        result = run_fig1a(
            num_switches=14,
            degrees=(4, 8, 11),
            servers_per_switch_options=(4,),
            include_all_to_all=True,
            runs=2,
            seed=1,
        )
        a2a = result.get_series("All to All")
        assert a2a.ys()[-1] >= a2a.ys()[0]
        assert a2a.ys()[-1] >= 0.9  # near-optimal when dense
        for series in result.series:
            assert all(0 <= y <= 1.0 + 1e-9 for y in series.ys())

    def test_fig1b_bound_below_observed(self):
        result = run_fig1b(num_switches=16, degrees=(3, 5, 7), runs=2, seed=2)
        observed = result.get_series("Observed ASPL")
        bound = result.get_series("ASPL lower-bound")
        for x in observed.xs():
            assert observed.y_at(x) >= bound.y_at(x) - 1e-9

    def test_fig2a_ratio_stays_high(self):
        result = run_fig2a(
            sizes=(12, 18),
            network_degree=5,
            servers_per_switch_options=(4,),
            include_all_to_all=False,
            runs=2,
            seed=3,
        )
        series = result.get_series("Permutation (4 servers per switch)")
        assert all(y >= 0.5 for y in series.ys())

    def test_fig2b_bound_below_observed(self):
        result = run_fig2b(sizes=(12, 20, 30), network_degree=4, runs=2, seed=4)
        observed = result.get_series("Observed ASPL")
        bound = result.get_series("ASPL lower-bound")
        for x in observed.xs():
            assert observed.y_at(x) >= bound.y_at(x) - 1e-9

    def test_fig3_ratio_shrinks_with_size(self):
        result = run_fig3(sizes=(17, 53, 161), degree=4, runs=2, seed=5)
        ratio = result.get_series("Ratio (observed / bound)")
        ys = ratio.ys()
        assert all(y >= 1.0 - 1e-9 for y in ys)
        assert ys[-1] <= ys[0] + 0.05
        assert result.metadata["step_boundaries"][:3] == [5, 17, 53]


@pytest.mark.slow
class TestHeterogeneousFigures:
    SMALL = (TwoTypeConfig(4, 10, 8, 4, 28, label="small"),)

    def test_fig4a_peak_near_proportional(self):
        result = run_fig4a(configs=self.SMALL, max_points=7, runs=2, seed=6)
        series = result.series[0]
        peak_x = series.peak().x
        assert 0.5 <= peak_x <= 1.6
        # Extremes are strictly worse than the peak.
        assert series.ys()[0] < series.peak().y
        assert series.ys()[-1] < series.peak().y

    def test_fig5_beta_one_competitive(self):
        result = run_fig5(
            num_switches=12,
            mean_ports_options=(6.0,),
            betas=(0.0, 1.0, 1.6),
            runs=2,
            seed=7,
        )
        series = result.series[0]
        best = series.peak().y
        assert series.y_at(1.0) >= 0.75 * best

    def test_fig6a_drop_at_low_cross(self):
        result = run_fig6a(
            configs=self.SMALL,
            points=5,
            min_fraction=0.1,
            max_fraction=1.5,
            runs=2,
            seed=8,
        )
        series = result.series[0]
        ys = series.ys()
        assert ys[0] < 0.7 * max(ys)  # starved cut collapses throughput

    def test_fig7a_multiple_optima_include_proportional(self):
        config = TwoTypeConfig(4, 10, 8, 4, 28, label="combined")
        result = run_fig7a(
            config=config, num_splits=3, points=4, runs=2, seed=9
        )
        assert len(result.series) >= 2
        best = max(s.peak().y for s in result.series)
        # Some split must be clearly worse somewhere: deviations lose.
        worst_curve_min = min(min(s.ys()) for s in result.series)
        assert worst_curve_min < 0.8 * best

    def test_fig8b_faster_links_help_at_high_cross(self):
        # Fabric-limited (not access-limited): with 48 servers both series
        # saturate on the access links at high cross connectivity and the
        # line-speed advantage disappears into noise; 36 servers keeps the
        # bottleneck in the fabric where the fast mesh can matter.
        config = TwoTypeConfig(6, 10, 6, 6, 36, label="mixed")
        result = run_fig8b(
            config=config,
            high_ports_per_large=2,
            speeds=(2.0, 8.0),
            points=4,
            min_fraction=0.2,
            max_fraction=1.5,
            runs=3,
            seed=10,
        )
        slow = result.get_series("High-speed = 2")
        fast = result.get_series("High-speed = 8")
        top = max(fast.xs())
        bottom = min(fast.xs())
        # At ample cross connectivity the faster mesh helps ...
        assert fast.y_at(top) >= slow.y_at(top) - 1e-9
        # ... and at a starved cut its benefit vanishes (both cut-limited).
        assert abs(fast.y_at(bottom) - slow.y_at(bottom)) < 0.3 * slow.y_at(top)

    def test_fig8c_more_links_help(self):
        config = TwoTypeConfig(5, 8, 5, 6, 25, label="mixed")
        result = run_fig8c(
            config=config,
            high_counts=(1, 3),
            high_speed=4.0,
            points=4,
            runs=2,
            seed=11,
        )
        few = result.get_series("1 H-links")
        many = result.get_series("3 H-links")
        assert many.peak().y >= few.peak().y - 1e-9


@pytest.mark.slow
class TestExplanatoryFigures:
    def test_fig9b_utilization_tracks_throughput(self):
        # Oversubscribed with a genuinely starved low end so the bottleneck
        # regime appears (the §6.1 setting).
        config = TwoTypeConfig(6, 12, 12, 6, 60, label="dec")
        result = run_fig9b(
            config=config, points=6, min_fraction=0.05, max_fraction=1.5,
            runs=2, seed=12,
        )
        throughput = result.get_series("Throughput")
        utilization = result.get_series("Utilization")
        spl = result.get_series("Inverse SPL")

        # The paper's §6.1 conclusion: utilization explains throughput far
        # better than path length. (a) U moves over a wider range than
        # 1/<D>; (b) at the starved end, U sits much closer to T.
        def swing(series):
            ys = series.ys()
            return max(ys) - min(ys)

        assert swing(utilization) > swing(spl)
        bottom = min(throughput.xs())
        t0 = throughput.y_at(bottom)
        assert abs(utilization.y_at(bottom) - t0) < abs(spl.y_at(bottom) - t0)

    def test_fig10a_bound_upper_bounds_throughput(self):
        cases = (TwoTypeConfig(4, 10, 8, 4, 28, label="A"),)
        result = run_fig10a(
            cases=cases, points=5, min_fraction=0.15, max_fraction=1.4,
            runs=2, seed=13,
        )
        bound = result.get_series("Bound A")
        observed = result.get_series("Throughput A")
        for x in observed.xs():
            # Eqn. 1 holds in expectation; permit small sampling slack.
            assert observed.y_at(x) <= bound.y_at(x) * 1.35 + 1e-9
        # And it should be reasonably tight at the plateau for uniform
        # speeds (within a factor ~2 even at micro scale).
        top = observed.xs()[-1]
        assert observed.y_at(top) >= 0.45 * bound.y_at(top)

    def test_fig11_throughput_below_peak_under_threshold(self):
        configs = (
            TwoTypeConfig(4, 10, 8, 4, 28, label="c1"),
            TwoTypeConfig(4, 10, 8, 6, 32, label="c2"),
        )
        result = run_fig11(
            configs=configs, points=6, min_fraction=0.1, max_fraction=1.0,
            runs=2, seed=14,
        )
        for series in result.series:
            threshold = result.metadata["thresholds"][series.name]
            peak = result.metadata["peaks"][series.name]
            for point in series.sorted_points():
                if point.x < threshold * 0.98:
                    assert point.y < peak - 1e-9


@pytest.mark.slow
class TestVl2Figures:
    def test_fig12a_rewired_wins(self):
        result = run_fig12a(
            da_values=(4,),
            di_values=(4,),
            servers_per_tor=20,
            runs=2,
            seed=15,
        )
        series = result.series[0]
        assert series.ys()[0] >= 1.0

    def test_fig13_packet_close_to_flow(self):
        result = run_fig13(
            da_values=(4,),
            di=4,
            servers_per_tor=10,
            runs=1,
            seed=16,
            duration=250.0,
            warmup=100.0,
            subflows=4,
            packet_size=0.5,
        )
        flow = result.get_series("Flow-level").ys()[0]
        packet = result.get_series("Packet-level").ys()[0]
        packet_min = result.get_series("Packet-level (min flow)").ys()[0]
        assert 0.0 < flow < 1.0  # genuinely oversubscribed
        # Efficiency: the transport recovers most of the fluid optimum.
        assert packet >= 0.6 * flow
        # Validity: no allocation's minimum flow can beat the LP maximin.
        assert packet_min <= flow * 1.05
