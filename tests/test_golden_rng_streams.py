"""Bit-exact goldens for the builder RNG stream and edge-LP solutions.

The vectorized builder fill (``_AliveIndex`` Fenwick sampling) and the
COO-assembled edge LP were required to be **byte-identical** refactors:
same RNG draws, same edge lists, same optimizer input, same floats out.
These goldens were captured from the pre-refactor code; any future
change that shifts the builder's RNG stream or the LP's assembled
system (even reordering constraint rows can move HiGHS to a different
vertex of a degenerate optimum) shows up here as a deliberate,
reviewed golden update instead of a silent behavior change.
"""

from __future__ import annotations

import hashlib
import json
from ast import literal_eval
from pathlib import Path

import pytest

from repro.flow.edge_lp import max_concurrent_flow
from repro.topology.builders import random_graph_from_degrees
from repro.topology.random_regular import random_regular_topology
from repro.traffic.alltoall import all_to_all_traffic
from repro.traffic.permutation import random_permutation_traffic

GOLDEN = Path(__file__).parent / "golden"


def _builder_cases():
    payload = json.loads((GOLDEN / "builder_edges.json").read_text())
    return payload["cases"]


def _lp_cases():
    payload = json.loads((GOLDEN / "edge_lp_solutions.json").read_text())
    return payload["cases"]


@pytest.mark.parametrize(
    "case", _builder_cases(), ids=lambda case: case["name"]
)
def test_builder_edge_stream_is_frozen(case):
    if case["degree_pairs"] is None:
        # The RRG case ties the builder to the topology layer.
        topo = random_regular_topology(40, 6, servers_per_switch=2, seed=9)
        links = sorted((repr(link.u), repr(link.v)) for link in topo.links)
        digest = hashlib.sha256(repr(links).encode()).hexdigest()
        assert len(links) == case["num_edges"]
    else:
        degrees = {
            literal_eval(node): degree
            for node, degree in case["degree_pairs"]
        }
        edges = random_graph_from_degrees(degrees, rng=case["seed"])
        assert len(edges) == case["num_edges"], case["name"]
        digest = hashlib.sha256(repr(edges).encode()).hexdigest()
    assert digest == case["digest"], case["name"]


def _lp_instances():
    topo12 = random_regular_topology(12, 4, servers_per_switch=3, seed=7)
    topo16 = random_regular_topology(16, 5, servers_per_switch=2, seed=21)
    return {
        "rrg12-perm": (topo12, random_permutation_traffic(topo12, seed=13)),
        "rrg12-a2a": (topo12, all_to_all_traffic(topo12)),
        "rrg16-perm": (topo16, random_permutation_traffic(topo16, seed=22)),
    }


@pytest.mark.parametrize("case", _lp_cases(), ids=lambda case: case["name"])
def test_edge_lp_solution_is_frozen(case):
    instances = _lp_instances()
    base = case["name"].replace("-commodity", "").replace("-perpair", "")
    topo, traffic = instances[base]
    result = max_concurrent_flow(topo, traffic, **case["kwargs"])
    assert result.throughput.hex() == case["throughput"]
    assert result.total_demand.hex() == case["total_demand"]
    flows = {
        f"{u!r}->{v!r}": value.hex()
        for (u, v), value in result.arc_flows.items()
    }
    assert flows == case["arc_flows"]
    if "commodity_flows" in case:
        assert result.commodity_flows is not None
        observed = {
            repr(source): {
                f"{u!r}->{v!r}": value.hex()
                for (u, v), value in flows_by_arc.items()
            }
            for source, flows_by_arc in result.commodity_flows.items()
        }
        assert observed == case["commodity_flows"]
    else:
        assert result.commodity_flows is None
