"""Content fingerprints and the on-disk result cache."""

from __future__ import annotations

import json

import pytest

from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.solvers import SolverConfig
from repro.pipeline.cache import CACHE_ENV_VAR, ResultCache, default_cache
from repro.pipeline.fingerprint import (
    result_key,
    solver_fingerprint,
    topology_fingerprint,
    traffic_fingerprint,
)
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic
from repro.traffic.stride import stride_traffic


@pytest.fixture
def instance():
    topo = random_regular_topology(10, 4, servers_per_switch=2, seed=3)
    traffic = random_permutation_traffic(topo, seed=4)
    return topo, traffic


class TestFingerprints:
    def test_topology_fingerprint_stable(self, instance):
        topo, _ = instance
        assert topology_fingerprint(topo) == topology_fingerprint(topo)

    def test_same_content_same_fingerprint(self):
        a = random_regular_topology(10, 4, servers_per_switch=2, seed=3)
        b = random_regular_topology(10, 4, servers_per_switch=2, seed=3)
        assert topology_fingerprint(a) == topology_fingerprint(b)

    def test_name_excluded(self):
        a = random_regular_topology(10, 4, seed=3, name="alpha")
        b = random_regular_topology(10, 4, seed=3, name="beta")
        assert topology_fingerprint(a) == topology_fingerprint(b)

    def test_different_graph_different_fingerprint(self):
        a = random_regular_topology(10, 4, seed=3)
        b = random_regular_topology(10, 4, seed=4)
        assert topology_fingerprint(a) != topology_fingerprint(b)

    def test_capacity_matters(self, instance):
        topo, _ = instance
        before = topology_fingerprint(topo)
        link = topo.links[0]
        topo.remove_link(link.u, link.v)
        topo.add_link(link.u, link.v, capacity=2.5)
        assert topology_fingerprint(topo) != before

    def test_traffic_fingerprint(self, instance):
        topo, traffic = instance
        same = random_permutation_traffic(topo, seed=4)
        other = random_permutation_traffic(topo, seed=5)
        assert traffic_fingerprint(traffic) == traffic_fingerprint(same)
        assert traffic_fingerprint(traffic) != traffic_fingerprint(other)

    def test_traffic_name_excluded(self, instance):
        topo, _ = instance
        a = stride_traffic(topo, stride=1, name="x")
        b = stride_traffic(topo, stride=1, name="y")
        assert traffic_fingerprint(a) == traffic_fingerprint(b)

    def test_solver_fingerprint_includes_options(self):
        a = solver_fingerprint(SolverConfig.make("path_lp", k=4))
        b = solver_fingerprint(SolverConfig.make("path_lp", k=8))
        c = solver_fingerprint(SolverConfig.make("path_lp", k=4))
        assert a != b
        assert a == c

    def test_result_key_composition(self):
        key = result_key("t" * 64, "m" * 64, "s" * 64)
        assert len(key) == 64
        assert key != result_key("t" * 64, "m" * 64, "x" * 64)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, instance):
        topo, traffic = instance
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        result = max_concurrent_flow(topo, traffic)
        cache.put(key, result, meta={"note": "test"})
        assert key in cache
        restored = cache.get(key)
        assert restored is not None
        assert restored.throughput == result.throughput
        assert restored.arc_capacities == result.arc_capacities
        assert cache.hits == 1
        assert cache.misses == 1

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        from repro.flow.result import ThroughputResult

        cache.put("aa" + "0" * 62, ThroughputResult(throughput=1.0))
        cache.put("bb" + "0" * 62, ThroughputResult(throughput=2.0))
        assert len(cache) == 2

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cc" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_schema_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "dd" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"schema_version": -1, "result": {}}), encoding="utf-8"
        )
        assert cache.get(key) is None

    def test_valid_json_wrong_shape_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ee" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"schema_version": 1, "unexpected": True}),
            encoding="utf-8",
        )
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_default_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert default_cache() is None
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        cache = default_cache()
        assert cache is not None
        assert cache.root == tmp_path

    def test_default_cache_memoized_per_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        assert default_cache() is default_cache()


class TestStaleEntryEviction:
    """Unreadable/mismatched entries are deleted at read time: a miss
    whose recompute never gets ``put`` (worker crash) must not leave the
    stale file behind to be re-parsed forever."""

    def test_corrupt_entry_deleted_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ff" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert not path.exists()

    def test_schema_mismatch_deleted_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"schema_version": -1, "result": {}}), encoding="utf-8"
        )
        assert cache.get(key) is None
        assert not path.exists()
        assert key not in cache

    def test_wrong_shape_deleted_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"schema_version": 1, "unexpected": True}),
            encoding="utf-8",
        )
        assert cache.get(key) is None
        assert not path.exists()

    def test_plain_miss_leaves_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        assert cache.get(key) is None
        assert not cache._path(key).exists()

    def test_good_entry_survives_read(self, tmp_path):
        from repro.flow.result import ThroughputResult

        cache = ResultCache(tmp_path)
        key = "aa" + "1" * 62
        cache.put(key, ThroughputResult(throughput=1.5))
        assert cache.get(key) is not None
        assert cache._path(key).exists()

    def test_non_utf8_entry_deleted_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ba" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\xff\xfe not utf-8")
        assert cache.get(key) is None
        assert not path.exists()


class TestLruCap:
    """Opt-in ``max_entries`` bound: puts beyond the cap evict the
    least-recently-used entries; the default stays unbounded."""

    @staticmethod
    def _key(index: int) -> str:
        return f"{index:02x}" * 32

    @staticmethod
    def _age(cache, key, seconds):
        """Backdate an entry's mtime so recency ordering is deterministic
        (sub-second writes can otherwise tie)."""
        import os
        import time

        path = cache._path(key)
        stamp = time.time() - seconds
        os.utime(path, (stamp, stamp))

    def _fill(self, cache, count):
        from repro.flow.result import ThroughputResult

        for index in range(count):
            cache.put(self._key(index), ThroughputResult(throughput=index))
            self._age(cache, self._key(index), seconds=100 - index)

    def test_default_stays_unbounded(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.max_entries is None
        self._fill(cache, 5)
        assert len(cache) == 5
        assert cache.evictions == 0

    def test_put_evicts_oldest_beyond_cap(self, tmp_path):
        from repro.flow.result import ThroughputResult

        cache = ResultCache(tmp_path, max_entries=2)
        self._fill(cache, 2)
        cache.put(self._key(2), ThroughputResult(throughput=2.0))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(self._key(0)) is None  # the oldest went
        assert cache.get(self._key(1)) is not None
        assert cache.get(self._key(2)) is not None

    def test_get_refreshes_recency(self, tmp_path):
        from repro.flow.result import ThroughputResult

        cache = ResultCache(tmp_path, max_entries=2)
        self._fill(cache, 2)
        assert cache.get(self._key(0)) is not None  # touch the oldest
        cache.put(self._key(2), ThroughputResult(throughput=2.0))
        # Entry 1 is now the least recently used, not entry 0.
        assert cache.get(self._key(0)) is not None
        assert cache.get(self._key(1)) is None

    def test_overfull_pre_existing_dir_trimmed(self, tmp_path):
        from repro.flow.result import ThroughputResult

        unbounded = ResultCache(tmp_path)
        self._fill(unbounded, 4)
        bounded = ResultCache(tmp_path, max_entries=2)
        bounded.put(self._key(4), ThroughputResult(throughput=4.0))
        assert len(bounded) == 2
        assert bounded.evictions == 3
        assert bounded.get(self._key(4)) is not None

    def test_bounded_cache_still_round_trips(self, tmp_path, instance):
        topo, traffic = instance
        cache = ResultCache(tmp_path, max_entries=8)
        result = max_concurrent_flow(topo, traffic)
        key = self._key(7)
        cache.put(key, result)
        restored = cache.get(key)
        assert restored is not None
        assert restored.throughput == result.throughput

    def test_rejects_non_positive_cap(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(tmp_path, max_entries=0)


class TestInProcessMemo:
    """The LRU memo fronting the disk store: hit accounting, mutation
    safety, and the ``memo_size`` knob."""

    @staticmethod
    def _key(index: int) -> str:
        return f"{index:02x}" * 32

    def test_second_get_is_a_memo_hit(self, tmp_path, instance):
        topo, traffic = instance
        cache = ResultCache(tmp_path)
        result = max_concurrent_flow(topo, traffic)
        cache.put(self._key(0), result)
        first = cache.get(self._key(0))
        second = cache.get(self._key(0))
        assert first.throughput == second.throughput == result.throughput
        stats = cache.stats()
        # put() memoizes, so neither get touched the disk.
        assert stats["memo_hits"] == 2
        assert stats["disk_hits"] == 0
        assert stats["hits"] == 2

    def test_fresh_instance_promotes_disk_hit_to_memo(self, tmp_path, instance):
        topo, traffic = instance
        writer = ResultCache(tmp_path)
        writer.put(self._key(0), max_concurrent_flow(topo, traffic))
        reader = ResultCache(tmp_path)
        reader.get(self._key(0))
        reader.get(self._key(0))
        stats = reader.stats()
        assert stats["disk_hits"] == 1
        assert stats["memo_hits"] == 1

    def test_memoized_results_are_mutation_safe(self, tmp_path, instance):
        topo, traffic = instance
        cache = ResultCache(tmp_path)
        cache.put(self._key(0), max_concurrent_flow(topo, traffic))
        first = cache.get(self._key(0))
        first.arc_flows.clear()
        second = cache.get(self._key(0))
        assert second.arc_flows  # fresh containers per get

    def test_memo_size_zero_disables_memo(self, tmp_path, instance):
        topo, traffic = instance
        cache = ResultCache(tmp_path, memo_size=0)
        cache.put(self._key(0), max_concurrent_flow(topo, traffic))
        cache.get(self._key(0))
        cache.get(self._key(0))
        stats = cache.stats()
        assert stats["memo_hits"] == 0
        assert stats["disk_hits"] == 2
        assert stats["memo_entries"] == 0

    def test_memo_evicts_least_recently_used(self, tmp_path, instance):
        topo, traffic = instance
        cache = ResultCache(tmp_path, memo_size=2)
        result = max_concurrent_flow(topo, traffic)
        for index in range(3):
            cache.put(self._key(index), result)
        assert cache.stats()["memo_entries"] == 2
        cache.get(self._key(0))  # evicted from memo, still on disk
        assert cache.stats()["disk_hits"] == 1

    def test_payload_memo_respects_kind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_payload(self._key(0), "routes", {"value": 1})
        assert cache.get_payload(self._key(0), kind="routes") == {"value": 1}
        assert cache.stats()["memo_hits"] == 1
        # A kind mismatch must not serve the memoized payload.
        assert cache.get_payload(self._key(0), kind="other") is None

    def test_negative_memo_size_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="memo_size"):
            ResultCache(tmp_path, memo_size=-1)
