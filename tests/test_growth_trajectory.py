"""Trajectory execution: churn accounting, caching, pairing, sweeps."""

from __future__ import annotations

import json

import pytest

from repro.growth.plan import GrowthSchedule
from repro.growth.trajectory import (
    run_growth,
    run_growth_sweep,
    solver_for_size,
)
from repro.pipeline.cache import ResultCache


@pytest.fixture
def schedule() -> GrowthSchedule:
    return GrowthSchedule.from_targets(
        (12, 20, 32), name="t", network_degree=4, servers_per_switch=2
    )


class TestSolverPolicy:
    def test_auto_switches_at_limit(self):
        assert solver_for_size(40, exact_limit=80) == "edge_lp"
        assert solver_for_size(81, exact_limit=80) == "estimate_bound"
        assert (
            solver_for_size(81, exact_limit=80, estimator="estimate_cut")
            == "estimate_cut"
        )

    def test_explicit_solver_wins(self):
        assert solver_for_size(5, solver="ecmp") == "ecmp"
        assert solver_for_size(5000, solver="edge_lp") == "edge_lp"


class TestRunGrowth:
    def test_records_cover_every_stage(self, schedule):
        trajectory = run_growth(schedule, "swap", cache=False)
        assert [r.index for r in trajectory.records] == [0, 1, 2]
        assert [r.num_switches for r in trajectory.records] == [12, 20, 32]
        assert all(r.throughput > 0 for r in trajectory.records)
        assert trajectory.final().num_servers == 64

    def test_initial_stage_installs_everything(self, schedule):
        record = run_growth(schedule, "swap", cache=False).records[0]
        assert record.links_removed == 0
        assert record.links_added == record.num_links
        assert record.cables_removed_length == 0.0
        assert record.cables_added_length > 0

    def test_swap_churn_accounting(self, schedule):
        trajectory = run_growth(schedule, "swap", cache=False)
        half_degree = schedule.network_degree // 2
        previous = None
        for record in trajectory.records:
            if previous is not None:
                added_switches = record.num_switches - previous.num_switches
                # The link diff nets out links added by one arriving
                # switch and split again by a later one, so the net gain
                # is exact and the gross counts are bounded by the
                # ExpansionReport-level r/2 swaps per switch.
                assert (
                    record.links_added - record.links_removed
                    == added_switches * half_degree
                )
                assert record.links_removed <= added_switches * half_degree
                assert record.links_touched >= added_switches * half_degree
            previous = record
        final = trajectory.final()
        assert final.cumulative_links_touched == sum(
            r.links_touched for r in trajectory.records
        )
        assert final.cumulative_cable_length == pytest.approx(
            sum(
                r.cables_added_length + r.cables_removed_length
                for r in trajectory.records
            )
        )

    def test_swap_churn_far_below_rebuild(self, schedule):
        swap = run_growth(schedule, "swap", cache=False)
        rebuild = run_growth(schedule, "rebuild", cache=False)
        swap_touched = sum(r.links_touched for r in swap.records[1:])
        rebuild_touched = sum(r.links_touched for r in rebuild.records[1:])
        assert swap_touched < rebuild_touched

    def test_strategies_share_initial_stage(self, schedule):
        swap = run_growth(schedule, "swap", cache=False)
        rebuild = run_growth(schedule, "rebuild", cache=False)
        assert (
            swap.records[0].throughput == rebuild.records[0].throughput
        )
        assert swap.seed == rebuild.seed

    def test_estimator_beyond_exact_limit(self, schedule):
        trajectory = run_growth(
            schedule,
            "swap",
            exact_limit=20,
            estimator_band=(0.8, 1.4),
            cache=False,
        )
        kinds = [(r.solver.split("(")[0], r.is_estimate) for r in trajectory.records]
        assert kinds[0] == ("edge_lp", False)
        assert kinds[-1][0] == "estimate_bound"
        assert kinds[-1][1] is True
        assert trajectory.records[-1].error_lo == pytest.approx(0.8)
        assert trajectory.records[-1].error_hi == pytest.approx(1.4)
        assert trajectory.records[0].error_lo is None

    def test_cache_round_trip_identical(self, schedule, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_growth(schedule, "swap", cache=cache)
        assert not any(r.cache_hit for r in cold.records)
        warm = run_growth(schedule, "swap", cache=cache)
        assert all(r.cache_hit for r in warm.records)
        assert warm.throughputs() == cold.throughputs()

    def test_explicit_seed_reproducible(self, schedule):
        a = run_growth(schedule, "swap", seed=123, cache=False)
        b = run_growth(schedule, "swap", seed=123, cache=False)
        assert a.throughputs() == b.throughputs()

        def stable(rows):
            return [
                {k: v for k, v in row.items() if k != "elapsed_s"}
                for row in rows
            ]

        assert stable(a.rows()) == stable(b.rows())

    def test_replicates_differ(self, schedule):
        a = run_growth(schedule, "swap", replicate=0, cache=False)
        b = run_growth(schedule, "swap", replicate=1, cache=False)
        assert a.seed != b.seed

    def test_fattree_idle_budget_reported(self, schedule):
        trajectory = run_growth(schedule, "fattree_upgrade", cache=False)
        assert [r.idle_switches for r in trajectory.records] == [7, 0, 12]
        # No upgrade between equal rungs: zero churn at the last stage.
        assert trajectory.records[2].links_touched == 0


class TestSweep:
    def test_sweep_shapes_and_artifacts(self, schedule, tmp_path):
        sweep = run_growth_sweep(
            schedule, ("swap", "fattree_upgrade"), seeds=2
        )
        assert len(sweep.trajectories) == 4
        assert sweep.num_cells == 12
        summary = sweep.mean_series()
        assert len(summary) == 6  # 2 strategies x 3 stages
        assert all(entry["replicates"] == 2 for entry in summary)
        table = sweep.to_table()
        assert "swap" in table and "fattree_upgrade" in table

        json_path = tmp_path / "growth.json"
        csv_path = tmp_path / "growth.csv"
        sweep.write_json(json_path)
        sweep.write_csv(csv_path)
        payload = json.loads(json_path.read_text())
        assert len(payload["trajectories"]) == 4
        assert payload["summary"]
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("strategy,replicate,seed,stage")
        assert len(csv_path.read_text().splitlines()) == 13  # header + 12

    def test_parallel_matches_serial(self, schedule):
        serial = run_growth_sweep(schedule, ("swap",), seeds=2, workers=1)
        parallel = run_growth_sweep(schedule, ("swap",), seeds=2, workers=2)
        assert [t.throughputs() for t in serial.trajectories] == [
            t.throughputs() for t in parallel.trajectories
        ]

    def test_shared_cache_dir_warm_hits(self, schedule, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_growth_sweep(
            schedule, ("swap",), seeds=1, cache_dir=cache_dir
        )
        warm = run_growth_sweep(
            schedule, ("swap",), seeds=1, cache_dir=cache_dir
        )
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.num_cells
        assert [t.throughputs() for t in warm.trajectories] == [
            t.throughputs() for t in cold.trajectories
        ]

    def test_progress_and_bands(self, schedule):
        seen = []
        run_growth_sweep(
            schedule,
            ("swap",),
            seeds=1,
            exact_limit=20,
            estimator_bands={"swap": (0.5, 2.0)},
            progress=lambda done, total, t: seen.append((done, total)),
        )
        assert seen == [(1, 1)]

    def test_rejects_bad_counts(self, schedule):
        with pytest.raises(Exception):
            run_growth_sweep(schedule, ("swap",), seeds=0)
        with pytest.raises(Exception):
            run_growth_sweep(schedule, ("swap",), workers=0)
