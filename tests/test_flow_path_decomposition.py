"""Tests for flow decomposition into path flows."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.path_decomposition import (
    PathFlow,
    decompose_arc_flows,
    decompose_commodity_flows,
    mean_path_length,
    path_length_distribution,
)
from repro.flow.result import ThroughputResult
from repro.traffic.base import TrafficMatrix
from repro.traffic.permutation import random_permutation_traffic


class TestDecomposeArcFlows:
    def test_single_path(self):
        result = ThroughputResult(
            throughput=1.0,
            arc_flows={("a", "b"): 1.0, ("b", "c"): 1.0},
            arc_capacities={("a", "b"): 1.0, ("b", "c"): 1.0},
            total_demand=1.0,
        )
        paths, residual = decompose_arc_flows(result)
        assert not residual
        assert len(paths) == 1
        assert paths[0].nodes == ("a", "b", "c")
        assert paths[0].amount == pytest.approx(1.0)
        assert paths[0].hops == 2

    def test_split_flow(self):
        # 2 units a->d split over two parallel routes.
        result = ThroughputResult(
            throughput=2.0,
            arc_flows={
                ("a", "b"): 1.0,
                ("b", "d"): 1.0,
                ("a", "c"): 1.0,
                ("c", "d"): 1.0,
            },
            arc_capacities={
                ("a", "b"): 1.0,
                ("b", "d"): 1.0,
                ("a", "c"): 1.0,
                ("c", "d"): 1.0,
            },
            total_demand=1.0,
        )
        paths, residual = decompose_arc_flows(result)
        assert not residual
        assert len(paths) == 2
        assert sum(p.amount for p in paths) == pytest.approx(2.0)

    def test_cycle_peeled_to_residual_free(self):
        # A pure circulation decomposes into no s-t paths.
        result = ThroughputResult(
            throughput=0.0,
            arc_flows={("a", "b"): 1.0, ("b", "c"): 1.0, ("c", "a"): 1.0},
            arc_capacities={("a", "b"): 1.0, ("b", "c"): 1.0, ("c", "a"): 1.0},
            total_demand=1.0,
        )
        paths, residual = decompose_arc_flows(result)
        assert paths == []
        # The circulation shows up as residual (it delivers nothing).
        assert sum(residual.values()) > 0 or not residual

    def test_source_restriction(self, triangle):
        tm = TrafficMatrix(name="x", demands={(0, 1): 1.0}, num_flows=1)
        result = max_concurrent_flow(triangle, tm)
        paths, _ = decompose_arc_flows(result, sources={0})
        assert all(p.nodes[0] == 0 for p in paths)


class TestCommodityDecomposition:
    def test_requires_commodity_flows(self, small_rrg, small_rrg_traffic):
        result = max_concurrent_flow(small_rrg, small_rrg_traffic)
        with pytest.raises(FlowError, match="keep_commodity_flows"):
            decompose_commodity_flows(result)

    def test_delivered_amount_matches_lp(self, small_rrg, small_rrg_traffic):
        result = max_concurrent_flow(
            small_rrg, small_rrg_traffic, keep_commodity_flows=True
        )
        decomposed = decompose_commodity_flows(result)
        delivered = sum(
            p.amount for paths in decomposed.values() for p in paths
        )
        assert delivered == pytest.approx(result.delivered_rate, rel=1e-5)

    def test_per_source_demand_satisfied(self, small_rrg, small_rrg_traffic):
        result = max_concurrent_flow(
            small_rrg, small_rrg_traffic, keep_commodity_flows=True
        )
        decomposed = decompose_commodity_flows(result)
        by_source: dict = {}
        for (u, _), units in small_rrg_traffic.demands.items():
            by_source[u] = by_source.get(u, 0.0) + units
        for source, paths in decomposed.items():
            assert all(p.nodes[0] == source for p in paths)
            delivered = sum(p.amount for p in paths)
            assert delivered == pytest.approx(
                result.throughput * by_source[source], rel=1e-5
            )

    def test_paths_follow_real_links(self, small_rrg, small_rrg_traffic):
        result = max_concurrent_flow(
            small_rrg, small_rrg_traffic, keep_commodity_flows=True
        )
        decomposed = decompose_commodity_flows(result)
        for paths in decomposed.values():
            for path in paths:
                for a, b in zip(path.nodes[:-1], path.nodes[1:]):
                    assert small_rrg.has_link(a, b)

    def test_per_pair_commodities_merge(self, triangle):
        tm = TrafficMatrix(
            name="x", demands={(0, 1): 1.0, (0, 2): 1.0}, num_flows=2
        )
        result = max_concurrent_flow(
            triangle, tm, aggregate_by_source=False, keep_commodity_flows=True
        )
        decomposed = decompose_commodity_flows(result)
        assert set(decomposed) == {0}


class TestPathSummaries:
    def test_distribution_and_mean(self):
        paths = [
            PathFlow(nodes=("a", "b"), amount=2.0),
            PathFlow(nodes=("a", "b", "c"), amount=1.0),
        ]
        distribution = path_length_distribution(paths)
        assert distribution == {1: 2.0, 2: 1.0}
        assert mean_path_length(paths) == pytest.approx((2 * 1 + 1 * 2) / 3)

    def test_empty_rejected(self):
        with pytest.raises(FlowError, match="no paths"):
            path_length_distribution([])
        with pytest.raises(FlowError, match="no paths"):
            mean_path_length([])

    def test_mean_matches_result_accounting(self, small_rrg):
        traffic = random_permutation_traffic(small_rrg, seed=99)
        result = max_concurrent_flow(
            small_rrg, traffic, keep_commodity_flows=True
        )
        decomposed = decompose_commodity_flows(result)
        paths = [p for group in decomposed.values() for p in group]
        # Optimal vertices may contain tiny cyclic residuals; allow a small
        # relative gap between decomposition and aggregate accounting.
        assert mean_path_length(paths) == pytest.approx(
            result.mean_routed_path_length, rel=0.02
        )
