"""Tests for Equation 1/2 cut bounds and the Theorem 2 two-regime model."""

from __future__ import annotations

import pytest

from repro.core.cut_bounds import (
    cut_drop_point,
    expected_cross_flow_fraction,
    threshold_cross_capacity,
    two_part_throughput_bound,
)
from repro.core.theory import (
    cluster_densities,
    peak_throughput_scale,
    predicted_profile,
    q_star,
    sparsest_cut_linear_in_q,
    two_regime_throughput,
)
from repro.exceptions import BoundError


class TestCutBounds:
    def test_cross_flow_fraction_equal_clusters(self):
        # Equal clusters: half the flows cross in expectation.
        assert expected_cross_flow_fraction(50, 50) == pytest.approx(0.5)

    def test_cross_flow_fraction_skewed(self):
        assert expected_cross_flow_fraction(90, 10) == pytest.approx(0.18)

    def test_two_part_bound_min_of_terms(self):
        # Make the cut term binding.
        value = two_part_throughput_bound(
            total_capacity=1000.0, cross_capacity=10.0, n1=50, n2=50, aspl=2.0
        )
        assert value == pytest.approx(10.0 * 100 / (2 * 50 * 50))
        # Make the path term binding.
        value = two_part_throughput_bound(
            total_capacity=100.0, cross_capacity=10_000.0, n1=50, n2=50, aspl=2.0
        )
        assert value == pytest.approx(100.0 / (2.0 * 100))

    def test_bound_upper_bounds_lp(self):
        """Eqn. 1 must hold for actual two-cluster networks."""
        from repro.flow.edge_lp import max_concurrent_flow
        from repro.metrics.paths import average_shortest_path_length
        from repro.topology.two_cluster import (
            cluster_cut_capacity,
            two_cluster_random_topology,
        )
        from repro.traffic.permutation import random_permutation_traffic

        for fraction in (0.3, 1.0):
            topo = two_cluster_random_topology(
                4, 6, 8, 3,
                servers_per_large=4,
                servers_per_small=2,
                cross_fraction=fraction,
                seed=11,
            )
            traffic = random_permutation_traffic(topo, seed=12)
            observed = max_concurrent_flow(topo, traffic).throughput
            bound = two_part_throughput_bound(
                total_capacity=topo.total_capacity,
                cross_capacity=cluster_cut_capacity(topo),
                n1=16,
                n2=16,
                aspl=average_shortest_path_length(topo),
            )
            # Eqn. 1 assumes the *expected* number of crossing flows; allow
            # a modest sampling slack on top of the analytical bound.
            assert observed <= bound * 1.3 + 1e-9

    def test_drop_point(self):
        assert cut_drop_point(100.0, 2.5) == pytest.approx(20.0)

    def test_threshold(self):
        assert threshold_cross_capacity(0.5, 50, 50) == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_part_throughput_bound(-1.0, 1.0, 1, 1, 1.0)
        with pytest.raises(ValueError):
            two_part_throughput_bound(1.0, -1.0, 1, 1, 1.0)


class TestTwoRegimeModel:
    def test_q_star_formula(self):
        assert q_star(0.1, 2.0) == pytest.approx(0.05)
        assert q_star(0.1, 2.0, c1=2.0) == pytest.approx(0.1)

    def test_plateau_and_ramp(self):
        peak = 1.0
        boundary = q_star(0.1, 2.0)
        assert two_regime_throughput(boundary * 2, 0.1, 2.0, peak) == peak
        assert two_regime_throughput(boundary, 0.1, 2.0, peak) == peak
        half = two_regime_throughput(boundary / 2, 0.1, 2.0, peak)
        assert half == pytest.approx(peak / 2)

    def test_zero_q_zero_throughput(self):
        assert two_regime_throughput(0.0, 0.1, 2.0, 1.0) == 0.0

    def test_profile_matches_pointwise(self):
        qs = [0.0, 0.01, 0.05, 0.2]
        profile = predicted_profile(qs, 0.1, 2.0, 1.0)
        for q in qs:
            assert profile[q] == two_regime_throughput(q, 0.1, 2.0, 1.0)

    def test_peak_scale_decreasing_in_n(self):
        assert peak_throughput_scale(100, 4) > peak_throughput_scale(1000, 4)

    def test_cluster_densities_roundtrip(self):
        n, d, cross = 20, 6, 15
        p, q = cluster_densities(n, d, cross)
        assert p + q == pytest.approx(d / n)
        assert q == pytest.approx(2.0 * cross / (n * n))

    def test_excessive_cross_rejected(self):
        with pytest.raises(BoundError, match="exceeds"):
            cluster_densities(10, 2, 200)

    def test_sparsest_cut_linear(self):
        assert sparsest_cut_linear_in_q(0.25) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            sparsest_cut_linear_in_q(-0.1)

    def test_regime_split_empirical(self):
        """Above q*, measured throughput stays near peak; far below, it
        tracks the cut linearly — the Theorem 2 shape on real samples."""
        from repro.experiments.heterogeneity import (
            TwoTypeConfig,
            clustered_throughput,
        )

        config = TwoTypeConfig(6, 8, 6, 8, 36)
        plateau, _ = clustered_throughput(config, 3, 3, 1.0, runs=2, seed=1)
        mid, _ = clustered_throughput(config, 3, 3, 0.7, runs=2, seed=2)
        starved, _ = clustered_throughput(config, 3, 3, 0.1, runs=2, seed=3)
        assert starved < 0.6 * plateau
        assert mid > 0.6 * plateau
