"""Tests for the Topology model."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.base import Link, Topology


class TestConstruction:
    def test_add_switch_and_link(self):
        topo = Topology("t")
        topo.add_switch("a", servers=2)
        topo.add_switch("b")
        topo.add_link("a", "b", capacity=3.0)
        assert topo.num_switches == 2
        assert topo.num_links == 1
        assert topo.capacity("a", "b") == 3.0

    def test_duplicate_switch_rejected(self):
        topo = Topology()
        topo.add_switch(1)
        with pytest.raises(TopologyError, match="already exists"):
            topo.add_switch(1)

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_switch(1)
        with pytest.raises(TopologyError, match="self-loop"):
            topo.add_link(1, 1)

    def test_link_to_missing_switch_rejected(self):
        topo = Topology()
        topo.add_switch(1)
        with pytest.raises(TopologyError, match="does not exist"):
            topo.add_link(1, 2)

    def test_parallel_links_aggregate_capacity(self):
        topo = Topology()
        topo.add_switch(1)
        topo.add_switch(2)
        topo.add_link(1, 2, capacity=1.0)
        topo.add_link(1, 2, capacity=2.5)
        assert topo.num_links == 1
        assert topo.capacity(1, 2) == pytest.approx(3.5)

    def test_non_positive_capacity_rejected(self):
        topo = Topology()
        topo.add_switch(1)
        topo.add_switch(2)
        with pytest.raises(ValueError, match="capacity"):
            topo.add_link(1, 2, capacity=0.0)

    def test_negative_servers_rejected(self):
        topo = Topology()
        with pytest.raises(ValueError, match="servers"):
            topo.add_switch(1, servers=-1)

    def test_remove_link(self):
        topo = Topology()
        topo.add_switch(1)
        topo.add_switch(2)
        topo.add_link(1, 2)
        topo.remove_link(1, 2)
        assert topo.num_links == 0
        with pytest.raises(TopologyError, match="no link"):
            topo.remove_link(1, 2)


class TestInspection:
    def test_counts_and_capacity(self, triangle):
        assert triangle.num_switches == 3
        assert triangle.num_links == 3
        assert triangle.num_servers == 3
        assert triangle.total_capacity == pytest.approx(6.0)

    def test_arcs_double_links(self, triangle):
        arcs = triangle.arcs()
        assert len(arcs) == 6
        assert sum(cap for *_, cap in arcs) == pytest.approx(6.0)
        pairs = {(u, v) for u, v, _ in arcs}
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_degree_and_neighbors(self, triangle):
        assert triangle.degree(0) == 2
        assert set(triangle.neighbors(0)) == {1, 2}

    def test_unknown_switch_queries_raise(self, triangle):
        for fn in (triangle.degree, triangle.neighbors, triangle.servers_at):
            with pytest.raises(TopologyError, match="does not exist"):
                fn("missing")

    def test_server_map_and_set_servers(self, triangle):
        triangle.set_servers(0, 5)
        assert triangle.server_map()[0] == 5
        assert triangle.num_servers == 7

    def test_degree_histogram(self, triangle):
        assert triangle.degree_histogram() == {2: 3}

    def test_is_connected(self, triangle):
        assert triangle.is_connected()
        topo = Topology()
        topo.add_switch(1)
        topo.add_switch(2)
        assert not topo.is_connected()
        assert Topology().is_connected()  # vacuously

    def test_dunder_protocols(self, triangle):
        assert len(triangle) == 3
        assert 0 in triangle
        assert sorted(triangle) == [0, 1, 2]
        assert "triangle" in repr(triangle)


class TestClusters:
    def test_cluster_labels(self):
        topo = Topology()
        topo.add_switch(1, cluster="left")
        topo.add_switch(2, cluster="right")
        topo.add_switch(3)
        assert topo.cluster_of(1) == "left"
        assert topo.cluster_of(3) is None
        assert topo.nodes_in_cluster("left") == [1]
        assert topo.clusters() == ["left", "right"]
        topo.set_cluster(3, "left")
        assert sorted(topo.nodes_in_cluster("left")) == [1, 3]

    def test_switch_types(self):
        topo = Topology()
        topo.add_switch(1, switch_type="tor")
        topo.add_switch(2, switch_type="agg")
        assert topo.switch_type_of(1) == "tor"
        assert topo.nodes_of_type("agg") == [2]

    def test_cut_capacity(self, triangle):
        assert triangle.cut_capacity({0}, {1, 2}) == pytest.approx(4.0)
        with pytest.raises(TopologyError, match="overlap"):
            triangle.cut_capacity({0, 1}, {1, 2})


class TestCopyAndConversion:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy("clone")
        clone.add_switch(99)
        assert 99 not in triangle
        assert clone.name == "clone"

    def test_to_networkx_is_copy(self, triangle):
        graph = triangle.to_networkx()
        graph.add_node("x")
        assert "x" not in triangle

    def test_from_edges_uniform_servers(self):
        topo = Topology.from_edges([(1, 2), (2, 3)], servers=2)
        assert topo.num_servers == 6
        assert topo.num_links == 2

    def test_from_edges_server_mapping_adds_isolated(self):
        topo = Topology.from_edges([(1, 2)], servers={1: 3, 9: 1})
        assert topo.servers_at(9) == 1
        assert topo.servers_at(2) == 0

    def test_validate_passes_on_good_topology(self, triangle):
        triangle.validate()


class TestLink:
    def test_endpoints_and_reversed(self):
        link = Link("a", "b", 2.0)
        assert link.endpoints() == ("a", "b")
        assert link.reversed() == Link("b", "a", 2.0)
