"""Tests for structured baseline topologies: fat-tree, Clos, hypercube,
torus, complete graphs, and small-world rings."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.metrics.paths import average_shortest_path_length, diameter
from repro.topology.clos import folded_clos_topology, leaf_spine_topology
from repro.topology.complete import complete_bipartite_topology, complete_topology
from repro.topology.fattree import fat_tree_topology
from repro.topology.hypercube import hypercube_topology
from repro.topology.smallworld import small_world_topology
from repro.topology.torus import torus_topology


class TestFatTree:
    def test_k4_structure(self):
        topo = fat_tree_topology(4)
        # k=4: 4 cores, 4 pods x (2 edge + 2 agg) = 20 switches.
        assert topo.num_switches == 20
        assert topo.num_servers == 16  # k^3/4
        assert topo.is_connected()

    def test_all_switch_degrees_k(self):
        k = 4
        topo = fat_tree_topology(k)
        for node in topo.switches:
            kind = topo.switch_type_of(node)
            servers = topo.servers_at(node)
            assert topo.degree(node) + servers == k or kind == "core"
            if kind == "core":
                assert topo.degree(node) == k

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError, match="even"):
            fat_tree_topology(5)

    def test_custom_server_count(self):
        topo = fat_tree_topology(4, servers_per_edge=1)
        assert topo.num_servers == 8

    def test_oversized_servers_rejected(self):
        with pytest.raises(TopologyError, match="servers_per_edge"):
            fat_tree_topology(4, servers_per_edge=3)

    def test_full_bisection_throughput(self):
        # A fat-tree at full configuration supports permutations at rate 1.
        from repro.flow.edge_lp import max_concurrent_flow
        from repro.traffic.permutation import random_permutation_traffic

        topo = fat_tree_topology(4)
        traffic = random_permutation_traffic(topo, seed=1)
        result = max_concurrent_flow(topo, traffic)
        assert result.throughput >= 1.0 - 1e-6


class TestClos:
    def test_leaf_spine_structure(self):
        topo = leaf_spine_topology(4, 2, servers_per_leaf=3)
        assert topo.num_switches == 6
        assert topo.num_links == 8
        assert topo.num_servers == 12

    def test_parallel_links_aggregate(self):
        topo = leaf_spine_topology(2, 2, servers_per_leaf=1, links_per_pair=3)
        assert topo.capacity("leaf0", "spine0") == pytest.approx(3.0)

    def test_folded_clos_oversubscription(self):
        topo = folded_clos_topology(4, 4, servers_per_leaf=8, oversubscription=2.0)
        # Each leaf's uplink capacity = servers / oversubscription = 4.
        up = sum(topo.capacity("leaf0", f"spine{i}") for i in range(4))
        assert up == pytest.approx(4.0)

    def test_nonblocking_closes_permutation(self):
        from repro.flow.edge_lp import max_concurrent_flow
        from repro.traffic.permutation import random_permutation_traffic

        topo = folded_clos_topology(4, 4, servers_per_leaf=4, oversubscription=1.0)
        traffic = random_permutation_traffic(topo, seed=2)
        result = max_concurrent_flow(topo, traffic)
        assert result.throughput >= 1.0 - 1e-6


class TestHypercube:
    def test_structure(self):
        topo = hypercube_topology(4)
        assert topo.num_switches == 16
        assert topo.num_links == 32  # n * d / 2
        assert all(topo.degree(v) == 4 for v in topo.switches)

    def test_diameter_is_dimension(self):
        assert diameter(hypercube_topology(4)) == 4

    def test_aspl_known_value(self):
        # Mean Hamming distance between distinct 3-bit ids = 12/7.
        aspl = average_shortest_path_length(hypercube_topology(3))
        assert aspl == pytest.approx(12.0 / 7.0)


class TestTorus:
    def test_2d_structure(self):
        topo = torus_topology((4, 4))
        assert topo.num_switches == 16
        assert all(topo.degree(v) == 4 for v in topo.switches)

    def test_3d_structure(self):
        topo = torus_topology((3, 3, 3))
        assert topo.num_switches == 27
        assert all(topo.degree(v) == 6 for v in topo.switches)

    def test_small_dimension_rejected(self):
        with pytest.raises(TopologyError, match=">= 3"):
            torus_topology((2, 4))

    def test_diameter(self):
        assert diameter(torus_topology((4, 4))) == 4  # 2 + 2 wraps


class TestComplete:
    def test_complete_graph(self):
        topo = complete_topology(6, servers_per_switch=1)
        assert topo.num_links == 15
        assert average_shortest_path_length(topo) == pytest.approx(1.0)

    def test_complete_bipartite(self):
        topo = complete_bipartite_topology(3, 4)
        assert topo.num_links == 12
        assert diameter(topo) == 2

    def test_meets_throughput_bound_exactly(self):
        # On K_n with one server per switch, permutation flows travel one
        # hop; the bound N*r/(<D>*f) = n(n-1)/n = n-1 per flow is loose,
        # but all-to-all achieves the exact optimum 2/n... sanity: LP >= 1.
        from repro.flow.edge_lp import max_concurrent_flow
        from repro.traffic.permutation import random_permutation_traffic

        topo = complete_topology(6, servers_per_switch=1)
        traffic = random_permutation_traffic(topo, seed=3)
        result = max_concurrent_flow(topo, traffic)
        assert result.throughput >= 1.0 - 1e-9


class TestSmallWorld:
    def test_ring_structure_no_rewiring(self):
        topo = small_world_topology(10, 4, rewire_probability=0.0, seed=1)
        assert topo.num_links == 20
        assert all(topo.degree(v) == 4 for v in topo.switches)

    def test_rewiring_changes_edges(self):
        base = small_world_topology(20, 4, rewire_probability=0.0, seed=2)
        rewired = small_world_topology(20, 4, rewire_probability=0.9, seed=2)
        edges_base = {frozenset((l.u, l.v)) for l in base.links}
        edges_rewired = {frozenset((l.u, l.v)) for l in rewired.links}
        assert edges_base != edges_rewired

    def test_rewiring_reduces_aspl(self):
        ring = small_world_topology(40, 4, rewire_probability=0.0, seed=3)
        shuffled = small_world_topology(40, 4, rewire_probability=0.5, seed=3)
        if shuffled.is_connected():
            assert (
                average_shortest_path_length(shuffled)
                < average_shortest_path_length(ring)
            )

    def test_odd_neighbor_count_rejected(self):
        with pytest.raises(TopologyError, match="even"):
            small_world_topology(10, 3)

    def test_too_many_neighbors_rejected(self):
        with pytest.raises(TopologyError, match="nearest_neighbors"):
            small_world_topology(4, 4)


class TestRegistry:
    def test_make_by_name(self):
        from repro.topology.registry import available_topologies, make_topology

        assert "rrg" in available_topologies()
        topo = make_topology("hypercube", dimension=3)
        assert topo.num_switches == 8

    def test_unknown_name_rejected(self):
        from repro.topology.registry import make_topology

        with pytest.raises(TopologyError, match="unknown topology"):
            make_topology("nonsense")

    def test_register_custom_and_no_overwrite(self):
        from repro.topology.registry import make_topology, register_topology
        from repro.topology.base import Topology

        def factory(**kwargs):
            topo = Topology("custom")
            topo.add_switch(0)
            return topo

        register_topology("test-custom-unique", factory)
        assert make_topology("test-custom-unique").num_switches == 1
        with pytest.raises(TopologyError, match="already registered"):
            register_topology("rrg", factory)
