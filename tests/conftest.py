"""Shared fixtures for the test suite.

Fixtures build deliberately small instances: every LP here solves in
milliseconds so the full suite stays fast while still exercising the real
solvers.

Hypothesis profiles: ``dev`` (default) keeps the library defaults except
for the wall-clock deadline, which is disabled — property tests here
build topologies and solve LPs, whose first-call import/JIT costs trip
per-example deadlines spuriously. ``ci`` additionally derandomizes so CI
failures reproduce locally, and caps examples to keep `-n auto` workers
balanced. Select with ``HYPOTHESIS_PROFILE=ci`` (the CI workflow does).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

hypothesis_settings.register_profile("dev", deadline=None)
hypothesis_settings.register_profile(
    "ci", deadline=None, derandomize=True, max_examples=25
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.topology.base import Topology
from repro.topology.random_regular import random_regular_topology
from repro.topology.two_cluster import two_cluster_random_topology
from repro.traffic.permutation import random_permutation_traffic


@pytest.fixture
def triangle() -> Topology:
    """Three switches in a cycle, one server each, unit capacities."""
    topo = Topology("triangle")
    for v in range(3):
        topo.add_switch(v, servers=1)
    topo.add_link(0, 1)
    topo.add_link(1, 2)
    topo.add_link(2, 0)
    return topo


@pytest.fixture
def path_two() -> Topology:
    """Two switches joined by one unit link, one server each."""
    topo = Topology("path2")
    topo.add_switch("a", servers=1)
    topo.add_switch("b", servers=1)
    topo.add_link("a", "b", capacity=1.0)
    return topo


@pytest.fixture
def small_rrg() -> Topology:
    """RRG(N=12, r=4) with 3 servers per switch (seeded)."""
    return random_regular_topology(12, 4, servers_per_switch=3, seed=7)


@pytest.fixture
def small_rrg_traffic(small_rrg):
    """A seeded permutation on the small RRG."""
    return random_permutation_traffic(small_rrg, seed=13)


@pytest.fixture
def small_two_cluster() -> Topology:
    """Two-cluster network: 4 large x 6 net-ports, 8 small x 3 net-ports."""
    return two_cluster_random_topology(
        num_large=4,
        large_network_ports=6,
        num_small=8,
        small_network_ports=3,
        servers_per_large=4,
        servers_per_small=2,
        cross_fraction=1.0,
        seed=23,
    )
