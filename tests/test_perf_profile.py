"""The profiling harness: spans, cProfile capture, and the CLI flag.

Covers :mod:`repro.perf.profile` directly (dotted-path nesting, the
one-capture rule, artifact schema) and end-to-end through
``repro-experiments sweep/grow --profile``, which must leave a
``schema_version`` 1 span artifact on disk.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import main
from repro.perf import (
    PROFILE_SCHEMA_VERSION,
    Profiler,
    active_profiler,
    perf_span,
    profiling,
)


class TestProfiler:
    def test_span_nesting_builds_dotted_paths(self):
        profiler = Profiler(label="unit")
        with profiler.span("run", cells=2):
            with profiler.span("cell"):
                pass
            with profiler.span("cell"):
                pass
        names = [span.name for span in profiler.spans]
        assert names == ["run.cell", "run.cell", "run"]
        assert profiler.spans[-1].meta == {"cells": 2}

    def test_record_applies_current_nesting(self):
        profiler = Profiler()
        with profiler.span("run"):
            profiler.record("cell", 0.25, scenario="x")
        totals = profiler.total_by_name()
        assert totals["run.cell"] == 0.25
        assert totals["run"] >= 0.0

    def test_totals_sum_repeated_names(self):
        profiler = Profiler()
        profiler.record("cell", 1.0)
        profiler.record("cell", 2.0)
        assert profiler.total_by_name() == {"cell": 3.0}

    def test_cprofile_capture_and_hotspots(self):
        profiler = Profiler(cprofile=True)
        with profiler.profiled():
            sum(range(1000))
        rows = profiler.hotspots()
        assert rows and all(
            {"function", "calls", "tottime_s", "cumtime_s"} <= set(row)
            for row in rows
        )

    def test_second_capture_rejected(self):
        profiler = Profiler(cprofile=True)
        with profiler.profiled():
            pass
        with pytest.raises(RuntimeError, match="already captured"):
            with profiler.profiled():
                pass

    def test_unarmed_profiled_is_noop(self):
        profiler = Profiler(cprofile=False)
        with profiler.profiled():
            pass
        with profiler.profiled():  # no one-capture rule when unarmed
            pass
        assert profiler.hotspots() == []

    def test_artifact_schema(self, tmp_path):
        profiler = Profiler(label="unit", cprofile=True)
        with profiler.span("work"):
            with profiler.profiled():
                sorted(range(100))
        path = tmp_path / "profile.json"
        profiler.write_json(path)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == PROFILE_SCHEMA_VERSION
        assert payload["label"] == "unit"
        assert payload["total_s"] > 0.0
        assert payload["totals"]["work"] > 0.0
        assert [span["name"] for span in payload["spans"]] == ["work"]
        assert payload["hotspots"]


class TestActiveProfiler:
    def test_perf_span_noop_without_scope(self):
        assert active_profiler() is None
        with perf_span("ignored"):
            pass  # must not raise, must not record anywhere

    def test_perf_span_records_inside_scope(self):
        with profiling(label="scoped") as profiler:
            assert active_profiler() is profiler
            with perf_span("stage", detail=1):
                pass
        assert active_profiler() is None
        assert [span.name for span in profiler.spans] == ["stage"]
        assert profiler.spans[0].meta == {"detail": 1}

    def test_existing_profiler_passes_through(self):
        mine = Profiler(label="mine")
        with profiling(mine) as active:
            assert active is mine


SWEEP_FLAGS = [
    "sweep",
    "--topologies", "rrg",
    "--topo-param", "network_degree=4",
    "--topo-param", "servers_per_switch=2",
    "--sizes", "8",
    "--traffics", "permutation",
    "--solvers", "edge_lp",
    "--seeds", "1",
    "--quiet",
]


class TestProfileFlag:
    def test_sweep_profile_artifact(self, tmp_path, capsys):
        path = tmp_path / "profile_sweep.json"
        assert main(SWEEP_FLAGS + ["--profile", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == PROFILE_SCHEMA_VERSION
        totals = payload["totals"]
        assert {"grid", "run", "run.cell", "artifacts"} <= set(totals)
        assert payload["hotspots"]
        cell_spans = [
            span for span in payload["spans"] if span["name"] == "run.cell"
        ]
        assert len(cell_spans) == 1
        assert "scenario" in cell_spans[0]["meta"]

    def test_grow_profile_artifact(self, tmp_path, capsys):
        path = tmp_path / "profile_grow.json"
        flags = [
            "grow",
            "--start", "8", "--target", "12", "--stages", "1",
            "--degree", "4", "--servers-per-switch", "2",
            "--strategies", "swap", "--seeds", "1",
            "--quiet", "--profile", str(path),
        ]
        assert main(flags) == 0
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == PROFILE_SCHEMA_VERSION
        totals = payload["totals"]
        assert {"schedule", "run", "run.trajectory", "artifacts"} <= set(
            totals
        )

    def test_no_profile_flag_writes_nothing(self, tmp_path, capsys):
        assert main(SWEEP_FLAGS) == 0
        assert not list(tmp_path.iterdir())
