"""Tests for the VL2 improvement pipeline and optimality-gap measurement."""

from __future__ import annotations

import pytest

from repro.core.optimality import OptimalityGap, bound_ratio, measure_optimality_gap
from repro.core.vl2_improvement import (
    make_traffic,
    max_tors_at_full_throughput,
    supports_full_throughput,
    vl2_improvement_ratio,
)
from repro.exceptions import ExperimentError
from repro.topology.vl2 import rewired_vl2_topology, vl2_topology


class TestOptimalityGap:
    def test_ratio_below_one_for_permutation(self):
        gap = measure_optimality_gap(12, 4, 3, runs=2, seed=1)
        assert 0.3 < gap.ratio <= 1.0 + 1e-9
        assert gap.aspl_ratio >= 1.0 - 1e-9

    def test_all_to_all_respects_bound(self):
        gap = measure_optimality_gap(
            10, 4, 2, workload="all-to-all", runs=2, seed=2
        )
        assert gap.ratio <= 1.0 + 1e-6

    def test_denser_graphs_closer_to_bound(self):
        sparse = measure_optimality_gap(14, 3, 3, runs=2, seed=3)
        dense = measure_optimality_gap(14, 9, 3, runs=2, seed=3)
        assert dense.ratio > sparse.ratio

    def test_unknown_workload_rejected(self):
        with pytest.raises(ExperimentError, match="workload"):
            measure_optimality_gap(10, 4, 2, workload="bogus")

    def test_bound_ratio_helper(self):
        assert bound_ratio(0.5, 40, 10, 200) == pytest.approx(
            0.5 / (40 * 10 / (200 * (68 / 39)))
        )

    def test_dataclass_fields(self):
        gap = measure_optimality_gap(10, 4, 2, runs=1, seed=5)
        assert isinstance(gap, OptimalityGap)
        assert gap.num_switches == 10
        assert gap.bound > 0


class TestMakeTraffic:
    def test_kinds(self, small_rrg):
        assert make_traffic("permutation", small_rrg, seed=1).num_flows > 0
        assert make_traffic("all-to-all", small_rrg).num_flows > 0
        chunky = make_traffic("chunky-100", small_rrg, seed=2)
        assert chunky.num_flows > 0

    def test_unknown_kind_rejected(self, small_rrg):
        with pytest.raises(ExperimentError, match="unknown traffic"):
            make_traffic("bogus", small_rrg)


class TestFullThroughputSupport:
    def test_vl2_supports_design_size(self):
        topo = vl2_topology(4, 4, servers_per_tor=20)
        supported, worst = supports_full_throughput(
            topo, runs=2, seed=1
        )
        assert supported
        assert worst >= 1.0 - 1e-3

    def test_overloaded_vl2_fails(self):
        # 30 servers per ToR oversubscribes the 2x10G uplinks (30 > 20).
        topo = vl2_topology(4, 4, servers_per_tor=30)
        supported, worst = supports_full_throughput(topo, runs=1, seed=2)
        assert not supported
        assert worst < 1.0


class TestBinarySearch:
    def test_finds_structural_limit_when_capacity_rich(self):
        # With tiny per-ToR load, the only limit is port exhaustion.
        def builder(num_tors: int, seed=None):
            return rewired_vl2_topology(
                4, 4, num_tors=num_tors, servers_per_tor=1, seed=seed
            )

        best = max_tors_at_full_throughput(
            builder, 10, runs=1, seed=3
        )
        assert best == 10

    def test_monotone_in_load(self):
        def make_builder(servers: int):
            def builder(num_tors: int, seed=None):
                return rewired_vl2_topology(
                    4, 4, num_tors=num_tors, servers_per_tor=servers, seed=seed
                )

            return builder

        light = max_tors_at_full_throughput(
            make_builder(5), 11, runs=1, seed=4
        )
        heavy = max_tors_at_full_throughput(
            make_builder(20), 11, runs=1, seed=4
        )
        assert heavy <= light


class TestImprovementRatio:
    def test_rewired_beats_vl2_at_paper_load(self):
        comparison = vl2_improvement_ratio(
            4, 4, runs=2, seed=5, servers_per_tor=20
        )
        assert comparison.vl2_tors == 4  # the structural design point
        assert comparison.rewired_tors >= comparison.vl2_tors
        assert comparison.ratio >= 1.0

    def test_ratio_requires_nonzero_vl2(self):
        from repro.core.vl2_improvement import Vl2Comparison

        broken = Vl2Comparison(4, 4, "permutation", 0, 5)
        with pytest.raises(ExperimentError, match="zero"):
            _ = broken.ratio
