"""Tests for the randomized graph builders, including hypothesis properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphConstructionError
from repro.topology.builders import (
    is_graphical,
    random_bipartite_matching,
    random_graph_from_degrees,
)


class TestIsGraphical:
    def test_known_graphical(self):
        assert is_graphical([2, 2, 2])  # triangle
        assert is_graphical([3, 3, 3, 3])  # K4
        assert is_graphical([1, 1])

    def test_known_non_graphical(self):
        assert not is_graphical([3, 1])  # odd sum is caught too
        assert not is_graphical([2, 2, 1])  # odd sum
        assert not is_graphical([4, 1, 1, 1])  # Erdos-Gallai violation

    def test_rejects_negative_and_oversized(self):
        assert not is_graphical([-1, 1])
        assert not is_graphical([5, 1, 1, 1, 1])  # degree > n-1

    def test_empty_is_graphical(self):
        assert is_graphical([])

    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, degrees):
        import networkx as nx

        assert is_graphical(degrees) == nx.is_graphical(degrees)


def _check_simple(edges, budgets):
    seen = set()
    used = {node: 0 for node in budgets}
    for u, v in edges:
        assert u != v, "self loop"
        key = frozenset((u, v))
        assert key not in seen, "parallel edge"
        seen.add(key)
        used[u] += 1
        used[v] += 1
    for node, count in used.items():
        assert count <= budgets[node], f"degree budget exceeded at {node}"
    return used


class TestRandomGraphFromDegrees:
    def test_regular_graph_exact(self):
        budgets = {v: 4 for v in range(10)}
        edges = random_graph_from_degrees(budgets, rng=1, allow_remainder=False)
        used = _check_simple(edges, budgets)
        assert all(count == 4 for count in used.values())

    def test_near_complete_graph(self):
        budgets = {v: 9 for v in range(10)}
        edges = random_graph_from_degrees(budgets, rng=2, allow_remainder=False)
        assert len(edges) == 45

    def test_odd_total_leaves_remainder(self):
        budgets = {0: 1, 1: 1, 2: 1}
        edges = random_graph_from_degrees(budgets, rng=3)
        assert len(edges) == 1

    def test_remainder_rejected_when_disallowed(self):
        budgets = {0: 1, 1: 1, 2: 1}
        with pytest.raises(GraphConstructionError, match="stubs"):
            random_graph_from_degrees(budgets, rng=3, allow_remainder=False)

    def test_budget_above_n_minus_1_rejected(self):
        with pytest.raises(GraphConstructionError, match="exceeds"):
            random_graph_from_degrees({0: 3, 1: 1, 2: 1}, rng=0)

    def test_budget_above_n_minus_1_clamped(self):
        edges = random_graph_from_degrees(
            {0: 5, 1: 1, 2: 1}, rng=0, clamp=True
        )
        _check_simple(edges, {0: 2, 1: 1, 2: 1})

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            random_graph_from_degrees({0: -1, 1: 1})

    def test_zero_budgets_produce_no_edges(self):
        assert random_graph_from_degrees({0: 0, 1: 0}) == []

    def test_deterministic_given_seed(self):
        budgets = {v: 3 for v in range(8)}
        a = random_graph_from_degrees(budgets, rng=11)
        b = random_graph_from_degrees(budgets, rng=11)
        assert sorted(map(sorted, a)) == sorted(map(sorted, b))

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=6),
            min_size=2,
            max_size=16,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_always_simple_within_budgets(self, budgets):
        n = len(budgets)
        budgets = {node: min(b, n - 1) for node, b in budgets.items()}
        edges = random_graph_from_degrees(budgets, rng=5)
        _check_simple(edges, budgets)

    def test_regular_fill_places_everything_when_graphical(self):
        # 12 nodes degree 5: graphical (even sum); builder must place all.
        budgets = {v: 5 for v in range(12)}
        edges = random_graph_from_degrees(budgets, rng=7, allow_remainder=False)
        assert len(edges) == 30


class TestRandomBipartiteMatching:
    def test_exact_matching(self):
        stubs_a = {("a", i): 2 for i in range(4)}
        stubs_b = {("b", i): 2 for i in range(4)}
        edges = random_bipartite_matching(stubs_a, stubs_b, rng=1)
        assert len(edges) == 8
        for u, v in edges:
            sides = {u[0], v[0]}
            assert sides == {"a", "b"}

    def test_no_parallel_edges(self):
        stubs_a = {("a", 0): 3}
        stubs_b = {("b", i): 1 for i in range(3)}
        edges = random_bipartite_matching(stubs_a, stubs_b, rng=2)
        assert len({frozenset(e) for e in edges}) == 3

    def test_total_mismatch_rejected(self):
        with pytest.raises(GraphConstructionError, match="totals differ"):
            random_bipartite_matching({"a": 2}, {"b": 1}, rng=0)

    def test_overlapping_sides_rejected(self):
        with pytest.raises(GraphConstructionError, match="both sides"):
            random_bipartite_matching({"x": 1}, {"x": 1}, rng=0)

    def test_forbidden_pairs_avoided(self):
        stubs_a = {("a", 0): 1, ("a", 1): 1}
        stubs_b = {("b", 0): 1, ("b", 1): 1}
        forbidden = {frozenset((("a", 0), ("b", 0)))}
        for seed in range(8):
            edges = random_bipartite_matching(
                stubs_a, stubs_b, rng=seed, forbidden=forbidden
            )
            assert frozenset((("a", 0), ("b", 0))) not in {
                frozenset(e) for e in edges
            }

    def test_infeasible_raises(self):
        # 2 stubs on one pair of nodes cannot form 2 simple edges.
        with pytest.raises(GraphConstructionError):
            random_bipartite_matching({"a": 2}, {"b": 2}, rng=0)

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=2, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_budgets_respected(self, per_node, nodes):
        stubs_a = {("a", i): per_node for i in range(nodes)}
        stubs_b = {("b", i): per_node for i in range(nodes)}
        if per_node > nodes:
            return  # infeasible by simple-graph cap
        edges = random_bipartite_matching(stubs_a, stubs_b, rng=3)
        used: dict = {}
        for u, v in edges:
            used[u] = used.get(u, 0) + 1
            used[v] = used.get(v, 0) + 1
        assert all(count == per_node for count in used.values())
