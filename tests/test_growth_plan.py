"""Growth schedules and stages: validation, helpers, JSON round trips."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.growth.plan import GrowthSchedule, GrowthStage


class TestGrowthStage:
    def test_defaults_resolve_to_schedule(self):
        schedule = GrowthSchedule.from_targets(
            (10, 20), network_degree=6, servers_per_switch=3
        )
        stage = schedule.stages[1]
        assert stage.degree(schedule) == 6
        assert stage.servers(schedule) == 3

    def test_overrides_win(self):
        stage = GrowthStage(20, network_degree=4, servers_per_switch=1)
        schedule = GrowthSchedule(
            stages=(GrowthStage(10), stage),
            network_degree=6,
            servers_per_switch=3,
        )
        assert stage.degree(schedule) == 4
        assert stage.servers(schedule) == 1

    def test_name_uses_label_when_given(self):
        assert GrowthStage(10, label="q3-upgrade").name(2) == "q3-upgrade"
        assert GrowthStage(10).name(2) == "stage2@N=10"

    def test_rejects_bad_targets(self):
        with pytest.raises(Exception):
            GrowthStage(0)

    def test_dict_round_trip(self):
        stage = GrowthStage(
            32, network_degree=10, servers_per_switch=2, label="x"
        )
        assert GrowthStage.from_dict(stage.to_dict()) == stage
        bare = GrowthStage(32)
        assert GrowthStage.from_dict(bare.to_dict()) == bare
        assert bare.to_dict() == {"target_switches": 32}


class TestGrowthSchedule:
    def test_requires_stages(self):
        with pytest.raises(ExperimentError, match="at least one stage"):
            GrowthSchedule(stages=())

    def test_requires_strictly_increasing(self):
        with pytest.raises(ExperimentError, match="strictly increasing"):
            GrowthSchedule.from_targets((10, 10), network_degree=4)
        with pytest.raises(ExperimentError, match="strictly increasing"):
            GrowthSchedule.from_targets((20, 10), network_degree=4)

    def test_initial_must_exceed_degree(self):
        with pytest.raises(ExperimentError, match="exceed"):
            GrowthSchedule.from_targets((4, 10), network_degree=4)

    def test_int_stages_coerced(self):
        schedule = GrowthSchedule(stages=(10, 20), network_degree=4)
        assert all(isinstance(s, GrowthStage) for s in schedule.stages)
        assert schedule.final_switches == 20
        assert len(schedule) == 2

    def test_geometric_spacing(self):
        schedule = GrowthSchedule.geometric(64, 2048, 5, network_degree=8)
        targets = [s.target_switches for s in schedule.stages]
        assert targets == [64, 128, 256, 512, 1024, 2048]

    def test_geometric_collapses_duplicates(self):
        schedule = GrowthSchedule.geometric(12, 14, 6, network_degree=4)
        targets = [s.target_switches for s in schedule.stages]
        assert targets[0] == 12
        assert targets[-1] == 14
        assert targets == sorted(set(targets))

    def test_geometric_zero_stages(self):
        schedule = GrowthSchedule.geometric(16, 16, 0, network_degree=4)
        assert [s.target_switches for s in schedule.stages] == [16]

    def test_geometric_rejects_shrink(self):
        with pytest.raises(ExperimentError, match=">= start"):
            GrowthSchedule.geometric(32, 16, 2, network_degree=4)

    def test_growth_stages_property(self):
        schedule = GrowthSchedule.from_targets((10, 20, 40), network_degree=4)
        assert schedule.initial_stage.target_switches == 10
        assert [s.target_switches for s in schedule.growth_stages] == [20, 40]

    def test_dict_round_trip(self):
        schedule = GrowthSchedule(
            name="plan",
            network_degree=6,
            servers_per_switch=2,
            capacity=2.5,
            stages=(
                GrowthStage(10),
                GrowthStage(20, network_degree=8, label="arrival"),
            ),
        )
        assert GrowthSchedule.from_dict(schedule.to_dict()) == schedule

    def test_hashable_and_picklable(self):
        import pickle

        schedule = GrowthSchedule.from_targets((10, 20), network_degree=4)
        assert hash(schedule) == hash(
            GrowthSchedule.from_targets((10, 20), network_degree=4)
        )
        assert pickle.loads(pickle.dumps(schedule)) == schedule
