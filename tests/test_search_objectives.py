"""Tests for search objectives and the flow objective adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError, FlowError
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.objective import (
    available_throughput_solvers,
    throughput_evaluator,
)
from repro.flow.path_lp import max_concurrent_flow_paths
from repro.metrics.paths import average_shortest_path_length
from repro.metrics.spectral import algebraic_connectivity
from repro.search.objectives import (
    ASPLObjective,
    BisectionObjective,
    LPThroughputObjective,
    SpectralGapObjective,
    ThroughputObjective,
    make_objective,
)
from repro.topology.mutation import (
    apply_double_edge_swap,
    sample_double_edge_swap,
)
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import as_rng


@pytest.fixture
def rrg():
    return random_regular_topology(16, 4, servers_per_switch=1, seed=0)


class TestThroughputEvaluator:
    def test_matches_direct_edge_lp(self, rrg):
        traffic = random_permutation_traffic(rrg, seed=1)
        evaluate = throughput_evaluator("edge-lp")
        assert evaluate(rrg, traffic) == pytest.approx(
            max_concurrent_flow(rrg, traffic).throughput
        )

    def test_forwards_solver_kwargs(self, rrg):
        traffic = random_permutation_traffic(rrg, seed=1)
        evaluate = throughput_evaluator("path-lp", k=2)
        assert evaluate(rrg, traffic) == pytest.approx(
            max_concurrent_flow_paths(rrg, traffic, k=2).throughput
        )

    def test_unknown_solver_rejected(self):
        with pytest.raises(FlowError, match="unknown solver"):
            throughput_evaluator("simplex-of-doom")

    def test_solver_listing(self):
        assert "edge-lp" in available_throughput_solvers()
        assert "garg-koenemann" in available_throughput_solvers()


class TestASPLObjective:
    def test_score_is_negated_aspl(self, rrg):
        assert ASPLObjective().evaluate(rrg) == pytest.approx(
            -average_shortest_path_length(rrg)
        )

    def test_incremental_state_tracks_swaps(self, rrg):
        objective = ASPLObjective()
        state = objective.attach(rrg)
        assert state.score() == pytest.approx(objective.evaluate(rrg))
        rng = as_rng(2)
        committed = 0
        while committed < 5:
            swap = sample_double_edge_swap(rrg, rng=rng)
            result = state.evaluate(swap)
            if result is None:
                continue
            score, token = result
            state.commit(token)
            apply_double_edge_swap(rrg, swap)
            committed += 1
            assert score == pytest.approx(objective.evaluate(rrg), abs=1e-12)


class TestProxyObjectives:
    def test_spectral_gap(self, rrg):
        assert SpectralGapObjective().evaluate(rrg) == pytest.approx(
            algebraic_connectivity(rrg, weighted=True)
        )
        assert SpectralGapObjective().attach(rrg) is None

    def test_bisection_deterministic(self):
        topo = random_regular_topology(24, 4, seed=5)
        objective = BisectionObjective(attempts=20, seed=3)
        assert objective.evaluate(topo) == objective.evaluate(topo)


class TestThroughputObjective:
    def test_fixed_traffic(self, rrg):
        traffic = random_permutation_traffic(rrg, seed=1)
        objective = ThroughputObjective(traffic, solver="edge-lp")
        assert objective.name == "throughput-edge-lp"
        assert objective.evaluate(rrg) == pytest.approx(
            max_concurrent_flow(rrg, traffic).throughput
        )

    def test_traffic_factory(self, rrg):
        from repro.traffic.alltoall import all_to_all_traffic

        objective = ThroughputObjective(all_to_all_traffic, solver="edge-lp")
        expected = max_concurrent_flow(rrg, all_to_all_traffic(rrg)).throughput
        assert objective.evaluate(rrg) == pytest.approx(expected)


class TestFactory:
    def test_builds_proxies_by_name(self):
        assert isinstance(make_objective("aspl"), ASPLObjective)
        assert isinstance(make_objective("spectral"), SpectralGapObjective)
        assert isinstance(make_objective("bisection"), BisectionObjective)

    def test_passes_instances_through(self):
        objective = ASPLObjective()
        assert make_objective(objective) is objective

    def test_throughput_requires_traffic(self, rrg):
        with pytest.raises(ExperimentError, match="traffic"):
            make_objective("throughput-edge-lp")
        traffic = random_permutation_traffic(rrg, seed=1)
        objective = make_objective("throughput-edge-lp", traffic=traffic)
        assert isinstance(objective, ThroughputObjective)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ExperimentError, match="unknown objective"):
            make_objective("world-peace")


class TestIncrementalLPState:
    """Eligibility and correctness of the model-reuse annealing state."""

    def _traffic(self, topo):
        return random_permutation_traffic(topo, seed=5)

    def test_lp_objective_attaches_incremental_state(self, rrg):
        objective = LPThroughputObjective(self._traffic(rrg))
        state = objective.attach(rrg)
        assert state is not None
        assert state.score() == pytest.approx(objective.evaluate(rrg))

    def test_incremental_false_opts_out(self, rrg):
        objective = LPThroughputObjective(
            self._traffic(rrg), incremental=False
        )
        assert objective.attach(rrg) is None

    def test_traffic_factory_not_eligible(self, rrg):
        objective = ThroughputObjective(
            lambda topo: random_permutation_traffic(topo, seed=5)
        )
        assert objective.attach(rrg) is None
        assert objective.evaluate(rrg) > 0.0

    def test_non_edge_lp_solver_not_eligible(self, rrg):
        objective = ThroughputObjective(self._traffic(rrg), solver="ecmp")
        assert objective.attach(rrg) is None

    def test_extra_solver_kwargs_not_eligible(self, rrg):
        objective = ThroughputObjective(
            self._traffic(rrg), aggregate_by_source=False
        )
        assert objective.attach(rrg) is None

    def test_method_kwarg_stays_eligible(self, rrg):
        objective = LPThroughputObjective(self._traffic(rrg), method="highs")
        assert objective.attach(rrg) is not None

    def test_evaluate_matches_cold_solve_and_reverts(self, rrg):
        from repro.flow.edge_lp import max_concurrent_flow
        from repro.topology.mutation import double_edge_swap

        traffic = self._traffic(rrg)
        state = LPThroughputObjective(traffic).attach(rrg)
        base = state.score()
        work = rrg.copy()
        swap = double_edge_swap(work, rng=np.random.default_rng(3))
        assert swap is not None
        value, token = state.evaluate(swap)
        assert value == pytest.approx(
            max_concurrent_flow(work, traffic).throughput, abs=1e-9
        )
        # Un-committed evaluation leaves the state at the base instance.
        assert state.score() == base
        state.commit(token)
        assert state.score() == value

    def test_disconnecting_swap_rejected(self):
        from repro.topology.base import Topology
        from repro.topology.mutation import DoubleEdgeSwap
        from repro.traffic.base import TrafficMatrix

        # Two squares joined by two bridges: swapping both bridges into
        # same-side diagonals disconnects the graph.
        topo = Topology(name="barbell")
        for node in range(8):
            topo.add_switch(node)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0),
                     (4, 5), (5, 6), (6, 7), (7, 4)]:
            topo.add_link(u, v)
        topo.add_link(0, 4)
        topo.add_link(2, 6)
        traffic = TrafficMatrix(name="pair", demands={(1, 5): 1.0})
        state = LPThroughputObjective(traffic).attach(topo)
        assert state is not None
        assert state.evaluate(DoubleEdgeSwap(0, 4, 6, 2)) is None
        assert state.score() > 0.0
