"""Calibration: band fitting, persistence, and config injection."""

from __future__ import annotations

import pytest

from repro.estimate import (
    CalibrationRecord,
    CalibrationTable,
    calibrate_estimators,
    calibration_pairs,
    within_band,
)
from repro.exceptions import ExperimentError
from repro.flow.solvers import solve_throughput

#: One small family, sized so every LP solves in milliseconds.
TINY_FAMILIES = {
    "rrg": {
        "kind": "rrg",
        "params": {"network_degree": 4, "servers_per_switch": 2},
        "size_param": "num_switches",
        "sizes": (10, 14),
    }
}


@pytest.fixture(scope="module")
def tiny_table() -> CalibrationTable:
    return calibrate_estimators(
        ("estimate_bound", "estimate_cut"),
        families=TINY_FAMILIES,
        replicates=2,
    )


class TestCalibrationFit:
    def test_records_cover_every_estimator(self, tiny_table):
        assert len(tiny_table) == 2
        for name in ("estimate_bound", "estimate_cut"):
            record = tiny_table.get("rrg", name)
            assert record.samples == 4
            assert 0 < record.ratio_min <= record.ratio_mean <= record.ratio_max

    def test_band_widens_ratio_range_by_margin(self, tiny_table):
        record = tiny_table.get("rrg", "estimate_bound")
        lo, hi = record.band()
        assert lo == pytest.approx(record.ratio_min / (1 + record.margin))
        assert hi == pytest.approx(record.ratio_max * (1 + record.margin))

    def test_calibration_pairs_are_inside_their_own_band(self, tiny_table):
        # The fit pairs must land inside the recorded band (margin > 0).
        for name in ("estimate_bound", "estimate_cut"):
            band = tiny_table.band("rrg", name)
            for topo, tm in calibration_pairs(
                "rrg", TINY_FAMILIES["rrg"], replicates=2
            ):
                exact = solve_throughput(topo, tm, "edge_lp").throughput
                estimate = solve_throughput(topo, tm, name).throughput
                assert within_band(estimate, exact, band)

    def test_held_out_replicates_inside_band(self, tiny_table):
        # Fresh base seed -> instances never seen by the fit.
        band = tiny_table.band("rrg", "estimate_bound")
        for topo, tm in calibration_pairs(
            "rrg", TINY_FAMILIES["rrg"], replicates=1, base_seed=99
        ):
            exact = solve_throughput(topo, tm, "edge_lp").throughput
            estimate = solve_throughput(topo, tm, "estimate_bound").throughput
            assert within_band(estimate, exact, band)

    def test_alias_lookup_normalizes(self, tiny_table):
        assert tiny_table.get("rrg", "estimate-bound").estimator == (
            "estimate_bound"
        )

    def test_unknown_lookup_raises(self, tiny_table):
        with pytest.raises(ExperimentError):
            tiny_table.get("rrg", "edge_lp")
        with pytest.raises(ExperimentError):
            tiny_table.get("nope", "estimate_bound")


class TestCalibrationPersistence:
    def test_json_round_trip(self, tiny_table, tmp_path):
        path = tmp_path / "calibration.json"
        tiny_table.save(path)
        loaded = CalibrationTable.load(path)
        assert loaded.to_dict() == tiny_table.to_dict()
        assert loaded.band("rrg", "estimate_cut") == tiny_table.band(
            "rrg", "estimate_cut"
        )

    def test_record_round_trip(self):
        record = CalibrationRecord(
            family="rrg",
            estimator="estimate_bound",
            samples=3,
            ratio_min=1.01,
            ratio_mean=1.1,
            ratio_max=1.2,
            margin=0.5,
        )
        assert CalibrationRecord.from_dict(record.to_dict()) == record


class TestConfigInjection:
    def test_config_for_carries_band_onto_results(
        self, tiny_table, small_rrg, small_rrg_traffic
    ):
        config = tiny_table.config_for("rrg", "estimate_bound")
        result = config.solve(small_rrg, small_rrg_traffic)
        assert result.error_band == pytest.approx(
            tiny_table.band("rrg", "estimate_bound")
        )

    def test_config_for_merges_extra_options(self, tiny_table):
        config = tiny_table.config_for("rrg", "estimate_cut", seed=5)
        options = config.options_dict()
        assert options["seed"] == 5
        assert "error_band" in options


class TestEstimatorOptions:
    def test_options_applied_during_calibration(self):
        # A tiny max_pairs forces real sampling; the fitted band must then
        # differ from the trivially exact ratio-1.0 band.
        table = calibrate_estimators(
            ("estimate_sampled_lp",),
            families=TINY_FAMILIES,
            replicates=1,
            traffic="gravity",
            estimator_options={"estimate_sampled_lp": {"max_pairs": 6}},
        )
        record = table.get("rrg", "estimate_sampled_lp")
        assert record.ratio_min != pytest.approx(1.0)


class TestValidation:
    def test_rejects_empty_estimators(self):
        with pytest.raises(ExperimentError):
            calibrate_estimators((), families=TINY_FAMILIES)

    def test_rejects_bad_margin(self):
        with pytest.raises(ExperimentError):
            calibrate_estimators(
                ("estimate_bound",), families=TINY_FAMILIES, margin=-0.1
            )

    def test_rejects_bad_replicates(self):
        with pytest.raises(ExperimentError):
            calibrate_estimators(
                ("estimate_bound",), families=TINY_FAMILIES, replicates=0
            )
