"""Tests for the VDC tenant-churn workload generator.

The generator must be deterministic in its seed, respect server-slot
capacity at every step, emit integer unit flows whose counts stay
self-consistent under folding, and keep every step solvable (non-empty
network demand).
"""

from __future__ import annotations

import pytest

from repro.exceptions import TrafficError
from repro.topology.random_regular import random_regular_topology
from repro.traffic.registry import make_traffic
from repro.traffic.timeline import available_timelines, make_timeline
from repro.traffic.vdc import _VdcSimulator, vdc_snapshot_traffic, vdc_timeline
from repro.util.rng import as_rng


@pytest.fixture
def topo():
    return random_regular_topology(10, 4, servers_per_switch=3, seed=2)


PARAMS = dict(steps=25, arrival_rate=1.5, mean_vms=4.0, mean_duration=8.0)


class TestVdcTimeline:
    def test_deterministic_in_seed(self, topo):
        one = vdc_timeline(topo, seed=9, **PARAMS)
        two = vdc_timeline(topo, seed=9, **PARAMS)
        assert one.to_dict() == two.to_dict()
        other = vdc_timeline(topo, seed=10, **PARAMS)
        assert other.to_dict() != one.to_dict()

    def test_every_step_solvable_with_valid_endpoints(self, topo):
        timeline = vdc_timeline(topo, seed=4, **PARAMS)
        assert timeline.num_steps == PARAMS["steps"]
        switches = set(topo.switches)
        for matrix in timeline.matrices():
            assert matrix.demands, "VDC step lost all network demand"
            assert matrix.num_flows >= 0
            assert matrix.num_local_flows >= 0
            for (u, v), units in matrix.demands.items():
                assert u in switches and v in switches
                assert units > 0
                assert units == int(units), "VDC demands are unit flows"

    def test_flow_counts_consistent(self, topo):
        """Network flows = pair-unit sum at every folded step."""
        timeline = vdc_timeline(topo, seed=6, **PARAMS)
        for matrix in timeline.matrices():
            network = matrix.num_flows - matrix.num_local_flows
            assert network == pytest.approx(sum(matrix.demands.values()))

    def test_parameter_validation(self, topo):
        with pytest.raises(TrafficError, match="steps"):
            vdc_timeline(topo, seed=0, steps=0)
        with pytest.raises(TrafficError, match="arrival_rate"):
            vdc_timeline(topo, seed=0, arrival_rate=0.0)
        with pytest.raises(TrafficError, match="warmup"):
            vdc_timeline(topo, seed=0, warmup=-1)

    def test_needs_server_slots(self):
        bare = random_regular_topology(6, 3, servers_per_switch=0, seed=1)
        with pytest.raises(TrafficError, match="server slots"):
            vdc_timeline(bare, seed=0)

    def test_registered_as_timeline_kind(self, topo):
        assert "vdc" in available_timelines()
        timeline = make_timeline("vdc", topo, seed=3, **PARAMS)
        assert timeline.num_steps == PARAMS["steps"]


class TestPlacementCapacity:
    def test_placement_never_exceeds_free_slots(self, topo):
        sim = _VdcSimulator(
            topo,
            as_rng(11),
            arrival_rate=2.0,
            mean_vms=5.0,
            sigma_vms=0.6,
            mean_duration=6.0,
            sigma_duration=0.6,
        )
        capacity = dict(sim.free)
        for now in range(60):
            sim.step(now)
            used: dict = {}
            for tenant in sim.active:
                for switch, count in tenant.vm_counts.items():
                    used[switch] = used.get(switch, 0) + count
            for switch, count in used.items():
                assert count <= capacity[switch]
                assert sim.free[switch] == capacity[switch] - count
            for switch, free in sim.free.items():
                assert 0 <= free <= capacity[switch]

    def test_oversized_tenants_rejected_not_placed(self, topo):
        sim = _VdcSimulator(
            topo,
            as_rng(1),
            arrival_rate=4.0,
            mean_vms=40.0,  # clamped to total slots; fills fast, then rejects
            sigma_vms=0.2,
            mean_duration=50.0,
            sigma_duration=0.2,
        )
        for now in range(20):
            sim.step(now)
        assert sim.rejected > 0
        assert all(free >= 0 for free in sim.free.values())


class TestSnapshotModel:
    def test_snapshot_matches_timeline_step(self, topo):
        timeline = vdc_timeline(topo, seed=8, **PARAMS)
        snap = vdc_snapshot_traffic(topo, seed=8, step=10, **PARAMS)
        assert snap.demands == timeline.matrix_at(10).demands
        last = vdc_snapshot_traffic(topo, seed=8, **PARAMS)
        assert last.demands == timeline.matrix_at(timeline.num_steps - 1).demands

    def test_available_through_traffic_registry(self, topo):
        tm = make_traffic("vdc", topo, seed=5, steps=10, arrival_rate=1.5)
        assert tm.demands
