"""Tests for two-cluster random networks with cross-link control."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.two_cluster import (
    LARGE,
    SMALL,
    cluster_cut_capacity,
    expected_cross_links,
    two_cluster_random_topology,
)


class TestExpectedCrossLinks:
    def test_symmetric(self):
        assert expected_cross_links(10, 10) == pytest.approx(5.0)

    def test_formula(self):
        assert expected_cross_links(30, 60) == pytest.approx(20.0)

    def test_zero_side(self):
        assert expected_cross_links(0, 10) == 0.0
        assert expected_cross_links(0, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            expected_cross_links(-1, 5)


def _count_cross(topo) -> int:
    large = set(topo.nodes_in_cluster(LARGE))
    return sum(
        1
        for link in topo.links
        if (link.u in large) != (link.v in large)
    )


class TestTwoClusterTopology:
    def test_exact_cross_count(self):
        for cross in (4, 8, 12):
            topo = two_cluster_random_topology(
                4, 6, 8, 3, cross_links=cross, seed=5
            )
            assert _count_cross(topo) == cross

    def test_cross_fraction_hits_expectation(self):
        topo = two_cluster_random_topology(4, 6, 8, 3, cross_fraction=1.0, seed=1)
        expected = expected_cross_links(24, 24)
        assert _count_cross(topo) == round(expected)

    def test_port_budgets_respected(self):
        topo = two_cluster_random_topology(4, 6, 8, 3, cross_fraction=1.0, seed=2)
        for v in topo.nodes_in_cluster(LARGE):
            assert topo.degree(v) <= 6
        for v in topo.nodes_in_cluster(SMALL):
            assert topo.degree(v) <= 3

    def test_cluster_labels_assigned(self):
        topo = two_cluster_random_topology(3, 4, 5, 2, seed=3)
        assert len(topo.nodes_in_cluster(LARGE)) == 3
        assert len(topo.nodes_in_cluster(SMALL)) == 5

    def test_servers_attached(self):
        topo = two_cluster_random_topology(
            3, 4, 5, 2, servers_per_large=7, servers_per_small=2, seed=3
        )
        assert topo.num_servers == 3 * 7 + 5 * 2

    def test_infeasible_cross_rejected(self):
        with pytest.raises(TopologyError, match="feasible maximum"):
            two_cluster_random_topology(2, 3, 2, 3, cross_links=5, seed=0)

    def test_infeasible_cross_clamped(self):
        topo = two_cluster_random_topology(
            2, 3, 2, 3, cross_links=5, clamp_cross=True, seed=0
        )
        assert _count_cross(topo) == 4  # num_large * num_small

    def test_negative_fraction_rejected(self):
        with pytest.raises(TopologyError, match="cross_fraction"):
            two_cluster_random_topology(2, 3, 2, 3, cross_fraction=-0.5)

    def test_capacity_applied(self):
        topo = two_cluster_random_topology(
            3, 4, 4, 3, cross_fraction=1.0, capacity=2.0, seed=4
        )
        assert all(link.capacity == 2.0 for link in topo.links)

    def test_tiny_cross_count_succeeds(self):
        # Regression: cross=2 once failed when both stubs landed on one pair.
        for seed in range(10):
            topo = two_cluster_random_topology(
                8, 7, 16, 2, cross_links=2, seed=seed
            )
            assert _count_cross(topo) == 2


class TestClusterCutCapacity:
    def test_matches_cross_count_for_unit_caps(self):
        topo = two_cluster_random_topology(4, 6, 8, 3, cross_links=9, seed=6)
        assert cluster_cut_capacity(topo) == pytest.approx(18.0)  # both dirs

    def test_requires_cluster_labels(self, triangle):
        with pytest.raises(TopologyError, match="clusters"):
            cluster_cut_capacity(triangle)
