"""Tests for the candidate generators and the annealing move kernel."""

from __future__ import annotations

import pytest

from repro.design import (
    DesignSpec,
    available_generators,
    default_catalog,
    generate_candidates,
    mutate_candidate,
    register_generator,
)
from repro.design.candidates import (
    fat_tree_candidates,
    matched_candidates,
    rrg_candidates,
    vl2_candidates,
)
from repro.exceptions import DesignError
from repro.util.rng import as_rng

SPEC = DesignSpec.make(budget=60_000.0, servers=16)
CATALOG = default_catalog()


class TestGenerators:
    def test_all_registered(self):
        assert available_generators() == [
            "rrg",
            "fat-tree",
            "matched",
            "vl2",
            "power-law",
        ]

    def test_candidates_serve_target_within_budget(self):
        for candidate in generate_candidates(CATALOG, SPEC):
            assert candidate.servers >= SPEC.servers
            assert candidate.equipment_cost <= SPEC.budget
            assert candidate.num_switches == sum(candidate.bill_dict().values())
            # The priced bill must be purchasable from the catalog.
            for name, count in candidate.bill_dict().items():
                assert count >= 1
                CATALOG.sku(name)

    def test_candidates_are_buildable(self):
        # Every emitted TopologySpec must construct through the registry
        # with at least the promised servers attached.
        for candidate in generate_candidates(CATALOG, SPEC):
            topo = candidate.topology.build(seed=0)
            assert topo.num_switches == candidate.num_switches
            assert topo.num_servers >= SPEC.servers
            assert topo.is_connected()

    def test_matched_shares_the_fat_tree_bill(self):
        fat_trees = {
            c.topology.params_dict()["k"]: c
            for c in fat_tree_candidates(CATALOG, SPEC)
        }
        matched = {
            c.topology.params_dict()["k"]: c
            for c in matched_candidates(CATALOG, SPEC)
        }
        assert set(fat_trees) == set(matched)
        for k, ft in fat_trees.items():
            assert matched[k].bill == ft.bill
            assert matched[k].equipment_cost == pytest.approx(
                ft.equipment_cost
            )

    def test_budget_filters_candidates(self):
        tight = DesignSpec.make(budget=5_000.0, servers=8)
        for candidate in rrg_candidates(CATALOG, tight):
            assert candidate.equipment_cost <= tight.budget

    def test_unknown_generator_rejected(self):
        with pytest.raises(DesignError, match="unknown generator"):
            generate_candidates(CATALOG, SPEC, generators=("nope",))

    def test_register_rejects_overwrite(self):
        with pytest.raises(DesignError, match="already registered"):
            register_generator("rrg", rrg_candidates)

    def test_infeasible_space_raises(self):
        greedy = DesignSpec.make(budget=10.0, servers=10_000)
        with pytest.raises(DesignError, match="no feasible candidate"):
            generate_candidates(CATALOG, greedy)

    def test_vl2_ports_shared_sku(self):
        for candidate in vl2_candidates(CATALOG, SPEC):
            used = dict(candidate.ports_used)
            for name, lit in used.items():
                assert lit <= CATALOG.sku(name).ports


class TestMutation:
    def test_moves_stay_feasible(self):
        rng = as_rng(11)
        pool = generate_candidates(CATALOG, SPEC)
        proposals = 0
        for candidate in pool:
            for _ in range(8):
                neighbor = mutate_candidate(candidate, CATALOG, SPEC, rng)
                if neighbor is None:
                    continue
                proposals += 1
                assert neighbor.servers >= SPEC.servers
                assert neighbor.equipment_cost <= SPEC.budget
        assert proposals > 0

    def test_mutation_explores_new_designs(self):
        rng = as_rng(3)
        pool = generate_candidates(CATALOG, SPEC)
        labels = {c.label() for c in pool}
        discovered = set()
        for candidate in pool:
            for _ in range(16):
                neighbor = mutate_candidate(candidate, CATALOG, SPEC, rng)
                if neighbor is not None and neighbor.label() not in labels:
                    discovered.add(neighbor.label())
        assert discovered
