"""Batched grid execution: grouping, differential equality, workers.

``run_grid(batch=True)`` (the default) builds each shared (topology,
traffic) instance once per group and runs its solver/failure columns
over one shared-artifact scope. The contract is strict: every
:class:`CellResult` field except the timing must be identical to the
per-cell reference path (``batch=False``), cold and warm, serial and
parallel.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import ExperimentError
from repro.flow.solvers import SolverConfig
from repro.pipeline.engine import (
    evaluate_batch,
    evaluate_cell,
    group_cells,
    run_grid,
)
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.resilience import FailureSpec


def estimator_grid(**overrides) -> ScenarioGrid:
    kwargs = dict(
        name="batch-test",
        topologies=(
            TopologySpec.make("rrg", network_degree=4, servers_per_switch=2),
        ),
        traffics=(TrafficSpec.make("permutation"),),
        solvers=(
            SolverConfig("edge_lp"),
            SolverConfig("estimate_bound"),
            SolverConfig("estimate_cut"),
            SolverConfig("estimate_spectral"),
        ),
        sizes=(10, 12),
        seeds=1,
        failures=(None, FailureSpec("random_links", 0.1)),
    )
    kwargs.update(overrides)
    return ScenarioGrid(**kwargs)


def _strip_timing(cell):
    return dataclasses.replace(cell, elapsed_s=0.0)


class TestGroupCells:
    def test_groups_share_instance_and_preserve_order(self):
        grid = estimator_grid()
        cells = list(grid.cells())
        groups = group_cells(cells)
        # 2 sizes x 1 seed -> 2 groups, each holding the full
        # failure x solver block.
        assert len(groups) == 2
        flat = [index for group in groups for index, _ in group]
        assert sorted(flat) == list(range(len(cells)))
        for group in groups:
            seeds = {scenario.seed for _, scenario in group}
            assert len(seeds) == 1
            sizes = {scenario.size for _, scenario in group}
            assert len(sizes) == 1

    def test_solver_and_failure_axes_do_not_split_groups(self):
        grid = estimator_grid()
        groups = group_cells(list(grid.cells()))
        assert {len(group) for group in groups} == {8}  # 4 solvers x 2 failures


class TestEvaluateBatch:
    def test_matches_evaluate_cell_exactly(self):
        grid = estimator_grid()
        cells = list(grid.cells())
        reference = [evaluate_cell(scenario) for scenario in cells]
        for group in group_cells(cells):
            batched = evaluate_batch([scenario for _, scenario in group])
            for (index, _), result in zip(group, batched):
                assert _strip_timing(result) == _strip_timing(
                    reference[index]
                ), cells[index].label()

    def test_mixed_instance_keys_rejected(self):
        grid = estimator_grid()
        groups = group_cells(list(grid.cells()))
        mixed = [groups[0][0][1], groups[1][0][1]]
        with pytest.raises(ExperimentError, match="one sampled instance"):
            evaluate_batch(mixed)

    def test_shared_time_is_distributed(self):
        grid = estimator_grid(sizes=(10,))
        group = group_cells(list(grid.cells()))[0]
        batched = evaluate_batch([scenario for _, scenario in group])
        assert all(result.elapsed_s > 0.0 for result in batched)


class TestRunGridBatched:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_batched_matches_reference_path(self, workers):
        grid = estimator_grid()
        batched = run_grid(grid, workers=workers, batch=True).cells
        reference = run_grid(grid, workers=1, batch=False).cells
        assert len(batched) == len(reference)
        for fast, slow in zip(batched, reference):
            assert _strip_timing(fast) == _strip_timing(slow)

    def test_warm_cache_hits_every_cell(self, tmp_path):
        grid = estimator_grid()
        run_grid(grid, cache_dir=tmp_path, batch=True)
        warm = run_grid(grid, cache_dir=tmp_path, batch=True).cells
        assert all(cell.cache_hit for cell in warm)

    def test_batched_warms_the_per_cell_path(self, tmp_path):
        """Batch and reference paths share cache keys in both directions."""
        grid = estimator_grid(sizes=(10,))
        cold = run_grid(grid, cache_dir=tmp_path, batch=True).cells
        warm = run_grid(grid, cache_dir=tmp_path, batch=False).cells
        assert all(cell.cache_hit for cell in warm)
        for fast, slow in zip(cold, warm):
            assert fast.throughput == slow.throughput

    def test_progress_fires_once_per_cell(self):
        grid = estimator_grid(sizes=(10,))
        seen = []
        run_grid(
            grid,
            batch=True,
            progress=lambda done, total, cell: seen.append(
                (done, total, cell.scenario)
            ),
        )
        assert [done for done, _, _ in seen] == list(
            range(1, len(seen) + 1)
        )
        assert len(seen) == len(list(grid.cells()))
