"""Sweep engine: cached evaluation, serial/parallel equivalence, artifacts."""

from __future__ import annotations

import csv
import json

import pytest

from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.solvers import SolverConfig
from repro.pipeline.cache import ResultCache
from repro.pipeline.engine import evaluate_cell, evaluate_throughput, run_grid
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic


def small_grid(**overrides) -> ScenarioGrid:
    kwargs = dict(
        name="engine-test",
        topologies=(
            TopologySpec.make("rrg", network_degree=4, servers_per_switch=2),
        ),
        traffics=(TrafficSpec.make("permutation"),),
        solvers=(SolverConfig("edge_lp"), SolverConfig("ecmp")),
        sizes=(8, 10),
        seeds=2,
    )
    kwargs.update(overrides)
    return ScenarioGrid(**kwargs)


@pytest.fixture
def instance():
    topo = random_regular_topology(10, 4, servers_per_switch=2, seed=3)
    traffic = random_permutation_traffic(topo, seed=4)
    return topo, traffic


class TestEvaluateThroughput:
    def test_matches_direct_solve(self, instance):
        topo, traffic = instance
        direct = max_concurrent_flow(topo, traffic)
        via = evaluate_throughput(topo, traffic, cache=False)
        assert via.throughput == pytest.approx(direct.throughput)

    def test_cache_round_trip(self, tmp_path, instance):
        topo, traffic = instance
        cache = ResultCache(tmp_path)
        first = evaluate_throughput(topo, traffic, cache=cache)
        assert cache.misses == 1
        second = evaluate_throughput(topo, traffic, cache=cache)
        assert cache.hits == 1
        assert second.throughput == first.throughput
        assert second.arc_capacities == first.arc_capacities

    def test_cache_distinguishes_solver_options(self, tmp_path, instance):
        topo, traffic = instance
        cache = ResultCache(tmp_path)
        k1 = evaluate_throughput(topo, traffic, solver="path_lp", cache=cache, k=1)
        k8 = evaluate_throughput(topo, traffic, solver="path_lp", cache=cache, k=8)
        assert cache.hits == 0
        assert k1.throughput <= k8.throughput + 1e-9

    def test_env_default_cache(self, tmp_path, monkeypatch, instance):
        topo, traffic = instance
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        evaluate_throughput(topo, traffic)
        assert len(ResultCache(tmp_path)) == 1

    def test_cache_true_uses_env_default(self, tmp_path, monkeypatch, instance):
        topo, traffic = instance
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        evaluate_throughput(topo, traffic, cache=True)
        assert len(ResultCache(tmp_path)) == 1
        # With no env var, cache=True degrades to an uncached solve.
        monkeypatch.delenv("REPRO_CACHE_DIR")
        result = evaluate_throughput(topo, traffic, cache=True)
        assert result.throughput > 0


class TestEvaluateCell:
    def test_cell_result_fields(self, tmp_path):
        cell = small_grid().cells()[0]
        result = evaluate_cell(cell, cache=ResultCache(tmp_path))
        assert result.throughput > 0
        assert result.num_switches == 8
        assert not result.cache_hit
        assert len(result.key) == 64
        again = evaluate_cell(cell, cache=ResultCache(tmp_path))
        assert again.cache_hit
        assert again.throughput == result.throughput

    def test_row_is_flat(self):
        cell = small_grid().cells()[0]
        result = evaluate_cell(cell)
        row = result.row()
        assert set(row) == set(result.FIELDS)


class TestRunGrid:
    def test_serial_results_deterministic(self):
        a = run_grid(small_grid())
        b = run_grid(small_grid())
        assert [c.throughput for c in a.cells] == [c.throughput for c in b.cells]

    def test_parallel_matches_serial(self):
        serial = run_grid(small_grid(), workers=1)
        parallel = run_grid(small_grid(), workers=2)
        assert [c.throughput for c in serial.cells] == [
            c.throughput for c in parallel.cells
        ]

    def test_warm_cache_hits_every_cell(self, tmp_path):
        cold = run_grid(small_grid(), cache_dir=str(tmp_path))
        warm = run_grid(small_grid(), cache_dir=str(tmp_path))
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(warm.cells)
        assert [c.throughput for c in cold.cells] == [
            c.throughput for c in warm.cells
        ]

    def test_cache_shared_across_solver_agnostic_axes(self, tmp_path):
        # Same (topology, traffic, solver) content from a differently
        # *named* grid still hits: the cache is content-addressed.
        run_grid(small_grid(), cache_dir=str(tmp_path))
        renamed = run_grid(
            small_grid(name="other-name"), cache_dir=str(tmp_path)
        )
        assert renamed.cache_hits == len(renamed.cells)

    def test_progress_callback(self):
        seen = []
        run_grid(
            small_grid(seeds=1, sizes=(8,)),
            progress=lambda done, total, cell: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_workers_validated(self):
        with pytest.raises(Exception):
            run_grid(small_grid(), workers=0)


class TestArtifacts:
    def test_json_artifact(self, tmp_path):
        sweep = run_grid(small_grid(seeds=1))
        path = tmp_path / "sweep.json"
        sweep.write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["grid"]["name"] == "engine-test"
        assert len(payload["cells"]) == len(sweep.cells)
        assert payload["summary"]
        restored = ScenarioGrid.from_dict(payload["grid"])
        assert restored == sweep.grid

    def test_csv_artifact(self, tmp_path):
        sweep = run_grid(small_grid(seeds=1))
        path = tmp_path / "sweep.csv"
        sweep.write_csv(str(path))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(sweep.cells)
        assert float(rows[0]["throughput"]) == pytest.approx(
            sweep.cells[0].throughput
        )

    def test_summary_table_renders(self):
        sweep = run_grid(small_grid(seeds=1))
        table = sweep.to_table()
        assert "engine-test" in table
        assert "edge_lp" in table

    def test_mean_series_aggregates_replicates(self):
        sweep = run_grid(small_grid())
        for entry in sweep.mean_series():
            assert entry["replicates"] == 2
