"""Tests for the network analysis report."""

from __future__ import annotations

import pytest

from repro.analysis.report import analyze_network
from repro.topology.random_regular import random_regular_topology
from repro.topology.two_cluster import two_cluster_random_topology
from repro.traffic.permutation import random_permutation_traffic


class TestStructureOnly:
    def test_regular_graph_gets_bounds(self, small_rrg):
        analysis = analyze_network(small_rrg, traffic=None)
        assert analysis.is_regular
        assert analysis.regular_degree == 4
        assert analysis.aspl_bound is not None
        assert analysis.aspl >= analysis.aspl_bound - 1e-9
        assert analysis.throughput is None

    def test_irregular_graph_skips_bounds(self, small_two_cluster):
        analysis = analyze_network(small_two_cluster, traffic=None)
        assert not analysis.is_regular
        assert analysis.aspl_bound is None

    def test_text_render(self, small_rrg):
        text = analyze_network(small_rrg, traffic=None).to_text()
        assert "structure" in text
        assert "ASPL bound" in text


class TestWithWorkload:
    def test_permutation_shorthand(self, small_rrg):
        analysis = analyze_network(small_rrg, traffic="permutation", seed=1)
        assert analysis.throughput is not None and analysis.throughput > 0
        assert analysis.bound_ratio is not None
        assert 0 < analysis.bound_ratio <= 1.0 + 1e-9
        assert analysis.decomposition is not None
        assert analysis.saturated_arcs >= 1  # something binds at optimum

    def test_explicit_traffic_matrix(self, small_rrg):
        traffic = random_permutation_traffic(small_rrg, seed=2)
        analysis = analyze_network(small_rrg, traffic=traffic)
        assert analysis.traffic_name == traffic.name

    def test_reuses_given_result(self, small_rrg):
        from repro.flow.edge_lp import max_concurrent_flow

        traffic = random_permutation_traffic(small_rrg, seed=3)
        result = max_concurrent_flow(small_rrg, traffic)
        analysis = analyze_network(small_rrg, traffic=traffic, result=result)
        assert analysis.throughput == result.throughput

    def test_bottleneck_localization_in_starved_cluster(self):
        topo = two_cluster_random_topology(
            4, 6, 8, 3,
            servers_per_large=4,
            servers_per_small=2,
            cross_links=3,
            seed=4,
        )
        analysis = analyze_network(topo, traffic="permutation", seed=5)
        assert analysis.bottleneck_group == "large-small"
        text = analysis.to_text()
        assert "<-- bottleneck" in text

    def test_unknown_shorthand_rejected(self, small_rrg):
        from repro.exceptions import TrafficError

        with pytest.raises(TrafficError, match="unknown traffic model"):
            analyze_network(small_rrg, traffic="all-the-things")

    def test_registry_shorthands(self, small_rrg):
        analysis = analyze_network(small_rrg, traffic="gravity")
        assert analysis.traffic_name == "gravity"
        assert analysis.throughput is not None


class TestCliIntegration:
    def test_analyze_command(self, tmp_path, capsys):
        from repro.experiments.runner import main
        from repro.topology.serialization import save_topology

        topo = random_regular_topology(10, 4, servers_per_switch=2, seed=6)
        path = str(tmp_path / "t.json")
        save_topology(topo, path)
        assert main(["analyze", path, "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "network analysis" in out
        assert "throughput" in out

    def test_analyze_structure_only(self, tmp_path, capsys):
        from repro.experiments.runner import main
        from repro.topology.serialization import save_topology

        topo = random_regular_topology(10, 4, seed=7)
        path = str(tmp_path / "t.json")
        save_topology(topo, path)
        assert main(["analyze", path, "--traffic", "none"]) == 0
        out = capsys.readouterr().out
        assert "throughput" not in out
