"""Fluid core: water-filling, split balancing, and feasibility."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro.exceptions import FlowError
from repro.fidelity.fluid import (
    FluidFlow,
    balance_splits,
    simulate_fluid,
    waterfill_rates,
)
from repro.flow.edge_lp import max_concurrent_flow
from repro.topology.base import Topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic


def _incidence(rows, cols, num_arcs, num_subflows):
    return csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(num_arcs, num_subflows)
    )


class TestWaterfill:
    def test_equal_share_on_one_arc(self):
        inc = _incidence([0, 0], [0, 1], 1, 2)
        rates, iterations = waterfill_rates(inc, [1.0])
        assert rates == pytest.approx([0.5, 0.5])
        assert iterations >= 1

    def test_weighted_share_follows_speeds(self):
        inc = _incidence([0, 0], [0, 1], 1, 2)
        rates, _ = waterfill_rates(inc, [1.0], speeds=[1.0, 3.0])
        assert rates == pytest.approx([0.25, 0.75])

    def test_max_min_refills_after_freeze(self):
        # Subflows 0,1 share arc 0 (cap 1); subflow 1 alone uses arc 1
        # (cap 0.25) and freezes early, leaving more of arc 0 for 0.
        inc = _incidence([0, 0, 1], [0, 1, 1], 2, 2)
        rates, _ = waterfill_rates(inc, [1.0, 0.25])
        assert rates == pytest.approx([0.75, 0.25])

    def test_loads_never_exceed_capacity(self):
        rng = np.random.default_rng(7)
        num_arcs, num_subflows = 20, 50
        rows = rng.integers(num_arcs, size=3 * num_subflows)
        cols = np.repeat(np.arange(num_subflows), 3)
        inc = _incidence(list(rows), list(cols), num_arcs, num_subflows)
        inc.sum_duplicates()
        caps = rng.uniform(0.5, 2.0, size=num_arcs)
        rates, _ = waterfill_rates(inc, caps)
        loads = inc @ rates
        assert (loads <= caps * (1 + 1e-9) + 1e-9).all()
        assert (rates >= 0).all()
        # Max-min: every subflow is blocked by some saturated arc.
        saturated = loads >= caps - 1e-6
        blocked = inc.T @ saturated.astype(float)
        assert (blocked > 0).all()

    def test_rejects_bad_inputs(self):
        inc = _incidence([0], [0], 1, 1)
        with pytest.raises(FlowError):
            waterfill_rates(inc, [0.0])
        with pytest.raises(FlowError):
            waterfill_rates(inc, [1.0], speeds=[0.0])
        empty = _incidence([], [], 1, 2)
        with pytest.raises(FlowError):
            waterfill_rates(empty, [1.0])


class TestBalanceSplits:
    def test_shifts_mass_off_congested_arc(self):
        # Flow 0 has two single-arc paths; flow 1 is pinned to arc 0.
        # Balancing should move flow 0 mostly onto arc 1.
        inc = _incidence([0, 1, 0], [0, 1, 2], 2, 3)
        split = balance_splits(
            inc, [1.0, 1.0], [0, 0, 1], [1.0, 1.0], rounds=200
        )
        assert split[1] > 0.9  # flow 0's share on the empty arc
        assert split[0] + split[1] == pytest.approx(1.0)
        assert split[2] == pytest.approx(1.0)  # single-path flow untouched

    def test_zero_rounds_returns_equal_split(self):
        inc = _incidence([0, 1], [0, 1], 2, 2)
        split = balance_splits(inc, [1.0, 1.0], [0, 0], [1.0], rounds=0)
        assert split == pytest.approx([0.5, 0.5])

    def test_more_rounds_never_worse(self):
        rng = np.random.default_rng(11)
        num_arcs, num_flows, per_flow = 12, 8, 3
        rows, cols, sub_flow = [], [], []
        sub = 0
        for f in range(num_flows):
            for _ in range(per_flow):
                for arc in rng.choice(num_arcs, size=2, replace=False):
                    rows.append(int(arc))
                    cols.append(sub)
                sub_flow.append(f)
                sub += 1
        inc = _incidence(rows, cols, num_arcs, sub)
        caps = rng.uniform(0.5, 1.5, size=num_arcs)
        weights = np.ones(num_flows)

        def peak(rounds):
            split = balance_splits(inc, caps, sub_flow, weights, rounds=rounds)
            return float(((inc @ split) / caps).max())

        assert peak(400) <= peak(50) + 1e-12  # best-so-far is monotone


class TestSimulateFluid:
    def _line_topo(self):
        topo = Topology("line")
        for name in ("a", "b", "c"):
            topo.add_switch(name, servers=1)
        topo.add_link("a", "b", capacity=1.0)
        topo.add_link("b", "c", capacity=1.0)
        return topo

    def test_single_flow_capped_by_nic(self):
        topo = self._line_topo()
        flows = [FluidFlow(pair=("a", "c"), weight=1.0, paths=(("a", "b", "c"),))]
        capped = simulate_fluid(topo, flows, server_capacity=0.5)
        assert capped.throughput == pytest.approx(0.5)
        free = simulate_fluid(topo, flows, server_capacity=None)
        assert free.throughput == pytest.approx(1.0)

    def test_arc_flows_are_feasible(self):
        topo = self._line_topo()
        flows = [
            FluidFlow(pair=("a", "c"), weight=1.0, paths=(("a", "b", "c"),)),
            FluidFlow(pair=("b", "c"), weight=1.0, paths=(("b", "c"),)),
        ]
        outcome = simulate_fluid(topo, flows, server_capacity=None)
        for arc, load in outcome.arc_flows.items():
            assert load <= outcome.arc_capacities[arc] * (1 + 1e-9)
        # Both flows squeeze through (b, c): 0.5 each.
        assert outcome.throughput == pytest.approx(0.5)
        assert outcome.flow_rates == pytest.approx([0.5, 0.5])

    def test_never_exceeds_exact_lp(self):
        topo = random_regular_topology(10, 4, servers_per_switch=2, seed=5)
        traffic = random_permutation_traffic(topo, seed=6)
        exact = max_concurrent_flow(topo, traffic).throughput
        from repro.fidelity.routes import route_set_for

        routes = route_set_for(
            topo, traffic.demands, mode="ksp", k=4, method="yen"
        )
        flows = [
            FluidFlow(pair=pair, weight=traffic.demands[pair], paths=group)
            for pair, group in zip(routes.pairs, routes.paths)
        ]
        for rounds in (0, 150):
            outcome = simulate_fluid(
                topo, flows, server_capacity=None, balance_rounds=rounds
            )
            assert 0 < outcome.throughput <= exact * (1 + 1e-6)

    def test_rejects_bad_flows(self):
        topo = self._line_topo()
        with pytest.raises(FlowError):
            simulate_fluid(topo, [])
        with pytest.raises(FlowError):
            simulate_fluid(
                topo,
                [FluidFlow(pair=("a", "c"), weight=0.0, paths=(("a", "c"),))],
            )
        with pytest.raises(FlowError):
            simulate_fluid(
                topo, [FluidFlow(pair=("a", "c"), weight=1.0, paths=())]
            )
        with pytest.raises(FlowError):
            simulate_fluid(
                topo,
                [FluidFlow(pair=("a", "c"), weight=1.0, paths=(("a", "c"),))],
            )
        with pytest.raises(FlowError):
            simulate_fluid(
                topo,
                [FluidFlow(pair=("a", "b"), weight=1.0, paths=(("a", "b"),))],
                server_capacity=0.0,
            )
