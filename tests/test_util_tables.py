"""Tests for plain-text table rendering."""

from __future__ import annotations

import pytest

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["x", "y"], [[1, 0.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0].startswith("x")
        assert "0.5000" in text
        assert "0.2500" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_non_float_cells_pass_through(self):
        text = format_table(["k", "v"], [["name", "-"]])
        assert "name" in text
        assert "-" in text

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_format="{:.2f}")
        assert "0.12" in text
        assert "0.1235" not in text


class TestFormatSeries:
    def test_merges_x_axes(self):
        text = format_series(
            "x",
            {"a": {1.0: 0.1, 2.0: 0.2}, "b": {2.0: 0.9}},
        )
        lines = text.splitlines()
        assert lines[0].split()[0] == "x"
        assert any("-" in line for line in lines[2:])  # missing point marker

    def test_empty_series_render_headers(self):
        text = format_series("x", {"a": {}})
        assert "a" in text.splitlines()[0]
