"""Hypothesis properties of the route-set enumeration engines.

For every sampled instance: paths are simple and valid, ECMP paths are
exactly shortest with hash weights summing to one, and Yen's lengths are
non-decreasing both within a set and as ``k`` grows.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fidelity.routes import compute_route_set
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic

_instances = st.tuples(
    st.integers(min_value=6, max_value=14),      # switches
    st.integers(min_value=3, max_value=5),       # degree
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=1, max_value=6),       # k
)


def _build(params):
    n, r, seed, k = params
    if r >= n:
        r = n - 1
    topo = random_regular_topology(n, r, servers_per_switch=2, seed=seed)
    traffic = random_permutation_traffic(topo, seed=seed + 1)
    return topo, tuple(traffic.demands), k


class TestRouteSetProperties:
    @given(_instances)
    @settings(max_examples=15, deadline=None)
    def test_paths_simple_valid_and_bounded(self, params):
        topo, pairs, k = _build(params)
        for mode, method in (
            ("ecmp", "dag"), ("ecmp", "enum"), ("ksp", "yen"), ("ksp", "tree")
        ):
            routes = compute_route_set(
                topo, pairs, mode=mode, k=k, method=method
            )
            for (u, v), group in zip(routes.pairs, routes.paths):
                assert 1 <= len(group) <= k
                for path in group:
                    assert path[0] == u and path[-1] == v
                    assert len(set(path)) == len(path)
                    assert all(
                        topo.graph.has_edge(a, b)
                        for a, b in zip(path[:-1], path[1:])
                    )

    @given(_instances)
    @settings(max_examples=10, deadline=None)
    def test_ecmp_paths_are_shortest_with_unit_weights(self, params):
        topo, pairs, k = _build(params)
        routes = compute_route_set(topo, pairs, mode="ecmp", k=k)
        lengths = dict(nx.all_pairs_shortest_path_length(topo.graph))
        for (u, v), group, weights in zip(
            routes.pairs, routes.paths, routes.weights
        ):
            assert abs(sum(weights) - 1.0) < 1e-9
            assert all(w > 0 for w in weights)
            for path in group:
                assert len(path) - 1 == lengths[u][v]

    @given(_instances)
    @settings(max_examples=10, deadline=None)
    def test_yen_lengths_non_decreasing_in_k(self, params):
        topo, pairs, k = _build(params)
        small = compute_route_set(topo, pairs, mode="ksp", k=k, method="yen")
        large = compute_route_set(
            topo, pairs, mode="ksp", k=k + 2, method="yen"
        )
        for pair in small.pairs:
            a = small.paths_for(*pair)
            b = large.paths_for(*pair)
            assert b[: len(a)] == a  # growing k only appends
            blens = [len(p) for p in b]
            assert blens == sorted(blens)
