"""Packet-simulator adapter and the routing satellites around it."""

from __future__ import annotations

import pytest

from repro.exceptions import EventLimitError, FlowError, SimulationError
from repro.fidelity.adapter import PACKET_METRICS, sim_packet
from repro.simulation.routing import (
    ECMP_POOL_LIMIT,
    host_paths_for_pair,
    route_table_for_traffic,
)
from repro.simulation.simulator import PacketLevelSimulator, SimulationConfig
from repro.topology.base import Topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import as_rng


@pytest.fixture(scope="module")
def instance():
    topo = random_regular_topology(8, 3, servers_per_switch=2, seed=2)
    traffic = random_permutation_traffic(topo, seed=3)
    return topo, traffic


FAST = {"duration": 60.0, "warmup": 20.0}


class TestSimPacket:
    def test_estimate_result_shape(self, instance):
        topo, traffic = instance
        result = sim_packet(topo, traffic, **FAST)
        assert result.is_estimate
        assert not result.exact
        assert result.solver == "sim-packet-min"
        assert 0 < result.throughput
        assert result.arc_flows

    def test_deterministic_across_calls(self, instance):
        topo, traffic = instance
        a = sim_packet(topo, traffic, **FAST)
        b = sim_packet(topo, traffic, **FAST)
        assert a.throughput == b.throughput

    def test_metric_validation(self, instance):
        topo, traffic = instance
        assert set(PACKET_METRICS) == {"min", "mean"}
        with pytest.raises(FlowError):
            sim_packet(topo, traffic, metric="median", **FAST)

    def test_requires_server_traffic(self, instance):
        topo, _ = instance
        from repro.traffic.base import TrafficMatrix

        switch_only = TrafficMatrix(
            name="switch-only",
            demands={(topo.switches[0], topo.switches[1]): 1.0},
        )
        with pytest.raises(FlowError):
            sim_packet(topo, switch_only, **FAST)

    def test_drop_policy_on_split_fabric(self):
        topo = Topology("split")
        for name in ("a", "b", "c", "d"):
            topo.add_switch(name, servers=1)
        topo.add_link("a", "b")
        topo.add_link("c", "d")
        traffic = random_permutation_traffic(topo, seed=1)
        with pytest.raises(FlowError):
            sim_packet(topo, traffic, **FAST)
        result = sim_packet(topo, traffic, unreachable="drop", **FAST)
        assert result.dropped_pairs
        assert result.throughput > 0


class TestRouteTableSatellite:
    def test_k_shortest_paths_match_per_flow_computation(self, instance):
        topo, traffic = instance
        table = route_table_for_traffic(
            topo, traffic.server_pairs, num_paths=4, mode="k-shortest"
        )
        for src, dst in traffic.server_pairs:
            if src[0] == dst[0]:
                continue
            direct = host_paths_for_pair(topo, src, dst, 4, mode="k-shortest")
            via_table = host_paths_for_pair(
                topo, src, dst, 4, mode="k-shortest", route_table=table
            )
            assert via_table == direct

    def test_ecmp_sampling_matches_per_flow_computation(self, instance):
        topo, traffic = instance
        table = route_table_for_traffic(
            topo, traffic.server_pairs, num_paths=4, mode="ecmp"
        )
        assert table.k == ECMP_POOL_LIMIT
        for src, dst in traffic.server_pairs:
            if src[0] == dst[0]:
                continue
            direct = host_paths_for_pair(
                topo, src, dst, 4, mode="ecmp", seed=as_rng(9)
            )
            via_table = host_paths_for_pair(
                topo, src, dst, 4, mode="ecmp", seed=as_rng(9),
                route_table=table,
            )
            assert via_table == direct

    def test_all_local_traffic_returns_none(self):
        topo = Topology("local")
        topo.add_switch("a", servers=2)
        pairs = ((("a", 0), ("a", 1)),)
        assert route_table_for_traffic(topo, pairs, num_paths=2) is None

    def test_unknown_mode_raises(self, instance):
        topo, traffic = instance
        with pytest.raises(SimulationError):
            route_table_for_traffic(
                topo, traffic.server_pairs, num_paths=2, mode="valiant"
            )


class TestEventLimit:
    def test_event_wall_names_the_config_knob(self, instance):
        topo, traffic = instance
        sim = PacketLevelSimulator(
            topo,
            SimulationConfig(duration=200.0, warmup=10.0, max_events=50),
        )
        with pytest.raises(EventLimitError) as excinfo:
            sim.run(traffic)
        message = str(excinfo.value)
        assert "SimulationConfig.max_events" in message
        assert "50" in message

    def test_event_limit_error_is_simulation_error(self):
        assert issubclass(EventLimitError, SimulationError)
