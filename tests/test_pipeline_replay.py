"""Replay pipeline: warm-started timeline evaluation through the job model.

The acceptance contract pinned here: replaying a 100+-step trace builds
far fewer cold LP models than there are steps (one per window, plus
fallback rebuilds), every warm solution matches a cold ``edge_lp`` solve
of the same step's matrix at 1e-9, a warm re-run against the same cache
performs zero cold builds, and interrupted runs resume through the same
manifest machinery grids use.
"""

from __future__ import annotations

import json

import pytest

from repro.estimate.bound import estimate_bound
from repro.exceptions import ExperimentError
from repro.flow import solve_throughput
from repro.flow.solvers import SolverConfig
from repro.pipeline.cache import ResultCache
from repro.pipeline.jobs import ItemState
from repro.pipeline.replay import (
    ReplayJob,
    ReplayPlan,
    evaluate_window,
    resume_replay,
    run_replay,
)
from repro.pipeline.scenario import TopologySpec
from repro.traffic.vdc import vdc_timeline

TOL = 1e-9

SPEC = TopologySpec.make(
    "rrg", num_switches=12, network_degree=4, servers_per_switch=3
)


def _plan(
    steps: int = 24,
    solver: str = "edge_lp",
    window: int = 8,
    seed: int = 13,
    **solver_options,
) -> ReplayPlan:
    topo = SPEC.build(seed=seed)
    timeline = vdc_timeline(
        topo,
        seed=seed,
        steps=steps,
        arrival_rate=1.5,
        mean_vms=4.0,
        mean_duration=6.0,
    )
    return ReplayPlan(
        name=f"test-replay-{solver}",
        topology=SPEC,
        timeline=timeline,
        solver=SolverConfig.make(solver, **solver_options),
        seed=seed,
        window=window,
    )


class TestWarmMatchesCold:
    def test_hundred_step_trace_few_cold_builds(self):
        """The acceptance gate: >= 100 steps, cold builds << steps, 1e-9."""
        plan = _plan(steps=100, window=25)
        result = run_replay(plan)
        assert len(result.cells) == 100
        # One cold build per window at most (no cache: nothing to hit).
        assert result.cold_builds <= 4
        assert result.cold_builds < plan.num_steps
        assert result.cold_builds + result.warm_steps + result.cache_hits == 100

        topo = plan.build_topology()
        series = result.throughput_series()
        for step, matrix in enumerate(plan.timeline.matrices()):
            cold = solve_throughput(topo, matrix, "edge_lp").throughput
            assert series[step] == pytest.approx(cold, abs=TOL)

    def test_bound_solver_warm_path(self):
        plan = _plan(steps=30, solver="estimate_bound", window=30)
        result = run_replay(plan)
        assert result.cold_builds == 1
        assert result.fallback_solves == 0
        topo = plan.build_topology()
        for cell, matrix in zip(result.cells, plan.timeline.matrices()):
            cold = estimate_bound(topo, matrix)
            assert cell.throughput == pytest.approx(cold.throughput, abs=TOL)
            assert cell.is_estimate and not cell.exact

    def test_other_solvers_fall_back_to_per_step_solves(self):
        plan = _plan(steps=6, solver="ecmp", window=6)
        result = run_replay(plan)
        assert result.fallback_solves == 6 and result.cold_builds == 0
        topo = plan.build_topology()
        for cell, matrix in zip(result.cells, plan.timeline.matrices()):
            cold = solve_throughput(topo, matrix, "ecmp").throughput
            assert cell.throughput == pytest.approx(cold, abs=TOL)


class TestCacheAddressing:
    def test_warm_rerun_has_zero_cold_builds(self, tmp_path):
        plan = _plan(steps=20)
        cache_dir = str(tmp_path / "cache")
        first = run_replay(plan, cache_dir=cache_dir)
        assert first.cold_builds >= 1
        second = run_replay(plan, cache_dir=cache_dir)
        assert second.cold_builds == 0
        assert second.warm_steps == 0
        assert second.fallback_solves == 0
        assert second.cache_hits == plan.num_steps
        assert "0 cold builds" in second.summary()
        assert second.throughput_series() == first.throughput_series()

    def test_steps_addressed_by_chained_content(self, tmp_path):
        plan = _plan(steps=12)
        cache = ResultCache(str(tmp_path / "cache"))
        cells = evaluate_window(plan.cells(), cache=cache)
        fps = plan.step_fingerprints()
        assert [cell.traffic_fp for cell in cells] == fps
        # No-op steps (fingerprint equal to predecessor) share the key.
        for prev, cell, fp_prev, fp in zip(cells, cells[1:], fps, fps[1:]):
            assert (cell.key == prev.key) == (fp == fp_prev)

    def test_workers_match_serial(self, tmp_path):
        plan = _plan(steps=16, window=4)
        serial = run_replay(plan)
        parallel = run_replay(plan, workers=2)
        assert parallel.throughput_series() == pytest.approx(
            serial.throughput_series(), abs=TOL
        )


class TestJobModel:
    def test_windows_shard_consecutive_steps(self):
        plan = _plan(steps=10, window=4)
        job = ReplayJob(plan)
        assert [item.indices for item in job.items] == [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9),
        ]

    def test_window_validation(self):
        with pytest.raises(ExperimentError, match="window"):
            _plan(window=0)

    def test_mixed_plans_rejected(self):
        one, two = _plan(steps=3), _plan(steps=3, seed=14)
        with pytest.raises(ExperimentError, match="one replay plan"):
            evaluate_window([one.cells()[0], two.cells()[1]])

    def test_plan_round_trip(self):
        plan = _plan(steps=8)
        clone = ReplayPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone == plan
        assert clone.step_fingerprints() == plan.step_fingerprints()
        with pytest.raises(ExperimentError, match="replay plan"):
            ReplayPlan.from_dict({"name": "x"})

    def test_resume_completed_run_restores_everything(self, tmp_path):
        plan = _plan(steps=12, window=4)
        manifest = tmp_path / "run.json"
        first = run_replay(plan, manifest=str(manifest))
        resumed = resume_replay(str(manifest))
        assert resumed.restored == plan.num_steps
        assert resumed.throughput_series() == first.throughput_series()
        assert resumed.mode_counts()["restored"] == plan.num_steps

    def test_resume_after_interruption_reruns_missing_window(self, tmp_path):
        plan = _plan(steps=12, window=4)
        manifest = tmp_path / "run.json"
        cache_dir = str(tmp_path / "cache")
        first = run_replay(plan, cache_dir=cache_dir, manifest=str(manifest))
        payload = json.loads(manifest.read_text())
        victim = payload["items"][1]
        victim["state"] = ItemState.RUNNING
        for index in victim["indices"]:
            del payload["cells"][str(index)]
        manifest.write_text(json.dumps(payload))

        resumed = resume_replay(str(manifest))
        assert resumed.restored == plan.num_steps - len(victim["indices"])
        # The re-run window answers from the content-addressed cache.
        assert all(
            resumed.cells[index].cache_hit for index in victim["indices"]
        )
        assert resumed.throughput_series() == first.throughput_series()

    def test_replay_mode_survives_the_manifest(self, tmp_path):
        plan = _plan(steps=6, window=6)
        manifest = tmp_path / "run.json"
        first = run_replay(plan, manifest=str(manifest))
        payload = json.loads(manifest.read_text())
        modes = [payload["cells"][str(i)]["replay_mode"] for i in range(6)]
        assert modes == [cell.replay_mode for cell in first.cells]
        restored = resume_replay(str(manifest))
        assert [cell.replay_mode for cell in restored.cells] == modes


class TestResultSurface:
    def test_rows_and_artifacts(self, tmp_path):
        plan = _plan(steps=5, window=5)
        result = run_replay(plan)
        row = result.cells[0].row()
        assert row["traffic"].endswith("@t0")
        assert row["topology"] == SPEC.label()
        # replay_mode is deliberately NOT a sweep CSV column...
        assert "replay_mode" not in row
        result.write_json(str(tmp_path / "replay.json"))
        payload = json.loads((tmp_path / "replay.json").read_text())
        assert payload["cold_builds"] == result.cold_builds
        assert len(payload["throughput"]) == 5
        # ...but the replay CSV carries it per step.
        result.write_csv(str(tmp_path / "replay.csv"))
        header = (tmp_path / "replay.csv").read_text().splitlines()[0]
        assert header.startswith("step,replay_mode,")

    def test_retained_series_normalizes_to_step_zero(self):
        plan = _plan(steps=5, window=5)
        result = run_replay(plan)
        retained = result.retained_series()
        assert retained[0] == pytest.approx(1.0)
        assert len(retained) == 5


class TestCli:
    def test_replay_command_cold_then_warm(self, tmp_path, capsys):
        from repro.experiments.runner import main

        args = [
            "replay",
            "--topology", "rrg",
            "--topo-param", "num_switches=10",
            "--topo-param", "network_degree=4",
            "--topo-param", "servers_per_switch=2",
            "--steps", "8",
            "--timeline-param", "arrival_rate=1.5",
            "--seed", "3",
            "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "8 steps" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 cold builds" in second

    def test_replay_command_reads_traces(self, tmp_path, capsys):
        from repro.experiments.runner import main
        from repro.traffic.timeline import write_trace

        # JSON traces are lossless (CSV cannot carry trailing idle steps).
        plan = _plan(steps=6)
        trace = tmp_path / "trace.json"
        write_trace(plan.timeline, trace)
        assert (
            main(
                [
                    "replay",
                    "--topology", "rrg",
                    "--topo-param", "num_switches=12",
                    "--topo-param", "network_degree=4",
                    "--topo-param", "servers_per_switch=3",
                    "--trace", str(trace),
                    "--seed", "13",
                    "--quiet",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "6 steps" in out
