"""Differential solver matrix: every registered backend vs the exact LP.

One parametrized module covers *all* registered backends — tests iterate
:func:`repro.flow.solvers.available_solvers` and key their assertions off
the backend's registry flags, so a future backend is auto-enrolled the
moment it registers:

- ``exact=True`` backends must reproduce ``edge_lp`` within 1e-6;
- ``estimate=True`` backends must land inside their calibrated error
  band (fit on separate instances of the same family);
- remaining backends are optimizing-but-restricted engines and must
  never exceed the exact optimum.

Backend-specific guarantees ride alongside: ``path_lp`` with a saturating
path budget matches the exact LP, ``approx`` honors its (1 - eps)
factor, ``ecmp`` is a lower bound.
"""

from __future__ import annotations

import pytest

from repro.estimate import calibrate_estimators, within_band
from repro.flow.solvers import available_solvers, get_solver, solve_throughput
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic

#: Instances small enough that every backend (including path_lp with a
#: saturating k) solves in milliseconds. (num_switches, degree, seed)
#: All instances share the calibration family's degree — estimator
#: offsets are family-specific, so the band only claims coverage there.
INSTANCES = [(8, 4, 0), (8, 4, 5), (10, 4, 1), (12, 4, 2)]

#: Options needed for a backend's *tight* guarantee to apply on these
#: instances. Unknown/future backends run with their defaults.
TIGHT_OPTIONS = {
    "path_lp": {"k": 64},  # saturates the simple-path sets at this size
    "sim_packet": {"duration": 120.0, "warmup": 40.0},  # keep packet sims fast
}

#: Family spec matching INSTANCES, used to calibrate estimator bands on
#: disjoint (different-seed) instances of the same sizes.
CALIBRATION_FAMILY = {
    "rrg": {
        "kind": "rrg",
        "params": {"network_degree": 4, "servers_per_switch": 2},
        "size_param": "num_switches",
        "sizes": (8, 10, 12),
    }
}

#: Replicates for the band fit. Spectral ratios swing widely at these
#: tiny sizes (~0.37-0.85 across seeds), so the fit needs enough samples
#: for its observed range to cover fresh instances of the family.
CALIBRATION_REPLICATES = 10


def _build(num_switches: int, degree: int, seed: int):
    topo = random_regular_topology(
        num_switches, degree, servers_per_switch=2, seed=seed
    )
    traffic = random_permutation_traffic(topo, seed=seed + 1)
    return topo, traffic


@pytest.fixture(scope="module")
def estimator_bands():
    """Calibrated bands for every registered estimator backend."""
    estimators = tuple(
        name for name in available_solvers() if get_solver(name).estimate
    )
    if not estimators:
        return {}
    # Calibrate under the same options the matrix runs with — a band only
    # describes the configuration it was fit with.
    table = calibrate_estimators(
        estimators,
        families=CALIBRATION_FAMILY,
        replicates=CALIBRATION_REPLICATES,
        estimator_options={
            name: TIGHT_OPTIONS[name]
            for name in estimators
            if name in TIGHT_OPTIONS
        },
    )
    return {name: table.band("rrg", name) for name in estimators}


@pytest.fixture(scope="module")
def references():
    """Exact LP throughput per instance."""
    return {
        coords: solve_throughput(*_build(*coords), "edge_lp").throughput
        for coords in INSTANCES
    }


@pytest.mark.parametrize("name", available_solvers())
@pytest.mark.parametrize("coords", INSTANCES)
def test_backend_against_exact_lp(name, coords, references, estimator_bands):
    """The one assertion matrix every registered backend must pass."""
    backend = get_solver(name)
    topo, traffic = _build(*coords)
    exact = references[coords]
    options = TIGHT_OPTIONS.get(name, {})
    result = solve_throughput(topo, traffic, name, **options)
    if backend.estimate:
        assert within_band(result.throughput, exact, estimator_bands[name]), (
            name, coords, result.throughput, exact, estimator_bands[name],
        )
    elif backend.exact:
        assert result.throughput == pytest.approx(exact, abs=1e-6)
    else:
        assert result.throughput <= exact * (1 + 1e-6)


@pytest.mark.parametrize("coords", INSTANCES)
def test_path_lp_matches_edge_lp_with_saturating_k(coords, references):
    topo, traffic = _build(*coords)
    restricted = solve_throughput(topo, traffic, "path_lp", k=64).throughput
    assert restricted == pytest.approx(references[coords], abs=1e-6)


@pytest.mark.parametrize("coords", INSTANCES)
@pytest.mark.parametrize("epsilon", [0.05, 0.1])
def test_approx_within_its_guarantee(coords, references, epsilon):
    topo, traffic = _build(*coords)
    approx = solve_throughput(
        topo, traffic, "approx", epsilon=epsilon
    ).throughput
    exact = references[coords]
    assert approx <= exact * (1 + 1e-6)
    assert approx >= (1 - epsilon) * exact * (1 - 1e-6)


@pytest.mark.parametrize("coords", INSTANCES)
def test_ecmp_lower_bounds_exact(coords, references):
    topo, traffic = _build(*coords)
    ecmp = solve_throughput(topo, traffic, "ecmp").throughput
    assert 0 < ecmp <= references[coords] * (1 + 1e-6)


def test_matrix_covers_every_registered_backend():
    """Guard: the parametrization source really is the live registry."""
    assert set(available_solvers()) >= {
        "edge_lp", "path_lp", "approx", "ecmp",
        "estimate_bound", "estimate_cut", "estimate_spectral",
        "estimate_sampled_lp",
        "sim_ecmp", "sim_mptcp", "sim_packet",
    }
