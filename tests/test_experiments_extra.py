"""Integration tests for the extension studies."""

from __future__ import annotations

import pytest

from repro.experiments.extra import (
    run_extra_cabling,
    run_extra_latency,
    run_extra_routing,
)


@pytest.mark.slow
class TestExtraRouting:
    def test_policy_ordering(self):
        result = run_extra_routing(
            num_switches=12, degrees=(4, 6), servers_per_switch=3,
            runs=2, seed=0,
        )
        multipath = result.get_series("8-shortest multipath")
        ecmp = result.get_series("ECMP (per-hop)")
        for x in multipath.xs():
            assert multipath.y_at(x) <= 1.0 + 1e-9
            assert ecmp.y_at(x) <= 1.0 + 1e-9
            # Multipath recovers more of the optimum than ECMP.
            assert multipath.y_at(x) >= ecmp.y_at(x) - 0.05
        # Multipath is near-optimal on random graphs.
        assert min(multipath.ys()) >= 0.85


@pytest.mark.slow
class TestExtraCabling:
    def test_cable_monotone_and_plateau(self):
        result = run_extra_cabling(
            num_per_cluster=6, network_ports=6, servers_per_switch=3,
            fractions=(0.3, 0.6, 1.0), runs=2, seed=1,
        )
        cable = result.get_series("Mean cable length")
        throughput = result.get_series("Throughput")
        # Cable length grows with cross-cluster share under the clustered
        # layout.
        assert cable.ys() == sorted(cable.ys())
        # Moderate bias keeps most of the unbiased throughput.
        assert throughput.y_at(0.6) >= 0.55 * throughput.y_at(1.0)


@pytest.mark.slow
class TestExtraLatency:
    def test_latency_grows_with_load(self):
        result = run_extra_latency(
            num_switches=8, degree=4, loads=(2, 8),
            duration=150.0, warmup=60.0, runs=2, seed=2,
        )
        p50 = result.get_series("p50 delay")
        p99 = result.get_series("p99 delay")
        assert p50.y_at(8) > p50.y_at(2)
        for x in p50.xs():
            assert p99.y_at(x) >= p50.y_at(x)
