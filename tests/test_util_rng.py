"""Tests for RNG plumbing: seeding conventions and derangements."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import (
    as_rng,
    child_rngs,
    random_derangement,
    sample_pairs_without_replacement,
    spawn_seeds,
)


class TestAsRng:
    def test_accepts_int(self):
        rng = as_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_accepts_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_passes_generator_through(self):
        rng = np.random.default_rng(1)
        assert as_rng(rng) is rng

    def test_accepts_seed_sequence(self):
        rng = as_rng(np.random.SeedSequence(5))
        assert isinstance(rng, np.random.Generator)

    def test_same_seed_same_stream(self):
        a = as_rng(9).integers(1_000_000, size=10)
        b = as_rng(9).integers(1_000_000, size=10)
        assert np.array_equal(a, b)


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_deterministic(self):
        first = [np.random.default_rng(s).integers(1000) for s in spawn_seeds(3, 4)]
        second = [np.random.default_rng(s).integers(1000) for s in spawn_seeds(3, 4)]
        assert first == second

    def test_children_differ(self):
        values = [np.random.default_rng(s).integers(10**9) for s in spawn_seeds(3, 8)]
        assert len(set(values)) > 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            spawn_seeds(0, -1)

    def test_accepts_generator(self):
        rng = np.random.default_rng(2)
        seeds = spawn_seeds(rng, 3)
        assert len(seeds) == 3

    def test_generator_advances(self):
        rng = np.random.default_rng(2)
        first = spawn_seeds(rng, 1)
        second = spawn_seeds(rng, 1)
        a = np.random.default_rng(first[0]).integers(10**9)
        b = np.random.default_rng(second[0]).integers(10**9)
        assert a != b

    def test_child_rngs_are_generators(self):
        for rng in child_rngs(11, 3):
            assert isinstance(rng, np.random.Generator)


class TestRandomDerangement:
    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_no_fixed_points_and_is_permutation(self, n):
        perm = random_derangement(np.random.default_rng(0), n)
        assert not np.any(perm == np.arange(n))
        assert sorted(perm.tolist()) == list(range(n))

    def test_zero_is_empty(self):
        assert len(random_derangement(np.random.default_rng(0), 0)) == 0

    def test_one_rejected(self):
        with pytest.raises(ValueError, match="derangement"):
            random_derangement(np.random.default_rng(0), 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            random_derangement(np.random.default_rng(0), -2)


class TestSamplePairs:
    def test_even_input_pairs_everything(self):
        pairs = sample_pairs_without_replacement(
            np.random.default_rng(1), range(10)
        )
        flat = [x for pair in pairs for x in pair]
        assert sorted(flat) == list(range(10))

    def test_odd_input_drops_one(self):
        pairs = sample_pairs_without_replacement(
            np.random.default_rng(1), range(7)
        )
        assert len(pairs) == 3
        flat = [x for pair in pairs for x in pair]
        assert len(set(flat)) == 6
