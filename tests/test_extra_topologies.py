"""Tests for BCube, flattened butterfly, and dragonfly baselines."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.metrics.paths import average_shortest_path_length, diameter
from repro.topology.bcube import bcube_topology
from repro.topology.dragonfly import dragonfly_topology
from repro.topology.flattened_butterfly import flattened_butterfly_topology


class TestBcube:
    def test_bcube0_is_star(self):
        topo = bcube_topology(4, k=0)
        # 4 server-hosts + 1 switch.
        assert topo.num_switches == 5
        assert topo.num_servers == 4
        assert topo.num_links == 4

    def test_bcube1_counts(self):
        n, k = 4, 1
        topo = bcube_topology(n, k)
        servers = [v for v in topo.switches if topo.switch_type_of(v) == "server"]
        switches = [v for v in topo.switches if topo.switch_type_of(v) == "switch"]
        assert len(servers) == n ** (k + 1)
        assert len(switches) == (k + 1) * n**k
        # Every server-host has k+1 ports; every switch has n.
        for node in servers:
            assert topo.degree(node) == k + 1
        for node in switches:
            assert topo.degree(node) == n

    def test_connected(self):
        assert bcube_topology(3, 1).is_connected()
        assert bcube_topology(2, 2).is_connected()

    def test_diameter_bound(self):
        # BCube_k diameter is at most 2(k+1) hops in the switch-level view.
        topo = bcube_topology(3, 1)
        assert diameter(topo) <= 4

    def test_small_n_rejected(self):
        with pytest.raises(ValueError, match="n >= 2"):
            bcube_topology(1, 1)

    def test_full_throughput_permutation(self):
        from repro.flow.edge_lp import max_concurrent_flow
        from repro.traffic.permutation import random_permutation_traffic

        topo = bcube_topology(3, 1)
        traffic = random_permutation_traffic(topo, seed=1)
        result = max_concurrent_flow(topo, traffic)
        assert result.throughput >= 1.0 - 1e-6  # BCube is non-blocking-ish


class TestFlattenedButterfly:
    def test_counts_and_degrees(self):
        k, n = 4, 2
        topo = flattened_butterfly_topology(k, n)
        assert topo.num_switches == k**n
        expected_degree = n * (k - 1)
        assert all(topo.degree(v) == expected_degree for v in topo.switches)

    def test_one_dimension_is_complete_graph(self):
        topo = flattened_butterfly_topology(5, dimensions=1)
        assert topo.num_links == 10
        assert average_shortest_path_length(topo) == pytest.approx(1.0)

    def test_diameter_equals_dimensions(self):
        assert diameter(flattened_butterfly_topology(3, 2)) == 2
        assert diameter(flattened_butterfly_topology(3, 3)) == 3

    def test_k_below_two_rejected(self):
        with pytest.raises(TopologyError, match="k >= 2"):
            flattened_butterfly_topology(1, 2)

    def test_servers_attached(self):
        topo = flattened_butterfly_topology(3, 2, servers_per_switch=2)
        assert topo.num_servers == 18


class TestDragonfly:
    def test_balanced_structure(self):
        a, p, h = 3, 2, 1
        topo = dragonfly_topology(a, p, h)
        g = a * h + 1
        assert topo.num_switches == g * a
        assert topo.num_servers == g * a * p
        assert topo.is_connected()

    def test_router_degree_budget(self):
        a, h = 4, 2
        topo = dragonfly_topology(a, 1, h)
        # Each router: a-1 local plus at most h global ports.
        for v in topo.switches:
            assert topo.degree(v) <= (a - 1) + h

    def test_each_group_pair_linked(self):
        a, h = 3, 1
        topo = dragonfly_topology(a, 1, h)
        g = a * h + 1
        for s in range(g):
            for t in range(s + 1, g):
                crossing = [
                    link
                    for link in topo.links
                    if {link.u[0], link.v[0]} == {s, t}
                ]
                assert len(crossing) == 1

    def test_intra_group_complete(self):
        topo = dragonfly_topology(4, 1, 1)
        for i in range(4):
            for j in range(i + 1, 4):
                assert topo.has_link((0, i), (0, j))

    def test_too_many_groups_rejected(self):
        with pytest.raises(TopologyError, match="global ports"):
            dragonfly_topology(2, 1, 1, num_groups=5)

    def test_single_group_rejected(self):
        with pytest.raises(TopologyError, match="2 groups"):
            dragonfly_topology(3, 1, 1, num_groups=1)

    def test_registry_exposes_new_kinds(self):
        from repro.topology.registry import available_topologies

        names = available_topologies()
        for kind in ("bcube", "flattened-butterfly", "dragonfly"):
            assert kind in names
