"""Tests for the experiment registry and the CLI runner."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.registry import (
    available_experiments,
    describe_experiments,
    run_experiment,
)
from repro.experiments.runner import main

ALL_FIGURE_IDS = {
    "fig1a", "fig1b", "fig2a", "fig2b", "fig3",
    "fig4a", "fig4b", "fig4c", "fig5",
    "fig6a", "fig6b", "fig6c", "fig7a", "fig7b",
    "fig8a", "fig8b", "fig8c", "fig9a", "fig9b", "fig9c",
    "fig10a", "fig10b", "fig11", "fig12a", "fig12b", "fig12c", "fig13",
}
EXTRA_IDS = {
    "design",
    "extra-routing",
    "extra-cabling",
    "extra-latency",
    "fidelity",
    "replay",
    "resilience",
    "scale",
    "growth",
    "search1",
    "search2",
}


class TestRegistry:
    def test_every_paper_figure_registered(self):
        assert set(available_experiments()) == ALL_FIGURE_IDS | EXTRA_IDS

    def test_descriptions_nonempty(self):
        for eid, description in describe_experiments():
            assert eid in ALL_FIGURE_IDS | EXTRA_IDS
            assert description

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("fig99")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError, match="scale"):
            run_experiment("fig3", scale="galactic")

    def test_run_with_overrides(self):
        result = run_experiment("fig3", sizes=(17, 53), runs=1, seed=0)
        assert result.experiment_id == "fig3"
        assert result.metadata["runs"] == 1

    def test_paper_scale_applies_kwargs(self):
        # fig1b paper scale uses the full degree sweep; just check the
        # parameters flow through without running the heavy cases.
        result = run_experiment(
            "fig1b", scale="paper", degrees=(4, 6), runs=1, seed=0
        )
        assert result.metadata["num_switches"] == 40


class TestRunnerCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12a" in out

    def test_run_fast_experiment(self, capsys):
        code = main(["run", "fig3", "--runs", "1", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "Observed ASPL" in out

    def test_run_unknown_id(self, capsys):
        assert main(["run", "figZZ"]) == 2
        err = capsys.readouterr().err
        assert "figZZ" in err

    def test_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "results.txt"
        code = main(
            ["run", "fig3", "--runs", "1", "--seed", "0", "--out", str(out_file)]
        )
        assert code == 0
        assert "fig3" in out_file.read_text()
