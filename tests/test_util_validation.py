"""Tests for argument-validation helpers."""

from __future__ import annotations

import math

import pytest

from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(5, "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int(-3, "x")

    def test_rejects_float(self):
        with pytest.raises(ValueError, match="integer"):
            check_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValueError, match="integer"):
            check_positive_int(True, "x")

    def test_accepts_numpy_like_integral(self):
        import numpy as np

        assert check_positive_int(np.int64(4), "x") == 4


class TestNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_non_negative_int(-1, "x")


class TestPositive:
    def test_accepts_float(self):
        assert check_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive(0.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(math.nan, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive(math.inf, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValueError, match="number"):
            check_positive(True, "x")


class TestNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_non_negative(-0.1, "x")


class TestProbabilityAndFraction:
    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError, match="<= 1"):
            check_probability(1.5, "p")

    def test_fraction_excludes_zero(self):
        assert check_fraction(1.0, "f") == 1.0
        with pytest.raises(ValueError, match="positive"):
            check_fraction(0.0, "f")
        with pytest.raises(ValueError, match="\\(0, 1\\]"):
            check_fraction(1.01, "f")
