"""Direct coverage of the traffic model zoo and its registry.

Checks the invariants the pipeline relies on: demand conservation,
determinism under a fixed seed, and correct switch-level aggregation of
server-level patterns — for gravity, hotspot, stride, and the adversarial
longest-matching generator, plus registry-driven construction.
"""

from __future__ import annotations

import pytest

from repro.exceptions import TrafficError
from repro.metrics.paths import all_pairs_shortest_lengths
from repro.topology.base import Topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.adversarial import longest_matching_traffic
from repro.traffic.gravity import gravity_traffic
from repro.traffic.hotspot import hotspot_traffic
from repro.traffic.registry import (
    available_traffic_models,
    make_traffic,
    register_traffic_model,
    traffic_model_is_deterministic,
)
from repro.traffic.stride import stride_traffic


@pytest.fixture
def rrg():
    return random_regular_topology(10, 4, servers_per_switch=3, seed=5)


@pytest.fixture
def uneven():
    """A path of 4 switches with unequal server populations."""
    topo = Topology("uneven")
    for v, servers in enumerate((1, 3, 0, 2)):
        topo.add_switch(v, servers=servers)
    for u in range(3):
        topo.add_link(u, u + 1)
    return topo


class TestGravity:
    def test_per_source_conservation(self, uneven):
        tm = gravity_traffic(uneven)
        # Every switch originates exactly servers(u) units in total.
        for u in uneven.switches:
            sent = sum(
                units for (src, _), units in tm.demands.items() if src == u
            )
            assert sent == pytest.approx(uneven.servers_at(u))

    def test_serverless_switches_excluded(self, uneven):
        tm = gravity_traffic(uneven)
        for u, v in tm.demands:
            assert uneven.servers_at(u) > 0
            assert uneven.servers_at(v) > 0

    def test_deterministic(self, rrg):
        assert gravity_traffic(rrg).demands == gravity_traffic(rrg).demands

    def test_total_demand(self, rrg):
        tm = gravity_traffic(rrg)
        assert tm.total_demand == pytest.approx(rrg.num_servers)

    def test_needs_two_populated_switches(self):
        topo = Topology("lonely")
        topo.add_switch(0, servers=5)
        topo.add_switch(1, servers=0)
        topo.add_link(0, 1)
        with pytest.raises(TrafficError):
            gravity_traffic(topo)


class TestHotspot:
    def test_deterministic_under_seed(self, rrg):
        a = hotspot_traffic(rrg, num_hotspots=2, seed=11)
        b = hotspot_traffic(rrg, num_hotspots=2, seed=11)
        assert a.demands == b.demands
        assert a.server_pairs == b.server_pairs

    def test_seed_changes_pattern(self, rrg):
        a = hotspot_traffic(rrg, num_hotspots=2, seed=11)
        b = hotspot_traffic(rrg, num_hotspots=2, seed=12)
        assert a.demands != b.demands

    def test_sender_fraction_counts(self, rrg):
        tm = hotspot_traffic(rrg, num_hotspots=1, sender_fraction=0.5, seed=3)
        total = rrg.num_servers
        expected = max(1, round(0.5 * (total - 1)))
        assert tm.num_flows == expected

    def test_all_flows_target_hotspots(self, rrg):
        tm = hotspot_traffic(rrg, num_hotspots=2, seed=7)
        destinations = {dst for _, dst in tm.server_pairs}
        assert len(destinations) <= 2

    def test_aggregation_matches_pairs(self, rrg):
        tm = hotspot_traffic(rrg, num_hotspots=3, seed=9)
        recomputed: dict = {}
        local = 0
        for (su, _), (sv, _) in tm.server_pairs:
            if su == sv:
                local += 1
                continue
            recomputed[(su, sv)] = recomputed.get((su, sv), 0.0) + 1.0
        assert recomputed == tm.demands
        assert local == tm.num_local_flows


class TestStride:
    def test_mapping(self, rrg):
        tm = stride_traffic(rrg, stride=1)
        total = rrg.num_servers
        assert tm.num_flows == total
        # A stride permutation: every server sends once and receives once.
        sources = [src for src, _ in tm.server_pairs]
        destinations = [dst for _, dst in tm.server_pairs]
        assert len(set(sources)) == total
        assert len(set(destinations)) == total

    def test_demand_conservation(self, rrg):
        tm = stride_traffic(rrg, stride=7)
        assert tm.total_demand + tm.num_local_flows == tm.num_flows

    def test_deterministic(self, rrg):
        assert (
            stride_traffic(rrg, stride=4).demands
            == stride_traffic(rrg, stride=4).demands
        )

    def test_degenerate_stride_rejected(self, rrg):
        with pytest.raises(TrafficError, match="multiple"):
            stride_traffic(rrg, stride=rrg.num_servers)


class TestLongestMatching:
    def test_is_permutation(self, rrg):
        tm = longest_matching_traffic(rrg, seed=2)
        sources = [src for src, _ in tm.server_pairs]
        destinations = [dst for _, dst in tm.server_pairs]
        assert len(set(sources)) == rrg.num_servers
        assert len(set(destinations)) == rrg.num_servers
        for src, dst in tm.server_pairs:
            assert src != dst

    def test_deterministic_under_seed(self, rrg):
        a = longest_matching_traffic(rrg, seed=2)
        b = longest_matching_traffic(rrg, seed=2)
        assert a.demands == b.demands

    def test_longer_than_random_on_average(self, rrg):
        distances = all_pairs_shortest_lengths(rrg)

        def mean_hop(tm):
            total = 0.0
            for (su, _), (sv, _) in tm.server_pairs:
                total += distances[su].get(sv, 0)
            return total / len(tm.server_pairs)

        from repro.traffic.permutation import random_permutation_traffic

        adversarial = mean_hop(longest_matching_traffic(rrg, seed=2))
        random_mean = sum(
            mean_hop(random_permutation_traffic(rrg, seed=s)) for s in range(5)
        ) / 5
        assert adversarial >= random_mean


class TestRegistry:
    def test_expected_models_registered(self):
        models = available_traffic_models()
        for name in (
            "permutation",
            "switch-permutation",
            "all-to-all",
            "stride",
            "hotspot",
            "gravity",
            "chunky",
            "longest-matching",
        ):
            assert name in models

    def test_every_model_builds(self, rrg):
        for name in available_traffic_models():
            tm = make_traffic(name, rrg, seed=3)
            assert tm.total_demand > 0

    def test_deterministic_under_seed(self, rrg):
        for name in available_traffic_models():
            a = make_traffic(name, rrg, seed=17)
            b = make_traffic(name, rrg, seed=17)
            assert a.demands == b.demands, name

    def test_deterministic_flag_is_machine_checked(self, rrg):
        """The registry's ``deterministic`` flags match actual behavior.

        A model flagged deterministic must ignore its seed entirely (so
        sweeps can collapse replicates); a model flagged seeded must
        actually vary across seeds for at least some draw.
        """
        assert traffic_model_is_deterministic("all-to-all")
        assert not traffic_model_is_deterministic("permutation")
        for name in available_traffic_models():
            draws = [make_traffic(name, rrg, seed=seed) for seed in range(4)]
            if traffic_model_is_deterministic(name):
                for other in draws[1:]:
                    assert other.demands == draws[0].demands, (
                        f"{name} is flagged deterministic but varies with seed"
                    )
            else:
                assert any(
                    other.demands != draws[0].demands for other in draws[1:]
                ), f"{name} is flagged seeded but never varies with seed"

    def test_params_forwarded(self, rrg):
        tm = make_traffic("stride", rrg, stride=3)
        assert tm.name == "stride-3"
        tm = make_traffic("chunky", rrg, chunky_fraction=1.0, seed=1)
        assert tm.total_demand > 0

    def test_underscore_names_accepted(self, rrg):
        tm = make_traffic("all_to_all", rrg)
        assert tm.name == "all-to-all"

    def test_unknown_model_rejected(self, rrg):
        with pytest.raises(TrafficError, match="unknown traffic model"):
            make_traffic("carrier-pigeon", rrg)

    def test_custom_registration(self, rrg):
        def fixed(topo, seed=None, **params):
            from repro.traffic.base import TrafficMatrix

            switches = [v for v in topo.switches][:2]
            return TrafficMatrix(
                name="fixed",
                demands={(switches[0], switches[1]): 1.0},
                num_flows=1,
            )

        register_traffic_model("fixed-test-model", fixed)
        try:
            tm = make_traffic("fixed-test-model", rrg)
            assert tm.total_demand == 1.0
            with pytest.raises(TrafficError, match="already registered"):
                register_traffic_model("fixed-test-model", fixed)
        finally:
            from repro.traffic import registry

            registry._REGISTRY.pop("fixed-test-model", None)
