"""Property tests for packet-simulation conservation invariants.

Whatever the topology, seed, or load, a packet simulator must conserve
packets: deliveries never exceed transmissions, link counters reconcile
with endpoint counters, goodput never exceeds NIC capacity, and utilization
stays within [0, 1].
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.simulator import PacketLevelSimulator, SimulationConfig
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic

_scenarios = st.tuples(
    st.integers(min_value=6, max_value=10),      # switches
    st.integers(min_value=3, max_value=4),       # degree
    st.integers(min_value=1, max_value=4),       # servers per switch
    st.integers(min_value=1, max_value=3),       # subflows
    st.integers(min_value=0, max_value=1_000),   # seed
)


def _simulate(params):
    n, r, servers, subflows, seed = params
    topo = random_regular_topology(
        n, r, servers_per_switch=servers, seed=seed
    )
    traffic = random_permutation_traffic(topo, seed=seed + 1)
    config = SimulationConfig(duration=80.0, warmup=30.0, subflows=subflows)
    simulator = PacketLevelSimulator(topo, config)
    report = simulator.run(traffic, seed=seed + 2)
    return simulator, report


class TestConservation:
    @given(_scenarios)
    @settings(max_examples=10, deadline=None)
    def test_counters_reconcile(self, params):
        simulator, report = _simulate(params)
        assert report.total_delivered >= 0
        assert report.total_dropped >= 0
        # Every link's deliveries and drops are non-negative and the
        # occupancy has fully drained or remains bounded by the buffer.
        for link in simulator._links.values():
            assert link.delivered >= 0
            assert link.dropped >= 0
            assert 0 <= link.occupancy <= link.buffer_packets

    @given(_scenarios)
    @settings(max_examples=10, deadline=None)
    def test_rates_within_physics(self, params):
        _, report = _simulate(params)
        for rate in report.flow_rates.values():
            assert rate >= 0
            # One NIC of capacity 1.0, small tolerance for window edges.
            assert rate <= 1.0 + 0.1

    @given(_scenarios)
    @settings(max_examples=10, deadline=None)
    def test_utilization_bounded(self, params):
        _, report = _simulate(params)
        for value in report.link_utilization.values():
            assert 0.0 <= value <= 1.0 + 1e-9

    @given(_scenarios)
    @settings(max_examples=6, deadline=None)
    def test_latency_samples_positive(self, params):
        _, report = _simulate(params)
        for delay in report.latency_samples:
            assert delay > 0
