"""End-to-end tests for the Pareto design engine.

Scoped to the small end of the ladder (8-server target, three
generators) so the exact LP stays fast; the CI workflow runs the full
default-catalog study separately.
"""

from __future__ import annotations

import json

import pytest

from repro.design import DesignSpec, default_catalog, dominates, run_design

SPEC = DesignSpec.make(
    budget=20_000.0,
    servers=8,
    replicates=1,
    generators=("rrg", "fat-tree", "matched"),
    exact_limit=60,
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    cache = tmp_path_factory.mktemp("design-cache")
    return run_design(SPEC, cache_dir=str(cache)), str(cache)


class TestRunDesign:
    def test_frontier_nonempty_and_within_budget(self, report):
        result, _ = report
        frontier = result.frontier()
        assert frontier
        for point in frontier:
            assert point.metrics["cost"] <= SPEC.budget
            assert point.metrics["throughput"] > 0

    def test_frontier_flags_match_dominance(self, report):
        result, _ = report
        values = {p.label(): p.values() for p in result.points}
        for point in result.points:
            dominated = any(
                dominates(values[other.label()], values[point.label()])
                for other in result.points
                if other.label() != point.label()
            )
            assert point.on_frontier == (not dominated)

    def test_random_dominates_fat_tree_at_matched_cost(self, report):
        result, _ = report
        dominance = result.dominance()
        assert dominance["confirmed"]
        for pair in dominance["pairs"]:
            assert pair["throughput_gain"] > 0

    def test_exact_solves_below_limit(self, report):
        result, _ = report
        for point in result.points:
            assert point.metrics["solver"] == "edge_lp"
            assert point.metrics["exact"] is True

    def test_cold_run_counts_solves(self, report):
        result, _ = report
        assert result.cold_solves > 0
        assert result.cache_hits == 0

    def test_warm_rerun_answers_from_cache(self, report):
        result, cache = report
        warm = run_design(SPEC, cache_dir=cache)
        assert warm.cold_solves == 0
        assert warm.cache_hits == result.cold_solves
        cold_metrics = {
            p.label(): {
                k: v for k, v in p.metrics.items() if k != "elapsed_s"
            }
            for p in result.points
        }
        warm_metrics = {
            p.label(): {
                k: v for k, v in p.metrics.items() if k != "elapsed_s"
            }
            for p in warm.points
        }
        assert warm_metrics == cold_metrics

    def test_artifact_round_trip(self, report, tmp_path):
        result, _ = report
        json_path = tmp_path / "design.json"
        csv_path = tmp_path / "design.csv"
        result.write_json(json_path)
        result.write_csv(csv_path)
        payload = json.loads(json_path.read_text())
        assert payload["dominance"]["confirmed"] is True
        assert set(payload["frontier"]) == {
            p.label() for p in result.frontier()
        }
        header = csv_path.read_text().splitlines()[0]
        assert "throughput" in header and "on_frontier" in header

    def test_summary_reports_counters(self, report):
        result, _ = report
        summary = result.summary()
        assert "design frontier" in summary
        assert "random beats fat-tree at matched cost: yes" in summary
        assert f"{result.cold_solves} cold solves" in summary


class TestEstimatorPromotion:
    def test_finalists_promoted_to_exact(self, tmp_path):
        spec = DesignSpec.make(
            budget=20_000.0,
            servers=8,
            replicates=1,
            generators=("rrg",),
            exact_limit=0,  # force every candidate through the estimator
        )
        result = run_design(spec, cache_dir=str(tmp_path / "cache"))
        assert result.points
        verdicts = []
        for point in result.frontier():
            assert point.metrics["promoted"] is True
            assert point.metrics["exact"] is True
            assert point.metrics["solver"] == "edge_lp"
            # The band check ran and recorded a verdict; degenerate tiny
            # instances (near-complete graphs) may honestly fall outside
            # the band fit on the sparse calibration family.
            assert isinstance(point.metrics["within_band"], bool)
            verdicts.append(point.metrics["within_band"])
            assert point.metrics["estimate"] > 0
        assert any(verdicts)
        for point in result.points:
            if not point.on_frontier and not point.metrics["promoted"]:
                assert point.metrics["solver"] == spec.estimator
                assert point.metrics["error_lo"] is not None
