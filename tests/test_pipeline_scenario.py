"""ScenarioGrid enumeration, deterministic seeding, spec round trips."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.exceptions import ExperimentError
from repro.flow.solvers import SolverConfig
from repro.pipeline.scenario import Scenario, ScenarioGrid, TopologySpec, TrafficSpec


def small_grid(**overrides) -> ScenarioGrid:
    kwargs = dict(
        name="t",
        topologies=(TopologySpec.make("rrg", network_degree=4, servers_per_switch=2),),
        traffics=(TrafficSpec.make("permutation"),),
        solvers=(SolverConfig("edge_lp"),),
        sizes=(8, 10),
        seeds=2,
    )
    kwargs.update(overrides)
    return ScenarioGrid(**kwargs)


class TestSpecs:
    def test_topology_spec_roundtrip(self):
        spec = TopologySpec.make("rrg", network_degree=6, servers_per_switch=4)
        assert TopologySpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_traffic_spec_roundtrip(self):
        spec = TrafficSpec.make("stride", stride=3)
        assert TrafficSpec.from_dict(spec.to_dict()) == spec

    def test_param_order_irrelevant(self):
        a = TopologySpec.make("rrg", network_degree=6, servers_per_switch=4)
        b = TopologySpec(
            "rrg", params=(("servers_per_switch", 4), ("network_degree", 6))
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_build_injects_size_and_seed(self):
        spec = TopologySpec.make("rrg", network_degree=4)
        topo = spec.build(seed=3, size=9)
        assert topo.num_switches == 9

    def test_seedless_factory_supported(self):
        spec = TopologySpec.make("hypercube", dimension=3)
        topo = spec.build(seed=42)  # hypercube takes no seed; must not raise
        assert topo.num_switches == 8

    def test_traffic_spec_build(self):
        topo = TopologySpec.make(
            "rrg", network_degree=4, servers_per_switch=2
        ).build(seed=1, size=8)
        tm = TrafficSpec.make("stride", stride=2).build(topo)
        assert tm.total_demand > 0


class TestGrid:
    def test_cell_count(self):
        grid = small_grid(
            traffics=(TrafficSpec.make("permutation"), TrafficSpec.make("gravity")),
            solvers=(SolverConfig("edge_lp"), SolverConfig("ecmp")),
        )
        # 1 topology x 2 sizes x 2 traffics x 2 seeds x 2 solvers
        assert len(grid) == 16
        assert len(grid.cells()) == 16

    def test_no_sizes_axis(self):
        grid = small_grid(sizes=None)
        assert len(grid.cells()) == 2
        assert all(cell.size is None for cell in grid.cells())

    def test_validation(self):
        with pytest.raises(ExperimentError):
            small_grid(topologies=())
        with pytest.raises(ExperimentError):
            small_grid(seeds=0)
        with pytest.raises(ExperimentError):
            small_grid(solvers=())

    def test_dict_roundtrip(self):
        grid = small_grid(
            solvers=(SolverConfig.make("path_lp", k=4),),
            base_seed=9,
        )
        restored = ScenarioGrid.from_dict(json.loads(json.dumps(grid.to_dict())))
        assert restored == grid

    def test_cells_picklable(self):
        cells = small_grid().cells()
        assert pickle.loads(pickle.dumps(cells)) == cells


class TestDeterministicSeeding:
    def test_seeds_stable_across_enumerations(self):
        a = {c.label(): c.seed for c in small_grid().cells()}
        b = {c.label(): c.seed for c in small_grid().cells()}
        assert a == b

    def test_seed_independent_of_other_axes(self):
        """Adding a solver column must not change any cell's seed."""
        base = small_grid()
        wider = small_grid(solvers=(SolverConfig("edge_lp"), SolverConfig("ecmp")))
        base_seeds = {
            (c.topology, c.traffic, c.size, c.replicate): c.seed
            for c in base.cells()
        }
        for cell in wider.cells():
            key = (cell.topology, cell.traffic, cell.size, cell.replicate)
            assert cell.seed == base_seeds[key]

    def test_solver_columns_share_instances(self):
        grid = small_grid(
            solvers=(SolverConfig("edge_lp"), SolverConfig("ecmp")), seeds=1
        )
        by_solver: dict = {}
        for cell in grid.cells():
            if cell.size != 8:
                continue
            topo, traffic = cell.build()
            by_solver[cell.solver.name] = (
                sorted((link.u, link.v) for link in topo.links),
                traffic.demands,
            )
        assert by_solver["edge_lp"] == by_solver["ecmp"]

    def test_replicates_differ(self):
        grid = small_grid()
        seeds = {c.seed for c in grid.cells()}
        assert len(seeds) == 4  # 2 sizes x 2 replicates, all distinct

    def test_base_seed_changes_cells(self):
        a = {c.seed for c in small_grid().cells()}
        b = {c.seed for c in small_grid(base_seed=1).cells()}
        assert a != b

    def test_build_deterministic(self):
        cell = small_grid().cells()[0]
        topo_a, traffic_a = cell.build()
        topo_b, traffic_b = cell.build()
        assert sorted((link.u, link.v) for link in topo_a.links) == sorted(
            (link.u, link.v) for link in topo_b.links
        )
        assert traffic_a.demands == traffic_b.demands

    def test_scenario_to_dict_is_jsonable(self):
        cell = small_grid().cells()[0]
        payload = json.loads(json.dumps(cell.to_dict()))
        assert payload["seed"] == cell.seed
        assert isinstance(cell, Scenario)
