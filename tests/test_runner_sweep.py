"""The ``repro-experiments sweep`` CLI: flags, grid files, artifacts."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import main


BASE_FLAGS = [
    "sweep",
    "--topologies", "rrg",
    "--topo-param", "network_degree=4",
    "--topo-param", "servers_per_switch=2",
    "--sizes", "8,10",
    "--traffics", "permutation",
    "--solvers", "edge_lp,ecmp",
    "--seeds", "1",
    "--quiet",
]


class TestSweepCommand:
    def test_basic_sweep(self, capsys):
        assert main(BASE_FLAGS) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out  # 2 sizes x 2 solvers x 1 seed
        assert "edge_lp" in out and "ecmp" in out

    def test_artifacts_written(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        code = main(
            BASE_FLAGS + ["--json", str(json_path), "--csv", str(csv_path)]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert len(payload["cells"]) == 4
        assert csv_path.read_text().count("\n") == 5  # header + 4 cells

    def test_cache_reuse(self, tmp_path, capsys):
        cache_flags = BASE_FLAGS + ["--cache-dir", str(tmp_path / "cache")]
        assert main(cache_flags) == 0
        assert main(cache_flags) == 0
        out = capsys.readouterr().out
        assert "4 cache hits" in out

    def test_grid_config_file(self, tmp_path, capsys):
        grid = {
            "name": "from-file",
            "topologies": [
                {"kind": "rrg", "params": {"network_degree": 4,
                                           "servers_per_switch": 2}}
            ],
            "traffics": [{"model": "stride", "params": {"stride": 2}}],
            "solvers": [{"name": "ecmp"}],
            "sizes": [8],
            "seeds": 2,
        }
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid))
        assert main(["sweep", "--grid", str(path), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "from-file" in out
        assert "2 cells" in out

    def test_deterministic_across_invocations(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(BASE_FLAGS + ["--json", str(a)]) == 0
        assert main(BASE_FLAGS + ["--json", str(b)]) == 0
        cells_a = json.loads(a.read_text())["cells"]
        cells_b = json.loads(b.read_text())["cells"]
        assert [c["throughput"] for c in cells_a] == [
            c["throughput"] for c in cells_b
        ]

    def test_bad_param_flag(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--topo-param", "notkeyvalue"])

    def test_analyze_accepts_registry_models(self, tmp_path, capsys):
        from repro.topology.random_regular import random_regular_topology
        from repro.topology.serialization import save_topology

        topo = random_regular_topology(8, 3, servers_per_switch=2, seed=1)
        path = str(tmp_path / "topo.json")
        save_topology(topo, path)
        assert main(["analyze", path, "--traffic", "gravity"]) == 0
        out = capsys.readouterr().out
        assert "gravity" in out
