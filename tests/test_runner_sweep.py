"""The ``repro-experiments sweep`` CLI: flags, grid files, artifacts."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import main


BASE_FLAGS = [
    "sweep",
    "--topologies", "rrg",
    "--topo-param", "network_degree=4",
    "--topo-param", "servers_per_switch=2",
    "--sizes", "8,10",
    "--traffics", "permutation",
    "--solvers", "edge_lp,ecmp",
    "--seeds", "1",
    "--quiet",
]


class TestSweepCommand:
    def test_basic_sweep(self, capsys):
        assert main(BASE_FLAGS) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out  # 2 sizes x 2 solvers x 1 seed
        assert "edge_lp" in out and "ecmp" in out

    def test_artifacts_written(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        code = main(
            BASE_FLAGS + ["--json", str(json_path), "--csv", str(csv_path)]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert len(payload["cells"]) == 4
        assert csv_path.read_text().count("\n") == 5  # header + 4 cells

    def test_cache_reuse(self, tmp_path, capsys):
        cache_flags = BASE_FLAGS + ["--cache-dir", str(tmp_path / "cache")]
        assert main(cache_flags) == 0
        assert main(cache_flags) == 0
        out = capsys.readouterr().out
        assert "4 cache hits" in out

    def test_grid_config_file(self, tmp_path, capsys):
        grid = {
            "name": "from-file",
            "topologies": [
                {"kind": "rrg", "params": {"network_degree": 4,
                                           "servers_per_switch": 2}}
            ],
            "traffics": [{"model": "stride", "params": {"stride": 2}}],
            "solvers": [{"name": "ecmp"}],
            "sizes": [8],
            "seeds": 2,
        }
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid))
        assert main(["sweep", "--grid", str(path), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "from-file" in out
        assert "2 cells" in out

    def test_deterministic_across_invocations(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(BASE_FLAGS + ["--json", str(a)]) == 0
        assert main(BASE_FLAGS + ["--json", str(b)]) == 0
        cells_a = json.loads(a.read_text())["cells"]
        cells_b = json.loads(b.read_text())["cells"]
        assert [c["throughput"] for c in cells_a] == [
            c["throughput"] for c in cells_b
        ]

    def test_bad_param_flag(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--topo-param", "notkeyvalue"])

    def test_analyze_accepts_registry_models(self, tmp_path, capsys):
        from repro.topology.random_regular import random_regular_topology
        from repro.topology.serialization import save_topology

        topo = random_regular_topology(8, 3, servers_per_switch=2, seed=1)
        path = str(tmp_path / "topo.json")
        save_topology(topo, path)
        assert main(["analyze", path, "--traffic", "gravity"]) == 0
        out = capsys.readouterr().out
        assert "gravity" in out


class TestManifestResume:
    def test_sweep_writes_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        flags = BASE_FLAGS + [
            "--manifest", str(manifest),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(flags) == 0
        payload = json.loads(manifest.read_text())
        assert len(payload["cells"]) == 4
        assert all(item["state"] == "done" for item in payload["items"])

    def test_resume_reports_solve_counts(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        flags = BASE_FLAGS + [
            "--manifest", str(manifest),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(flags) == 0
        capsys.readouterr()
        assert main(["sweep", "--resume", str(manifest), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 re-solved, 0 cache-hit, 4 skipped" in out

    def test_resume_after_crash_hits_cache(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        flags = BASE_FLAGS + [
            "--manifest", str(manifest),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(flags) == 0
        capsys.readouterr()
        # Drop one item's recorded cells, as if the run died mid-item.
        payload = json.loads(manifest.read_text())
        victim = payload["items"][0]
        victim["state"] = "running"
        lost = len(victim["indices"])
        for index in victim["indices"]:
            del payload["cells"][str(index)]
        manifest.write_text(json.dumps(payload))
        assert main(["sweep", "--resume", str(manifest), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert (
            f"0 re-solved, {lost} cache-hit, {4 - lost} skipped" in out
        )
        assert json.loads(manifest.read_text())["cells"].keys() == {
            "0", "1", "2", "3"
        }

    def test_resume_artifacts(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        json_path = tmp_path / "resumed.json"
        assert main(BASE_FLAGS + ["--manifest", str(manifest)]) == 0
        code = main(
            ["sweep", "--resume", str(manifest), "--quiet",
             "--json", str(json_path)]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["restored"] == 4
        assert payload["solve_counts"]["skipped"] == 4


class TestFailureFlags:
    FAILURE_FLAGS = [
        "sweep",
        "--topologies", "rrg",
        "--topo-param", "network_degree=4",
        "--topo-param", "servers_per_switch=2",
        "--sizes", "10",
        "--traffics", "permutation",
        "--solvers", "edge_lp",
        "--seeds", "1",
        "--failure-rates", "0", "0.1", "0.3",
        "--quiet",
    ]

    def test_failure_axis_expands_cells(self, capsys):
        assert main(self.FAILURE_FLAGS) == 0
        out = capsys.readouterr().out
        assert "3 cells" in out  # 1 size x 1 solver x 3 failure levels
        assert "random_links@0.1" in out
        assert "random_links@0.3" in out

    def test_rate_zero_shares_cache_with_plain_sweep(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        plain = [flag for flag in self.FAILURE_FLAGS if flag not in
                 ("--failure-rates", "0", "0.1", "0.3")]
        assert main(plain + cache) == 0
        capsys.readouterr()
        assert main(self.FAILURE_FLAGS + cache) == 0
        out = capsys.readouterr().out
        assert "1 cache hits" in out  # the rate-0 column

    def test_failure_model_flag(self, capsys):
        flags = self.FAILURE_FLAGS + ["--failure-model", "random_switches"]
        assert main(flags) == 0
        assert "random_switches@0.3" in capsys.readouterr().out

    def test_unreachable_flag_applies_to_solvers(self, capsys):
        flags = self.FAILURE_FLAGS + ["--unreachable", "drop"]
        assert main(flags) == 0
        assert "unreachable='drop'" in capsys.readouterr().out

    def test_failure_flags_compose_with_grid_file(self, tmp_path, capsys):
        grid = {
            "name": "grid-failures",
            "topologies": [
                {"kind": "rrg", "params": {"network_degree": 4,
                                           "servers_per_switch": 2,
                                           "num_switches": 10}},
                {"kind": "fat-tree", "params": {"k": 4}},
            ],
            "traffics": [{"model": "permutation"}],
            "solvers": [{"name": "edge_lp"}, {"name": "ecmp"}],
            "seeds": 1,
        }
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(grid), encoding="utf-8")
        code = main([
            "sweep", "--grid", str(grid_path),
            "--failure-rates", "0", "0.2", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "8 cells" in out  # 2 topologies x 2 solvers x 2 failure levels
        assert "fat-tree" in out and "random_links@0.2" in out
