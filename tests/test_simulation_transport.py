"""Tests for the AIMD/MPTCP transport and the end-to-end simulator."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import EventQueue
from repro.simulation.links import LinkQueue
from repro.simulation.mptcp import MptcpFlow
from repro.simulation.routing import host_id, host_paths_for_pair
from repro.simulation.simulator import (
    PacketLevelSimulator,
    SimulationConfig,
    SimulationReport,
)
from repro.topology.random_regular import random_regular_topology
from repro.traffic.base import TrafficMatrix
from repro.traffic.permutation import random_permutation_traffic


def _run_single_path(rate: float, duration: float = 200.0) -> float:
    """One flow over one link of the given rate; returns goodput."""
    events = EventQueue()
    link = LinkQueue(events, rate=rate, propagation_delay=0.01)
    flow = MptcpFlow("f")
    flow.add_subflow(events, [link], min_rto=10.0)
    flow.start()
    events.run_until(duration)
    return flow.delivered / duration


class TestSubflowDynamics:
    def test_saturates_single_link(self):
        goodput = _run_single_path(rate=1.0)
        assert goodput >= 0.85

    def test_goodput_scales_with_rate(self):
        slow = _run_single_path(rate=0.5)
        fast = _run_single_path(rate=2.0)
        assert fast > 1.5 * slow

    def test_two_flows_share_fairly(self):
        events = EventQueue()
        link = LinkQueue(events, rate=1.0, propagation_delay=0.01, buffer_packets=16)
        flows = [MptcpFlow(f"f{i}") for i in range(2)]
        for flow in flows:
            flow.add_subflow(events, [link], min_rto=10.0)
            flow.start()
        events.run_until(400.0)
        rates = [flow.delivered / 400.0 for flow in flows]
        assert sum(rates) >= 0.8
        assert min(rates) >= 0.25 * max(rates)

    def test_loss_recovery_progresses(self):
        # A tiny buffer forces drops; the flow must still progress.
        events = EventQueue()
        link = LinkQueue(events, rate=1.0, propagation_delay=0.01, buffer_packets=2)
        flow = MptcpFlow("f")
        subflow = flow.add_subflow(events, [link], min_rto=5.0, ssthresh=64.0)
        flow.start()
        events.run_until(300.0)
        assert flow.delivered > 100
        assert subflow.stats.retransmits > 0

    def test_ewtcp_coupling_scales_increase(self):
        events = EventQueue()
        links = [LinkQueue(events, rate=1.0) for _ in range(4)]
        flow = MptcpFlow("f", coupling="ewtcp")
        for link in links:
            flow.add_subflow(events, [link])
        flow.finalize_coupling()
        assert all(s.increase_scale == pytest.approx(0.25) for s in flow.subflows)

    def test_unknown_coupling_rejected(self):
        with pytest.raises(SimulationError, match="coupling"):
            MptcpFlow("f", coupling="bogus")

    def test_empty_path_rejected(self):
        events = EventQueue()
        flow = MptcpFlow("f")
        with pytest.raises(SimulationError, match="at least one link"):
            flow.add_subflow(events, [])


class TestRouting:
    def test_host_paths_structure(self, small_rrg):
        src = (small_rrg.switches[0], 0)
        dst = (small_rrg.switches[5], 1)
        paths = host_paths_for_pair(small_rrg, src, dst, num_paths=4)
        assert 1 <= len(paths) <= 4
        for path in paths:
            assert path[0] == host_id(src)
            assert path[-1] == host_id(dst)
            assert path[1] == src[0]
            assert path[-2] == dst[0]

    def test_same_switch_pair(self, small_rrg):
        switch = small_rrg.switches[0]
        paths = host_paths_for_pair(small_rrg, (switch, 0), (switch, 1), 4)
        assert paths == [[host_id((switch, 0)), switch, host_id((switch, 1))]]

    def test_ecmp_mode_samples_shortest(self, small_rrg):
        src = (small_rrg.switches[0], 0)
        dst = (small_rrg.switches[5], 0)
        paths = host_paths_for_pair(
            small_rrg, src, dst, num_paths=4, mode="ecmp", seed=1
        )
        lengths = {len(p) for p in paths}
        assert len(lengths) == 1  # all equal-cost

    def test_unknown_mode_rejected(self, small_rrg):
        src = (small_rrg.switches[0], 0)
        dst = (small_rrg.switches[1], 0)
        with pytest.raises(SimulationError, match="routing mode"):
            host_paths_for_pair(small_rrg, src, dst, 2, mode="bogus")


class TestSimulator:
    def test_end_to_end_rates_reasonable(self):
        topo = random_regular_topology(8, 4, servers_per_switch=2, seed=1)
        traffic = random_permutation_traffic(topo, seed=2)
        config = SimulationConfig(duration=150.0, warmup=50.0, subflows=2)
        report = PacketLevelSimulator(topo, config).run(traffic, seed=3)
        assert len(report.flow_rates) == traffic.num_flows
        assert 0.0 <= report.min_rate <= report.mean_rate
        # No flow can beat its server NIC.
        assert max(report.flow_rates.values()) <= 1.0 + 0.05

    def test_dense_traffic_without_server_pairs_rejected(self):
        topo = random_regular_topology(6, 3, servers_per_switch=2, seed=4)
        from repro.traffic.alltoall import all_to_all_traffic

        config = SimulationConfig(duration=20.0, warmup=5.0)
        with pytest.raises(SimulationError, match="server-level pairs"):
            PacketLevelSimulator(topo, config).run(all_to_all_traffic(topo))

    def test_empty_traffic_rejected(self):
        topo = random_regular_topology(6, 3, servers_per_switch=2, seed=4)
        empty = TrafficMatrix(name="e", demands={}, num_flows=0, server_pairs=[])
        config = SimulationConfig(duration=20.0, warmup=5.0)
        with pytest.raises(SimulationError, match="no flows"):
            PacketLevelSimulator(topo, config).run(empty)

    def test_config_validation(self):
        with pytest.raises(SimulationError, match="duration"):
            SimulationConfig(duration=10.0, warmup=20.0)
        with pytest.raises(SimulationError, match="subflow"):
            SimulationConfig(subflows=0)

    def test_report_percentiles(self):
        report = SimulationReport(flow_rates={"a": 0.1, "b": 0.5, "c": 0.9})
        assert report.rate_percentile(0) == pytest.approx(0.1)
        assert report.rate_percentile(50) == pytest.approx(0.5)
        assert report.rate_percentile(100) == pytest.approx(0.9)
        with pytest.raises(SimulationError, match="percentile"):
            report.rate_percentile(123)

    def test_empty_report_rejected(self):
        report = SimulationReport()
        with pytest.raises(SimulationError, match="no flows"):
            _ = report.min_rate

    def test_deterministic_given_seed(self):
        topo = random_regular_topology(6, 3, servers_per_switch=2, seed=5)
        traffic = random_permutation_traffic(topo, seed=6)
        config = SimulationConfig(duration=60.0, warmup=20.0, subflows=2)
        first = PacketLevelSimulator(topo, config).run(traffic, seed=7)
        second = PacketLevelSimulator(topo, config).run(traffic, seed=7)
        assert first.flow_rates == second.flow_rates

    def test_near_lp_in_oversubscribed_regime(self):
        """The Figure 13 claim at micro scale: packet mean within ~25% of
        the LP value (the paper gets within a few percent with htsim)."""
        from repro.flow.edge_lp import max_concurrent_flow

        topo = random_regular_topology(8, 4, servers_per_switch=6, seed=8)
        traffic = random_permutation_traffic(topo, seed=9)
        lp = max_concurrent_flow(topo, traffic).throughput
        config = SimulationConfig(
            duration=250.0, warmup=100.0, subflows=4, packet_size=0.5
        )
        report = PacketLevelSimulator(topo, config).run(traffic, seed=10)
        assert report.mean_rate >= 0.75 * min(lp, 1.0)
