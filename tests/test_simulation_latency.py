"""Tests for packet-latency measurement in the simulator (§9)."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.simulator import (
    PacketLevelSimulator,
    SimulationConfig,
    SimulationReport,
)
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic


def _run(servers_per_switch: int, seed: int = 1) -> "SimulationReport":
    topo = random_regular_topology(
        8, 4, servers_per_switch=servers_per_switch, seed=seed
    )
    traffic = random_permutation_traffic(topo, seed=seed + 1)
    config = SimulationConfig(duration=150.0, warmup=50.0, subflows=2)
    return PacketLevelSimulator(topo, config).run(traffic, seed=seed + 2)


class TestLatencySampling:
    def test_samples_collected_after_warmup(self):
        report = _run(servers_per_switch=2)
        assert report.latency_samples
        assert all(delay > 0 for delay in report.latency_samples)

    def test_physical_lower_bound(self):
        # Minimum conceivable one-way delay: 2 host links + 1 switch hop,
        # each 1 time unit serialization at unit rate (plus propagation).
        report = _run(servers_per_switch=2)
        assert min(report.latency_samples) >= 3.0

    def test_percentiles_ordered(self):
        report = _run(servers_per_switch=2)
        p50 = report.latency_percentile(50)
        p99 = report.latency_percentile(99)
        assert p50 <= p99
        assert report.latency_percentile(0) <= p50
        assert p50 <= report.mean_latency * 2.0

    def test_heavier_load_raises_latency(self):
        light = _run(servers_per_switch=2)
        heavy = _run(servers_per_switch=8)
        assert heavy.latency_percentile(50) > light.latency_percentile(50)

    def test_empty_report_rejected(self):
        report = SimulationReport()
        with pytest.raises(SimulationError, match="latency"):
            report.latency_percentile(50)
        with pytest.raises(SimulationError, match="latency"):
            _ = report.mean_latency

    def test_invalid_percentile_rejected(self):
        report = _run(servers_per_switch=2)
        with pytest.raises(SimulationError, match="percentile"):
            report.latency_percentile(101)

    def test_sample_cap_respected(self):
        report = _run(servers_per_switch=4)
        from repro.simulation.mptcp import MptcpFlow

        per_flow_cap = MptcpFlow.MAX_LATENCY_SAMPLES
        flows = len(report.flow_rates)
        assert len(report.latency_samples) <= per_flow_cap * flows
