"""Tests for spectral measures against known spectra."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import TopologyError
from repro.metrics.spectral import (
    adjacency_spectral_gap,
    algebraic_connectivity,
    cheeger_bounds,
    expander_mixing_deviation,
    fiedler_vector,
    second_largest_adjacency_eigenvalue_magnitude,
)
from repro.topology.base import Topology
from repro.topology.complete import complete_topology
from repro.topology.random_regular import random_regular_topology


def _cycle(n: int) -> Topology:
    topo = Topology(f"cycle{n}")
    for v in range(n):
        topo.add_switch(v)
    for v in range(n):
        topo.add_link(v, (v + 1) % n)
    return topo


class TestSpectralGap:
    def test_complete_graph(self):
        # K_n adjacency spectrum: n-1 once, -1 with multiplicity n-1.
        assert adjacency_spectral_gap(complete_topology(6)) == pytest.approx(6.0)

    def test_cycle(self):
        n = 8
        gap = adjacency_spectral_gap(_cycle(n))
        expected = 2.0 - 2.0 * math.cos(2.0 * math.pi / n)
        assert gap == pytest.approx(expected, abs=1e-9)

    def test_needs_two_nodes(self):
        topo = Topology("one")
        topo.add_switch(0)
        with pytest.raises(TopologyError, match="at least 2"):
            adjacency_spectral_gap(topo)

    def test_random_regular_graphs_expand(self):
        # Random regular graphs are near-Ramanujan: lambda <= 2*sqrt(d-1)
        # plus slack.
        d = 4
        topo = random_regular_topology(30, d, seed=2)
        lam = second_largest_adjacency_eigenvalue_magnitude(topo)
        assert lam <= 2.0 * math.sqrt(d - 1) + 1.0


class TestAlgebraicConnectivity:
    def test_cycle_known_value(self):
        n = 10
        value = algebraic_connectivity(_cycle(n), weighted=False)
        expected = 2.0 - 2.0 * math.cos(2.0 * math.pi / n)
        assert value == pytest.approx(expected, abs=1e-9)

    def test_disconnected_graph_is_zero(self):
        topo = Topology("disc")
        for v in range(4):
            topo.add_switch(v)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        assert algebraic_connectivity(topo) == pytest.approx(0.0, abs=1e-9)

    def test_fiedler_vector_separates_barbell(self):
        topo = Topology("barbell")
        for v in range(6):
            topo.add_switch(v)
        for u in range(3):
            for v in range(u + 1, 3):
                topo.add_link(u, v)
                topo.add_link(u + 3, v + 3)
        topo.add_link(2, 3)
        vec = fiedler_vector(topo)
        left = {v for v in topo.switches if vec[v] < 0}
        assert left in ({0, 1, 2}, {3, 4, 5})


class TestMixingLemma:
    def test_holds_on_random_regular(self):
        topo = random_regular_topology(20, 4, seed=5)
        nodes = topo.switches
        outcome = expander_mixing_deviation(
            topo, set(nodes[:10]), set(nodes[10:])
        )
        assert outcome["holds"]
        assert outcome["deviation"] <= outcome["bound"] + 1e-9

    def test_requires_regular(self):
        topo = Topology("irregular")
        topo.add_switch(0)
        topo.add_switch(1)
        topo.add_switch(2)
        topo.add_link(0, 1)
        topo.add_link(1, 2)
        with pytest.raises(TopologyError, match="regular"):
            expander_mixing_deviation(topo, {0}, {2})


class TestCheeger:
    def test_bracket_order(self):
        topo = random_regular_topology(16, 4, seed=6)
        lower, upper = cheeger_bounds(topo)
        assert 0 <= lower <= upper

    def test_complete_graph_values(self):
        lower, upper = cheeger_bounds(complete_topology(6))
        # Gap = d - lambda2 = 5 - (-1) = 6.
        assert lower == pytest.approx(3.0)
        assert upper == pytest.approx(math.sqrt(2 * 5 * 6))
