"""Property tests for incremental expansion (`topology.expansion`).

The growth subsystem leans on the link-swap procedure's invariants —
port budgets, degree preservation, churn accounting — so they are
pinned here across randomized fabrics, port counts, and seeds.
"""

from __future__ import annotations

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.exceptions import TopologyError

from repro.pipeline.fingerprint import topology_fingerprint
from repro.topology.expansion import add_switch_by_link_swaps, expand_topology
from repro.topology.random_regular import random_regular_topology

seeds = st.integers(0, 2**32 - 1)


def base_topology(num_switches: int, degree: int, seed: int):
    return random_regular_topology(
        num_switches, degree, servers_per_switch=2, seed=seed
    )


@given(
    st.integers(10, 24),
    st.integers(3, 6),
    st.integers(0, 8),
    st.integers(0, 3),
    seeds,
)
def test_port_budget_and_degrees(num_switches, degree, ports, servers, seed):
    degree = min(degree, num_switches - 1)
    topo = base_topology(num_switches, degree, seed)
    before_degrees = {v: topo.degree(v) for v in topo.switches}
    before_links = topo.num_links

    try:
        report = add_switch_by_link_swaps(
            topo, "new", network_ports=ports, servers=servers, seed=seed + 1
        )
    except TopologyError:
        # Documented exception: a port budget approaching the fabric size
        # can exhaust valid swaps (every remaining link touches a switch
        # already adjacent to the new one). Reject, don't fail.
        assume(False)

    # The new switch consumes exactly the even part of its port budget.
    assert topo.degree("new") == ports - report.leftover_ports
    assert report.leftover_ports == ports % 2
    # Non-endpoint switches keep their degrees: swaps split links, they
    # never change anyone else's port usage.
    for node, degree_before in before_degrees.items():
        assert topo.degree(node) == degree_before
    assert topo.servers_at("new") == servers
    # Accounting consistency: every swap removes one link and adds two.
    assert report.links_added == 2 * report.links_removed
    assert report.links_removed == (ports - report.leftover_ports) // 2
    assert topo.num_links == before_links + report.links_removed
    # Handshake: total degree equals twice the link count.
    assert sum(topo.degree(v) for v in topo.switches) == 2 * topo.num_links


@given(st.integers(10, 20), st.integers(3, 5), seeds)
def test_per_seed_determinism(num_switches, degree, seed):
    degree = min(degree, num_switches - 1)

    def grown():
        topo = base_topology(num_switches, degree, seed)
        add_switch_by_link_swaps(
            topo, "new", network_ports=degree, seed=seed * 7 + 1
        )
        return topo

    assert topology_fingerprint(grown()) == topology_fingerprint(grown())


@given(st.integers(12, 20), seeds)
def test_connectivity_preserved(num_switches, seed):
    topo = base_topology(num_switches, 4, seed)
    add_switch_by_link_swaps(topo, "new", network_ports=4, seed=seed)
    assert topo.is_connected()
    topo.validate()


@given(st.integers(12, 20), st.integers(2, 4), seeds)
def test_expand_topology_accounting(num_switches, extra, seed):
    topo = base_topology(num_switches, 4, seed)
    before_links = topo.num_links
    new_switches = {f"n{i}": 4 for i in range(extra)}

    reports = expand_topology(topo, new_switches, seed=seed)

    assert len(reports) == extra
    assert [r.added_switch for r in reports] == list(new_switches)
    assert all(r.leftover_ports == 0 for r in reports)
    assert topo.num_switches == num_switches + extra
    # Net links gained is half the arriving port budget, exactly.
    assert topo.num_links == before_links + extra * 2
    assert all(topo.degree(f"n{i}") == 4 for i in range(extra))
