"""Mechanism solvers: registry contract, orderings, drop policy, sweeps."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError
from repro.fidelity.solvers import sim_ecmp, sim_mptcp
from repro.flow.result import ThroughputResult
from repro.flow.solvers import (
    SolverConfig,
    get_solver,
    solve_throughput,
)
from repro.pipeline.engine import run_grid
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.topology.base import Topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic


@pytest.fixture(scope="module")
def instance():
    topo = random_regular_topology(12, 4, servers_per_switch=2, seed=0)
    traffic = random_permutation_traffic(topo, seed=1)
    return topo, traffic


@pytest.fixture(scope="module")
def exact(instance):
    return solve_throughput(*instance, "edge_lp").throughput


class TestRegistryContract:
    def test_flags(self):
        for name in ("sim_ecmp", "sim_mptcp"):
            backend = get_solver(name)
            assert backend.simulation
            assert not backend.exact
            assert not backend.estimate
        packet = get_solver("sim_packet")
        assert packet.simulation and packet.estimate and not packet.exact

    def test_aliases_resolve(self, instance):
        topo, traffic = instance
        hyphen = solve_throughput(topo, traffic, "sim-ecmp", paths=2)
        canonical = solve_throughput(topo, traffic, "sim_ecmp", paths=2)
        assert hyphen.throughput == canonical.throughput


class TestMechanismOrdering:
    def test_both_below_exact(self, instance, exact):
        topo, traffic = instance
        ecmp = sim_ecmp(topo, traffic, paths=8)
        mptcp = sim_mptcp(topo, traffic, subflows=8, method="yen")
        assert 0 < ecmp.throughput <= exact * (1 + 1e-6)
        assert 0 < mptcp.throughput <= exact * (1 + 1e-6)

    def test_mptcp8_beats_ecmp8_and_nears_lp(self, instance, exact):
        """The §5 ordering on a random graph, at unit scale."""
        topo, traffic = instance
        ecmp = sim_ecmp(topo, traffic, paths=8, server_capacity=None)
        mptcp = sim_mptcp(
            topo, traffic, subflows=8, method="yen", server_capacity=None
        )
        assert mptcp.throughput > ecmp.throughput
        assert mptcp.throughput >= 0.9 * exact
        assert ecmp.throughput <= 0.8 * exact

    def test_balanced_coupling_beats_uncoupled(self, instance):
        topo, traffic = instance
        balanced = sim_mptcp(topo, traffic, subflows=8, method="yen")
        uncoupled = sim_mptcp(
            topo, traffic, subflows=8, method="yen", coupling="uncoupled"
        )
        assert balanced.throughput >= uncoupled.throughput - 1e-9

    def test_ecmp_deterministic_and_seed_sensitive(self, instance):
        topo, traffic = instance
        a = sim_ecmp(topo, traffic, paths=4)
        b = sim_ecmp(topo, traffic, paths=4)
        assert a.throughput == b.throughput
        seeded = [
            sim_ecmp(topo, traffic, paths=4, seed=s).throughput
            for s in range(4)
        ]
        assert len(set(seeded)) > 1  # hash draw actually varies


class TestResultParity:
    def test_result_fields(self, instance):
        topo, traffic = instance
        result = sim_mptcp(topo, traffic, subflows=4, method="yen")
        assert result.solver == "sim-mptcp-4"
        assert result.exact is False
        assert result.is_estimate is False
        assert result.total_demand == traffic.total_demand
        assert result.arc_capacities
        for arc, load in result.arc_flows.items():
            assert load <= result.arc_capacities[arc] * (1 + 1e-9)

    def test_serialization_round_trip(self, instance):
        topo, traffic = instance
        result = sim_ecmp(topo, traffic, paths=4, error_band=(0.3, 0.8))
        rebuilt = ThroughputResult.from_dict(result.to_dict())
        assert rebuilt.throughput == result.throughput
        assert rebuilt.solver == result.solver
        assert rebuilt.error_band == pytest.approx((0.3, 0.8))

    def test_validation_errors(self, instance):
        topo, traffic = instance
        with pytest.raises((FlowError, ValueError)):
            sim_ecmp(topo, traffic, paths=0)
        with pytest.raises(FlowError):
            sim_mptcp(topo, traffic, coupling="magic")
        with pytest.raises(FlowError):
            sim_mptcp(topo, traffic, method="dag")


class TestUnreachablePolicy:
    def _split_topo(self):
        topo = Topology("split")
        for name in ("a", "b", "c", "d"):
            topo.add_switch(name, servers=1)
        topo.add_link("a", "b")
        topo.add_link("c", "d")
        return topo

    def test_error_policy_raises(self):
        topo = self._split_topo()
        traffic = random_permutation_traffic(topo, seed=3)
        for solver in (sim_ecmp, sim_mptcp):
            with pytest.raises(FlowError):
                solver(topo, traffic)

    def test_drop_policy_reports_dropped(self):
        topo = self._split_topo()
        # A permutation over 4 servers on a split fabric strands demand
        # with probability 1 - 1/3; seed 1 does.
        traffic = random_permutation_traffic(topo, seed=1)
        result = sim_ecmp(topo, traffic, unreachable="drop")
        assert result.dropped_pairs
        assert result.dropped_demand > 0


class TestPipelineAxis:
    def test_run_grid_with_sim_solvers(self, tmp_path):
        grid = ScenarioGrid(
            name="fidelity-smoke",
            topologies=(
                TopologySpec.make(
                    "rrg", network_degree=4, servers_per_switch=2
                ),
            ),
            traffics=(TrafficSpec.make("permutation"),),
            solvers=(
                SolverConfig.make("sim_ecmp", paths=4),
                SolverConfig.make("sim_mptcp", subflows=4),
            ),
            sizes=(16,),
            seeds=1,
        )
        from repro.fidelity.routes import reset_route_stats, route_stats

        cold = run_grid(grid, cache_dir=str(tmp_path))
        assert all(cell.throughput > 0 for cell in cold.cells)
        reset_route_stats()
        warm = run_grid(grid, cache_dir=str(tmp_path))
        assert all(cell.cache_hit for cell in warm.cells)
        assert route_stats()["computed"] == 0
        for a, b in zip(cold.cells, warm.cells):
            assert a.throughput == b.throughput
