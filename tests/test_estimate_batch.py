"""Shared-artifact batching, the estimator ladder, and source sampling.

Pins the core batching contract: results computed inside a
:func:`shared_artifacts` scope are **identical** to solo runs (a memo
hit returns the same arrays the direct computation produces), while the
expensive per-instance artifacts (Fiedler eigensolve, CSR adjacency)
are paid once. Also covers the Horvitz-Thompson source sampling of
``demand_hop_sum``/``estimate_bound`` and the factorization-free
Fiedler path above :data:`SHIFT_INVERT_LIMIT`.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.metrics.spectral as spectral_mod
from repro.exceptions import FlowError
from repro.estimate.batch import (
    LADDER_SOLVERS,
    SharedArtifacts,
    active_artifacts,
    run_ladder,
    shared_artifacts,
)
from repro.estimate.bound import estimate_bound
from repro.estimate.cut import estimate_cut
from repro.estimate.spectral import estimate_spectral
from repro.metrics.paths import demand_hop_sum
from repro.metrics.spectral import sparse_algebraic_connectivity
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic

#: Big enough for the sparse (ARPACK) Fiedler path, small enough for CI.
SPARSE_N = 400


@pytest.fixture(scope="module")
def instance():
    topo = random_regular_topology(
        SPARSE_N, 6, servers_per_switch=1, seed=0
    )
    return topo, random_permutation_traffic(topo, seed=1)


class TestSharedArtifacts:
    def test_fiedler_memoized_once(self, instance):
        topo, _ = instance
        store = SharedArtifacts()
        first = store.fiedler_pair(topo)
        again = store.fiedler_pair(topo)
        assert again is first
        assert store.stats["fiedler_solves"] == 1
        assert store.stats["fiedler_hits"] == 1

    def test_weighted_flag_is_part_of_the_key(self, instance):
        topo, _ = instance
        store = SharedArtifacts()
        store.fiedler_pair(topo, weighted=True)
        store.fiedler_pair(topo, weighted=False)
        assert store.stats["fiedler_solves"] == 2

    def test_csr_memoized_once(self, instance):
        topo, _ = instance
        store = SharedArtifacts()
        first = store.csr_adjacency(topo)
        assert store.csr_adjacency(topo) is first
        assert store.stats == {
            "fiedler_solves": 0,
            "fiedler_hits": 0,
            "csr_builds": 1,
            "csr_hits": 1,
        }

    def test_scope_activates_and_restores(self):
        assert active_artifacts() is None
        with shared_artifacts() as store:
            assert active_artifacts() is store
        assert active_artifacts() is None

    def test_distinct_topologies_get_distinct_entries(self, instance):
        topo, _ = instance
        other = topo.copy()
        store = SharedArtifacts()
        store.fiedler_pair(topo)
        store.fiedler_pair(other)
        assert store.stats["fiedler_solves"] == 2


class TestBatchedEqualsSolo:
    def test_ladder_matches_solo_backends(self, instance):
        topo, traffic = instance
        solo = {
            "bound": estimate_bound(topo, traffic),
            "cut": estimate_cut(topo, traffic),
            "spectral": estimate_spectral(topo, traffic),
        }
        batched = run_ladder(topo, traffic)
        for name in LADDER_SOLVERS:
            assert batched[name].throughput == solo[name].throughput, name
            assert batched[name].to_dict() == solo[name].to_dict(), name

    def test_ladder_shares_one_eigensolve(self, instance):
        topo, traffic = instance
        store = SharedArtifacts()
        run_ladder(topo, traffic, store=store)
        assert store.stats["fiedler_solves"] == 1
        assert store.stats["fiedler_hits"] >= 1

    def test_store_carries_across_calls(self, instance):
        topo, traffic = instance
        store = SharedArtifacts()
        for name in LADDER_SOLVERS:
            run_ladder(topo, traffic, solvers=(name,), store=store)
        assert store.stats["fiedler_solves"] == 1

    def test_unknown_solver_rejected(self, instance):
        topo, traffic = instance
        with pytest.raises(FlowError, match="unknown ladder solver"):
            run_ladder(topo, traffic, solvers=("bound", "exact_lp"))

    def test_options_reach_the_backend(self, instance):
        topo, traffic = instance
        sampled = run_ladder(
            topo,
            traffic,
            solvers=("bound",),
            options={"bound": {"max_sources": 32}},
        )["bound"]
        exact = estimate_bound(topo, traffic)
        assert sampled.throughput != exact.throughput
        assert sampled.throughput == pytest.approx(
            exact.throughput, rel=0.15
        )

    def test_shared_connectivity_matches_direct(self, instance):
        topo, _ = instance
        direct = sparse_algebraic_connectivity(topo)
        with shared_artifacts():
            shared = sparse_algebraic_connectivity(topo)
        assert shared == direct


class TestSourceSampling:
    def test_full_sample_is_exact(self, instance):
        topo, traffic = instance
        exact = demand_hop_sum(topo, traffic)
        assert demand_hop_sum(
            topo, traffic, max_sources=10 ** 6
        ) == exact

    def test_sampling_is_deterministic_and_unbiased_ish(self, instance):
        topo, traffic = instance
        exact = demand_hop_sum(topo, traffic)
        once = demand_hop_sum(topo, traffic, max_sources=100, seed=3)
        again = demand_hop_sum(topo, traffic, max_sources=100, seed=3)
        assert once == again
        assert once == pytest.approx(exact, rel=0.10)
        other = demand_hop_sum(topo, traffic, max_sources=100, seed=4)
        assert other != once

    def test_invalid_max_sources_rejected(self, instance):
        topo, traffic = instance
        with pytest.raises(ValueError, match="max_sources"):
            demand_hop_sum(topo, traffic, max_sources=0)

    def test_bound_threads_sampling_through(self, instance):
        topo, traffic = instance
        sampled = estimate_bound(topo, traffic, max_sources=64, seed=2)
        assert sampled.is_estimate
        assert sampled.throughput == pytest.approx(
            estimate_bound(topo, traffic).throughput, rel=0.15
        )


class TestReflectedLanczosGate:
    def test_reflected_path_matches_shift_invert(self, instance, monkeypatch):
        """Forcing the >limit path on a small graph reproduces lambda_2."""
        topo, traffic = instance
        default = sparse_algebraic_connectivity(topo)
        cut_default = estimate_cut(topo, traffic)
        monkeypatch.setattr(spectral_mod, "SHIFT_INVERT_LIMIT", SPARSE_N - 1)
        reflected = sparse_algebraic_connectivity(topo)
        assert reflected == pytest.approx(default, abs=1e-8)
        # The cut estimate consumes the Fiedler *vector*; the sweep must
        # find the same cut structure either way.
        cut_reflected = estimate_cut(topo, traffic)
        assert cut_reflected.throughput == pytest.approx(
            cut_default.throughput, rel=1e-6
        )

    def test_fiedler_vector_orthogonal_to_kernel(self, instance, monkeypatch):
        topo, _ = instance
        monkeypatch.setattr(spectral_mod, "SHIFT_INVERT_LIMIT", SPARSE_N - 1)
        _, vector, _ = spectral_mod._sparse_fiedler_pair(topo)
        assert abs(float(np.sum(vector))) < 1e-6
        assert np.linalg.norm(vector) == pytest.approx(1.0, abs=1e-9)
