"""Evaluation service: grid memo, daemon socket protocol, CLI client."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.exceptions import ExperimentError
from repro.flow.solvers import SolverConfig
from repro.pipeline.engine import run_grid
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.service import EvalService, ServiceClient, grid_digest, serve


def small_grid(**overrides) -> ScenarioGrid:
    kwargs = dict(
        name="service-test",
        topologies=(
            TopologySpec.make("rrg", network_degree=4, servers_per_switch=2),
        ),
        traffics=(TrafficSpec.make("permutation"),),
        solvers=(SolverConfig("ecmp"),),
        sizes=(8, 10),
        seeds=1,
    )
    kwargs.update(overrides)
    return ScenarioGrid(**kwargs)


class TestGridMemo:
    def test_digest_is_stable_and_batch_sensitive(self):
        assert grid_digest(small_grid()) == grid_digest(small_grid())
        assert grid_digest(small_grid()) != grid_digest(
            small_grid(), batch=False
        )
        assert grid_digest(small_grid()) != grid_digest(
            small_grid(name="other")
        )

    def test_second_submit_answers_from_memo(self, tmp_path):
        grid = small_grid()
        with EvalService(workers=1, cache_dir=str(tmp_path)) as service:
            job_id, handle, cached = service.submit(grid)
            assert cached is None
            first = handle.result(timeout=60)
            _, handle2, cached2 = service.submit(grid)
            assert handle2 is None and cached2 is not None
            assert all(cell.cache_hit for cell in cached2)
            assert [c.throughput for c in cached2] == [
                c.throughput for c in first
            ]
            assert service.stats()["memo_answers"] == 1

    def test_memo_survives_restart_without_spawning_workers(self, tmp_path):
        grid = small_grid()
        with EvalService(workers=1, cache_dir=str(tmp_path)) as warmup:
            _, handle, _ = warmup.submit(grid)
            handle.result(timeout=60)
        # Fresh service, multi-worker: the persisted memo answers before
        # the lazy process pool ever spawns.
        with EvalService(workers=4, cache_dir=str(tmp_path)) as service:
            _, handle, cached = service.submit(grid)
            assert handle is None and cached is not None
            assert service.executor.started is False
            assert service.executor.worker_pids() == ()

    def test_memo_distrusts_pruned_cache(self, tmp_path):
        grid = small_grid()
        with EvalService(workers=1, cache_dir=str(tmp_path)) as warmup:
            _, handle, _ = warmup.submit(grid)
            cells = handle.result(timeout=60)
        # Prune one underlying solve from the content-addressed store.
        with EvalService(workers=1, cache_dir=str(tmp_path)) as service:
            victim = service.cache._path(cells[0].key)
            victim.unlink()
            assert service.lookup_cached(grid) is None

    def test_uncached_service_has_no_persistent_memo(self):
        grid = small_grid(sizes=(8,))
        with EvalService(workers=1) as service:
            _, handle, _ = service.submit(grid)
            handle.result(timeout=60)
            # In-process memo still answers...
            assert service.lookup_cached(grid) is not None
        with EvalService(workers=1) as fresh:
            assert fresh.lookup_cached(grid) is None

    def test_cancel_unknown_job(self, tmp_path):
        with EvalService(workers=1) as service:
            assert service.cancel("nope") is False


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on a unix socket, torn down via shutdown request."""
    socket_path = str(tmp_path / "eval.sock")
    ready = threading.Event()
    thread = threading.Thread(
        target=serve,
        args=(socket_path,),
        kwargs=dict(
            workers=1,
            cache_dir=str(tmp_path / "cache"),
            ready=ready.set,
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(30), "daemon did not come up"
    yield socket_path
    try:
        ServiceClient(socket_path, timeout=10).shutdown()
    except ExperimentError:
        pass
    thread.join(timeout=30)


class TestDaemon:
    def test_ping_and_stats(self, daemon):
        client = ServiceClient(daemon)
        assert client.ping()["event"] == "pong"
        stats = client.stats()
        assert stats["submitted"] == 0
        assert "scheduler" in stats

    def test_submit_streams_cells_then_done(self, daemon):
        client = ServiceClient(daemon)
        events = []
        done = client.submit(
            small_grid().to_dict(), on_event=lambda m: events.append(m)
        )
        assert done["status"] == "done"
        assert not done["cached"]
        assert len(done["rows"]) == len(small_grid())
        kinds = [m["event"] for m in events]
        assert kinds[0] == "accepted"
        assert kinds.count("cell") == len(small_grid())
        assert kinds[-1] == "done"
        # Rows carry the full CellResult record.
        reference = run_grid(small_grid())
        assert [row["throughput"] for row in done["rows"]] == [
            cell.throughput for cell in reference.cells
        ]

    def test_warm_resubmit_is_cached_with_zero_solves(self, daemon):
        client = ServiceClient(daemon)
        client.submit(small_grid().to_dict())
        start = time.perf_counter()
        done = client.submit(small_grid().to_dict())
        elapsed = time.perf_counter() - start
        assert done["cached"]
        assert done["solve_counts"]["re_solved"] == 0
        assert all(row["cache_hit"] for row in done["rows"])
        # Round trip including socket overhead stays interactive.
        assert elapsed < 1.0

    def test_interactive_priority_accepted(self, daemon):
        client = ServiceClient(daemon)
        done = client.submit(
            small_grid(sizes=(8,)).to_dict(), priority="interactive"
        )
        assert done["status"] == "done"

    def test_bad_grid_is_an_error(self, daemon):
        client = ServiceClient(daemon)
        with pytest.raises(ExperimentError, match="bad submit"):
            client.submit({"nonsense": True})

    def test_status_of_unknown_job(self, daemon):
        client = ServiceClient(daemon)
        response = client.status("missing")
        assert response["event"] == "error"

    def test_unreachable_daemon_raises(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nowhere.sock"), timeout=2)
        with pytest.raises(ExperimentError, match="cannot reach"):
            client.ping()


class TestServeCli:
    def test_serve_and_submit_round_trip(self, tmp_path, capsys):
        from repro.experiments.runner import main

        socket_path = str(tmp_path / "cli.sock")
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(small_grid(sizes=(8,)).to_dict()))
        thread = threading.Thread(
            target=main,
            args=(
                [
                    "serve",
                    "--socket", socket_path,
                    "--workers", "1",
                    "--cache-dir", str(tmp_path / "cache"),
                ],
            ),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 30
        client = ServiceClient(socket_path, timeout=10)
        while time.monotonic() < deadline:
            try:
                client.ping()
                break
            except ExperimentError:
                time.sleep(0.05)
        else:
            raise AssertionError("daemon did not come up")
        try:
            code = main(
                ["submit", "--socket", socket_path, "--grid", str(grid_path)]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "cells (queued)" in out
            assert "done in" in out
            code = main(
                ["submit", "--socket", socket_path, "--grid", str(grid_path),
                 "--quiet"]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "0 solves" in out
            assert "(memo answer)" in out
        finally:
            client.shutdown()
            thread.join(timeout=30)


class _DisciplinedWriter:
    """Fake transport that enforces one ``drain`` await per ``write``.

    ``pending`` would exceed 1 if the daemon ever queued a second message
    without honoring backpressure on the first — exactly the bug the
    uniform drain discipline exists to prevent.
    """

    def __init__(self) -> None:
        self.messages: list = []
        self.pending = 0
        self.max_pending = 0

    def write(self, data: bytes) -> None:
        self.pending += 1
        self.max_pending = max(self.max_pending, self.pending)
        self.messages.append(json.loads(data))

    async def drain(self) -> None:
        self.pending -= 1


class _PausedWriter(_DisciplinedWriter):
    """A reader that has stopped consuming: ``drain`` blocks on a gate."""

    def __init__(self) -> None:
        super().__init__()
        import asyncio

        self.gate = asyncio.Event()

    async def drain(self) -> None:
        await self.gate.wait()
        await super().drain()


class TestDaemonBackpressure:
    def _daemon(self, tmp_path):
        from repro.service.daemon import EvalDaemon

        service = EvalService(workers=1, cache_dir=str(tmp_path / "cache"))
        return service, EvalDaemon(service, str(tmp_path / "ignored.sock"))

    def test_every_reply_drains_before_the_next_write(self, tmp_path):
        """All socket paths — including the memo cell burst — drain per write."""
        import asyncio

        grid = small_grid()
        service, daemon = self._daemon(tmp_path)
        with service:
            _, handle, _ = service.submit(grid)
            handle.result(timeout=60)

            async def scenario() -> _DisciplinedWriter:
                writer = _DisciplinedWriter()
                for request in (
                    {"op": "ping"},
                    {"op": "stats"},
                    {"op": "status", "job_id": "nope"},
                    {"op": "wat"},
                    {"op": "submit"},  # missing grid -> error reply
                    {"op": "submit", "grid": grid.to_dict()},  # memo burst
                ):
                    await daemon._dispatch(request, writer)
                return writer

            writer = asyncio.run(scenario())
        assert writer.pending == 0
        assert writer.max_pending == 1, (
            "a reply was written without awaiting drain on the previous one"
        )
        events = [m.get("event") for m in writer.messages]
        assert events[-1] == "done"
        assert events.count("cell") == len(grid)

    def test_paused_reader_pauses_the_cell_stream(self, tmp_path):
        """With a stalled reader the daemon blocks in drain instead of
        buffering the remaining cells into process memory."""
        import asyncio

        grid = small_grid()
        service, daemon = self._daemon(tmp_path)
        with service:
            _, handle, _ = service.submit(grid)
            handle.result(timeout=60)

            async def scenario() -> tuple:
                writer = _PausedWriter()
                task = asyncio.create_task(
                    daemon._dispatch(
                        {"op": "submit", "grid": grid.to_dict()}, writer
                    )
                )
                await asyncio.sleep(0.05)
                stalled = list(writer.messages)
                writer.gate.set()
                await asyncio.wait_for(task, timeout=30)
                return stalled, writer

            stalled, writer = asyncio.run(scenario())
        # Only the first message went out before the reader stalled.
        assert len(stalled) == 1 and stalled[0]["event"] == "accepted"
        # Resuming the reader delivers the full stream, nothing dropped.
        events = [m.get("event") for m in writer.messages]
        assert events[0] == "accepted" and events[-1] == "done"
        assert events.count("cell") == len(grid)
