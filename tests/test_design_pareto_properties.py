"""Property tests pinning the incremental Pareto frontier invariants.

The designer's frontier must be *exactly* the non-dominated subset of
everything ever offered, regardless of insertion order — these tests
check both invariants against a brute-force reference on random point
clouds, plus the dominance relation's own algebra.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import DESIGN_AXES, ParetoFrontier, dominates
from repro.exceptions import DesignError

AXES = dict(DESIGN_AXES)

# Small integer coordinates so ties and dominance both occur often.
_point = st.fixed_dictionaries(
    {
        "cost": st.integers(min_value=0, max_value=6).map(float),
        "throughput": st.integers(min_value=0, max_value=6).map(float),
        "resilience": st.integers(min_value=0, max_value=6).map(float),
        "churn": st.integers(min_value=0, max_value=6).map(float),
    }
)
_clouds = st.lists(_point, min_size=1, max_size=24)


def _brute_force_frontier(points: list) -> list:
    """Indices of the non-dominated points (duplicates all survive)."""
    out = []
    for i, p in enumerate(points):
        if not any(dominates(q, p, AXES) for q in points):
            out.append(i)
    return out


def _insert_all(points: list, order: "list[int] | None" = None):
    frontier = ParetoFrontier(axes=dict(AXES))
    for index in order if order is not None else range(len(points)):
        frontier.insert(points[index], item=index)
    return frontier


class TestFrontierInvariants:
    @given(_clouds)
    @settings(max_examples=80, deadline=None)
    def test_frontier_is_exactly_the_nondominated_set(self, points):
        frontier = _insert_all(points)
        expected = _brute_force_frontier(points)
        # Values must match as a multiset (duplicate points coexist).
        got = sorted(
            tuple(sorted(e.values_dict().items())) for e in frontier
        )
        want = sorted(
            tuple(sorted(points[i].items())) for i in expected
        )
        assert got == want

    @given(_clouds, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_order_independence(self, points, rand):
        order = list(range(len(points)))
        rand.shuffle(order)
        straight = _insert_all(points)
        shuffled = _insert_all(points, order)
        key = lambda e: tuple(sorted(e.values_dict().items()))  # noqa: E731
        assert sorted(map(key, straight)) == sorted(map(key, shuffled))

    @given(_clouds)
    @settings(max_examples=60, deadline=None)
    def test_offered_points_are_conserved(self, points):
        frontier = _insert_all(points)
        assert len(frontier) + frontier.dominated_count == len(points)

    @given(_clouds)
    @settings(max_examples=60, deadline=None)
    def test_no_frontier_point_dominates_another(self, points):
        frontier = _insert_all(points)
        entries = [e.values_dict() for e in frontier]
        for a in entries:
            for b in entries:
                assert not dominates(a, b, AXES)


class TestDominanceAlgebra:
    @given(_point)
    @settings(max_examples=40, deadline=None)
    def test_irreflexive(self, p):
        assert not dominates(p, p, AXES)

    @given(_point, _point)
    @settings(max_examples=60, deadline=None)
    def test_asymmetric(self, p, q):
        assert not (dominates(p, q, AXES) and dominates(q, p, AXES))

    @given(_point, _point, _point)
    @settings(max_examples=60, deadline=None)
    def test_transitive(self, p, q, r):
        if dominates(p, q, AXES) and dominates(q, r, AXES):
            assert dominates(p, r, AXES)


class TestValidation:
    def test_missing_axis_rejected(self):
        frontier = ParetoFrontier(axes={"cost": "min"})
        with pytest.raises(DesignError, match="misses axis"):
            frontier.insert({"throughput": 1.0})

    def test_nan_rejected(self):
        with pytest.raises(DesignError, match="NaN"):
            dominates({"cost": float("nan")}, {"cost": 1.0}, {"cost": "min"})

    def test_bad_direction_rejected(self):
        with pytest.raises(DesignError, match="direction"):
            ParetoFrontier(axes={"cost": "down"})

    def test_empty_axes_rejected(self):
        with pytest.raises(DesignError, match="at least one axis"):
            ParetoFrontier(axes={})

    def test_insert_reports_admission(self):
        frontier = ParetoFrontier(axes={"cost": "min", "throughput": "max"})
        assert frontier.insert({"cost": 10.0, "throughput": 1.0}, "a")
        assert not frontier.insert({"cost": 11.0, "throughput": 0.9}, "b")
        assert frontier.insert({"cost": 9.0, "throughput": 2.0}, "c")
        assert frontier.items() == ["c"]
        assert frontier.dominated_count == 2
