"""Tests for path metrics and Yen's k-shortest paths."""

from __future__ import annotations

from itertools import islice

import networkx as nx
import pytest

from repro.exceptions import TopologyError
from repro.metrics.paths import (
    DemandHopTracker,
    all_pairs_shortest_lengths,
    all_shortest_paths,
    average_shortest_path_length,
    demand_hop_sum,
    demand_weighted_aspl,
    diameter,
    k_shortest_paths,
    path_length_histogram,
    shortest_path_lengths_from,
)
from repro.topology.base import Topology
from repro.topology.hypercube import hypercube_topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.base import TrafficMatrix


class TestShortestLengths:
    def test_bfs_from_source(self, triangle):
        assert shortest_path_lengths_from(triangle, 0) == {0: 0, 1: 1, 2: 1}

    def test_unknown_source_rejected(self, triangle):
        with pytest.raises(TopologyError, match="does not exist"):
            shortest_path_lengths_from(triangle, "missing")

    def test_matches_networkx(self):
        topo = random_regular_topology(16, 4, seed=5)
        graph = topo.to_networkx()
        ours = all_pairs_shortest_lengths(topo)
        theirs = dict(nx.all_pairs_shortest_path_length(graph))
        for u in topo.switches:
            assert ours[u] == dict(theirs[u])

    def test_aspl_matches_networkx(self):
        topo = random_regular_topology(14, 4, seed=6)
        assert average_shortest_path_length(topo) == pytest.approx(
            nx.average_shortest_path_length(topo.to_networkx())
        )

    def test_aspl_requires_connected(self):
        topo = Topology("disc")
        topo.add_switch(0)
        topo.add_switch(1)
        with pytest.raises(TopologyError, match="disconnected|undefined"):
            average_shortest_path_length(topo)

    def test_diameter_matches_networkx(self):
        topo = random_regular_topology(14, 3, seed=7)
        assert diameter(topo) == nx.diameter(topo.to_networkx())

    def test_histogram_totals(self, triangle):
        hist = path_length_histogram(triangle)
        assert hist == {1: 6}
        cube = hypercube_topology(3)
        hist = path_length_histogram(cube)
        assert sum(hist.values()) == 8 * 7


class TestDemandWeightedAspl:
    def test_weighting(self):
        topo = Topology("path3")
        for v in range(3):
            topo.add_switch(v, servers=1)
        topo.add_link(0, 1)
        topo.add_link(1, 2)
        tm = TrafficMatrix(
            name="w",
            demands={(0, 1): 1.0, (0, 2): 3.0},
            num_flows=4,
        )
        # (1*1 + 3*2) / 4 = 1.75
        assert demand_weighted_aspl(topo, tm) == pytest.approx(1.75)

    def test_unroutable_demand_rejected(self):
        topo = Topology("disc")
        topo.add_switch(0)
        topo.add_switch(1)
        tm = TrafficMatrix(name="x", demands={(0, 1): 1.0}, num_flows=1)
        with pytest.raises(TopologyError, match="no path"):
            demand_weighted_aspl(topo, tm)


class TestDemandHopTracker:
    """Incremental hop-sum == full recompute, re-pricing touched sources."""

    def _timeline_instance(self, seed: int = 5, steps: int = 10):
        from repro.traffic.vdc import vdc_timeline

        topo = random_regular_topology(
            12, 4, servers_per_switch=3, seed=seed
        )
        timeline = vdc_timeline(
            topo,
            seed=seed,
            steps=steps,
            arrival_rate=1.5,
            mean_vms=4.0,
            mean_duration=6.0,
        )
        return topo, timeline

    def test_initial_total_matches_full_sum(self):
        topo, timeline = self._timeline_instance()
        tracker = DemandHopTracker(topo, timeline.base)
        assert tracker.total == pytest.approx(
            demand_hop_sum(topo, timeline.base), abs=1e-9
        )

    def test_delta_stream_matches_full_recompute(self):
        topo, timeline = self._timeline_instance(seed=9)
        tracker = DemandHopTracker(topo, timeline.base)
        for step in range(1, timeline.num_steps):
            total = tracker.apply_delta(timeline.deltas[step - 1])
            assert total == pytest.approx(
                demand_hop_sum(topo, timeline.matrix_at(step)), abs=1e-9
            ), f"step {step}"

    def test_reprices_only_touched_sources(self):
        from repro.traffic.timeline import DemandDelta

        topo, timeline = self._timeline_instance(seed=2)
        tracker = DemandHopTracker(topo, timeline.base)
        priced = tracker.num_repriced
        assert priced == len({u for u, _ in timeline.base.demands})
        a = next(iter({u for u, _ in timeline.base.demands}))
        dest = next(v for v in topo.switches if v != a)
        tracker.apply_delta(DemandDelta.adding({(a, dest): 1.0}))
        assert tracker.num_repriced == priced + 1

    def test_invalid_deltas_leave_tracker_untouched(self):
        from repro.traffic.timeline import DemandDelta

        topo, timeline = self._timeline_instance(seed=3)
        tracker = DemandHopTracker(topo, timeline.base)
        total = tracker.total
        pair = next(iter(timeline.base.demands))
        units = timeline.base.demands[pair]
        with pytest.raises(TopologyError, match="negative"):
            tracker.apply_delta(
                DemandDelta.adding({pair: -(units + 5.0)})
            )
        with pytest.raises(TopologyError, match="not a switch"):
            tracker.apply_delta(
                DemandDelta.adding({("ghost", topo.switches[0]): 1.0})
            )
        assert tracker.total == pytest.approx(total)

    def test_empty_traffic_rejected(self):
        topo, _ = self._timeline_instance()
        with pytest.raises(TopologyError, match="no network demands"):
            DemandHopTracker(topo, TrafficMatrix(name="empty", demands={}))


class TestKShortestPaths:
    def test_lengths_non_decreasing_and_simple(self):
        topo = random_regular_topology(12, 3, seed=8)
        nodes = topo.switches
        paths = k_shortest_paths(topo, nodes[0], nodes[-1], 6)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        for path in paths:
            assert len(set(path)) == len(path)  # simple
            for a, b in zip(path[:-1], path[1:]):
                assert topo.has_link(a, b)
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_matches_networkx_shortest_simple_paths(self):
        topo = random_regular_topology(10, 3, seed=9)
        graph = topo.to_networkx()
        src, dst = topo.switches[0], topo.switches[5]
        ours = k_shortest_paths(topo, src, dst, 5)
        theirs = list(islice(nx.shortest_simple_paths(graph, src, dst), 5))
        assert [len(p) for p in ours] == [len(p) for p in theirs]

    def test_fewer_paths_than_k(self, path_two):
        paths = k_shortest_paths(path_two, "a", "b", 10)
        assert paths == [["a", "b"]]

    def test_disconnected_returns_empty(self):
        topo = Topology("disc")
        topo.add_switch(0)
        topo.add_switch(1)
        assert k_shortest_paths(topo, 0, 1, 3) == []

    def test_same_endpoints_rejected(self, triangle):
        with pytest.raises(TopologyError, match="differ"):
            k_shortest_paths(triangle, 0, 0, 2)

    def test_triangle_enumeration(self, triangle):
        paths = k_shortest_paths(triangle, 0, 1, 5)
        assert paths == [[0, 1], [0, 2, 1]]


class TestAllShortestPaths:
    def test_hypercube_counts(self):
        cube = hypercube_topology(3)
        # Antipodal nodes at distance 3 have 3! = 6 shortest paths.
        paths = list(all_shortest_paths(cube, 0, 7))
        assert len(paths) == 6
        assert all(len(p) == 4 for p in paths)

    def test_limit(self):
        cube = hypercube_topology(3)
        paths = list(all_shortest_paths(cube, 0, 7, limit=2))
        assert len(paths) == 2

    def test_unreachable_yields_nothing(self):
        topo = Topology("disc")
        topo.add_switch(0)
        topo.add_switch(1)
        assert list(all_shortest_paths(topo, 0, 1)) == []
