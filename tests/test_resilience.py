"""Failure specs, deterministic sampling, and degraded topology views."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.exceptions import ExperimentError, TopologyError
from repro.pipeline.fingerprint import topology_fingerprint
from repro.resilience import (
    DegradedTopology,
    FailureSpec,
    apply_failures,
    degraded_view,
    failure_seed,
)
from repro.topology.random_regular import random_regular_topology
from repro.topology.two_cluster import two_cluster_random_topology


@pytest.fixture
def rrg():
    return random_regular_topology(16, 4, servers_per_switch=3, seed=7)


class TestFailureSpec:
    def test_roundtrip(self):
        spec = FailureSpec.make("random_links", rate=0.05)
        assert FailureSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_hyphen_normalized(self):
        assert FailureSpec.make("random-links", rate=0.1).model == "random_links"

    def test_param_order_irrelevant(self):
        a = FailureSpec("correlated", 0.1, params=(("a", 1), ("b", 2)))
        b = FailureSpec("correlated", 0.1, params=(("b", 2), ("a", 1)))
        assert a == b
        assert hash(a) == hash(b)

    def test_unknown_model_rejected(self):
        with pytest.raises(ExperimentError, match="unknown failure model"):
            FailureSpec.make("meteor_strike", rate=0.5)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ExperimentError, match="rate"):
            FailureSpec.make("random_links", rate=1.5)
        with pytest.raises(ExperimentError, match="rate"):
            FailureSpec.make("random_links", rate=-0.1)

    def test_null_specs(self):
        assert FailureSpec.none().is_null()
        assert FailureSpec.make("random_links", rate=0.0).is_null()
        assert not FailureSpec.make("random_links", rate=0.01).is_null()

    def test_labels(self):
        assert FailureSpec.none().label() == "none"
        assert FailureSpec.make("random_links", rate=0.05).label() == (
            "random_links@0.05"
        )

    def test_picklable(self):
        spec = FailureSpec.make("correlated", rate=0.1, cluster="small")
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestSampling:
    def test_deterministic_from_seed(self, rrg):
        spec = FailureSpec.make("random_links", rate=0.2)
        a = apply_failures(rrg, spec, seed=11)
        b = apply_failures(rrg, spec, seed=11)
        assert a.failed_links == b.failed_links

    def test_different_seeds_differ(self, rrg):
        spec = FailureSpec.make("random_links", rate=0.2)
        draws = {
            apply_failures(rrg, spec, seed=s).failed_links for s in range(6)
        }
        assert len(draws) > 1

    def test_nested_across_rates(self, rrg):
        low = apply_failures(
            rrg, FailureSpec.make("random_links", rate=0.05), seed=3
        )
        high = apply_failures(
            rrg, FailureSpec.make("random_links", rate=0.25), seed=3
        )
        assert set(low.failed_links) <= set(high.failed_links)

    def test_switch_failures_nested(self, rrg):
        low = apply_failures(
            rrg, FailureSpec.make("random_switches", rate=0.125), seed=3
        )
        high = apply_failures(
            rrg, FailureSpec.make("random_switches", rate=0.5), seed=3
        )
        assert set(low.failed_switches) <= set(high.failed_switches)

    def test_count_rounds(self, rrg):
        # 16 switches at rate 0.25 -> exactly 4 fail.
        degraded = apply_failures(
            rrg, FailureSpec.make("random_switches", rate=0.25), seed=0
        )
        assert degraded.num_failed_switches == 4
        assert degraded.num_switches == 12

    def test_failure_seed_ignores_rate(self):
        a = failure_seed(5, FailureSpec.make("random_links", rate=0.05))
        b = failure_seed(5, FailureSpec.make("random_links", rate=0.5))
        c = failure_seed(5, FailureSpec.make("random_switches", rate=0.05))
        assert a == b
        assert a != c

    def test_null_spec_returns_same_object(self, rrg):
        assert apply_failures(rrg, FailureSpec.none(), seed=1) is rrg
        assert (
            apply_failures(
                rrg, FailureSpec.make("random_links", rate=0.0), seed=1
            )
            is rrg
        )

    def test_correlated_failures_are_local(self, rrg):
        degraded = apply_failures(
            rrg, FailureSpec.make("correlated", rate=0.2), seed=5
        )
        # BFS-ball failures touch few distinct switches relative to a
        # uniform draw of the same size.
        touched = {v for link in degraded.failed_links for v in link}
        assert len(touched) <= 2 * len(degraded.failed_links)
        assert len(degraded.failed_links) == round(0.2 * rrg.num_links)

    def test_correlated_cluster_param(self):
        topo = two_cluster_random_topology(
            num_large=4,
            large_network_ports=6,
            num_small=8,
            small_network_ports=3,
            servers_per_large=4,
            servers_per_small=2,
            cross_fraction=1.0,
            seed=23,
        )
        cluster = topo.clusters()[0]
        spec = FailureSpec.make("correlated", rate=0.1, cluster=cluster)
        degraded = apply_failures(topo, spec, seed=2)
        # The epicenter sits in the requested cluster: the first failed
        # link is incident to it.
        first = degraded.failed_links[0]
        assert any(topo.cluster_of(v) == cluster for v in first)

    def test_correlated_unknown_cluster_rejected(self, rrg):
        spec = FailureSpec.make("correlated", rate=0.1, cluster="nope")
        with pytest.raises(ExperimentError, match="no switches in cluster"):
            apply_failures(rrg, spec, seed=1)


class TestDegradedView:
    def test_links_removed_both_orientations(self, rrg):
        degraded = apply_failures(
            rrg, FailureSpec.make("random_links", rate=0.2), seed=9
        )
        for u, v in degraded.failed_links:
            assert not degraded.has_link(u, v)
            assert not degraded.has_link(v, u)
            assert rrg.has_link(u, v)  # base untouched

    def test_switch_failure_removes_servers_and_links(self, rrg):
        degraded = apply_failures(
            rrg, FailureSpec.make("random_switches", rate=0.25), seed=9
        )
        for node in degraded.failed_switches:
            assert not degraded.has_switch(node)
        assert degraded.num_servers == rrg.num_servers - 3 * 4
        assert rrg.num_switches == 16  # base untouched

    def test_fingerprint_changes(self, rrg):
        degraded = apply_failures(
            rrg, FailureSpec.make("random_links", rate=0.1), seed=9
        )
        assert topology_fingerprint(degraded) != topology_fingerprint(rrg)

    def test_arcs_match_links(self, rrg):
        degraded = apply_failures(
            rrg, FailureSpec.make("random_links", rate=0.2), seed=9
        )
        assert len(degraded.arcs()) == 2 * degraded.num_links

    def test_view_is_read_only(self, rrg):
        degraded = apply_failures(
            rrg, FailureSpec.make("random_links", rate=0.1), seed=9
        )
        with pytest.raises(Exception):
            degraded.add_switch("new")

    def test_copy_is_mutable(self, rrg):
        degraded = apply_failures(
            rrg, FailureSpec.make("random_links", rate=0.1), seed=9
        )
        clone = degraded.copy()
        clone.add_switch("new")
        assert clone.num_switches == degraded.num_switches + 1

    def test_hand_built_view(self, rrg):
        link = rrg.links[0]
        view = degraded_view(rrg, failed_links=((link.u, link.v),))
        assert isinstance(view, DegradedTopology)
        assert view.num_links == rrg.num_links - 1

    def test_unknown_equipment_rejected(self, rrg):
        with pytest.raises(TopologyError, match="missing link"):
            degraded_view(rrg, failed_links=(("zz", "yy"),))
        with pytest.raises(TopologyError, match="missing switch"):
            degraded_view(rrg, failed_switches=("zz",))

    def test_non_spec_rejected(self, rrg):
        with pytest.raises(ExperimentError, match="FailureSpec"):
            apply_failures(rrg, "random_links", seed=1)
