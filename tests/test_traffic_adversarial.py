"""Tests for the adversarial longest-matching permutation."""

from __future__ import annotations

import pytest

from repro.exceptions import TrafficError
from repro.metrics.paths import demand_weighted_aspl
from repro.topology.base import Topology
from repro.topology.random_regular import random_regular_topology
from repro.topology.torus import torus_topology
from repro.traffic.adversarial import longest_matching_traffic
from repro.traffic.permutation import random_permutation_traffic


class TestLongestMatching:
    def test_is_permutation(self):
        topo = random_regular_topology(10, 3, servers_per_switch=2, seed=1)
        tm = longest_matching_traffic(topo, seed=2)
        sources = [src for src, _ in tm.server_pairs]
        destinations = [dst for _, dst in tm.server_pairs]
        assert len(set(sources)) == 20
        assert len(set(destinations)) == 20
        assert all(src != dst for src, dst in tm.server_pairs)

    def test_harder_than_random_permutation(self):
        """The adversarial matching travels farther on average than random
        permutations (that's its purpose)."""
        topo = torus_topology((4, 4), servers_per_switch=2)
        adversarial = longest_matching_traffic(topo, seed=3)
        random_tm = random_permutation_traffic(topo, seed=3)
        assert demand_weighted_aspl(topo, adversarial) > demand_weighted_aspl(
            topo, random_tm
        )

    def test_lowers_throughput(self):
        from repro.flow.edge_lp import max_concurrent_flow

        topo = torus_topology((4, 4), servers_per_switch=2)
        adversarial = longest_matching_traffic(topo, seed=4)
        random_tm = random_permutation_traffic(topo, seed=4)
        hard = max_concurrent_flow(topo, adversarial).throughput
        easy = max_concurrent_flow(topo, random_tm).throughput
        assert hard <= easy + 1e-9

    def test_antipodal_on_torus(self):
        # On a 4x4 torus with 1 server each, every server can be paired at
        # the full diameter (perfect antipodal matching exists).
        topo = torus_topology((4, 4), servers_per_switch=1)
        tm = longest_matching_traffic(topo, seed=5)
        mean_distance = demand_weighted_aspl(topo, tm)
        assert mean_distance == pytest.approx(4.0)

    def test_deterministic_given_seed(self):
        topo = random_regular_topology(8, 3, servers_per_switch=2, seed=6)
        a = longest_matching_traffic(topo, seed=7)
        b = longest_matching_traffic(topo, seed=7)
        assert a.server_pairs == b.server_pairs

    def test_needs_two_servers(self):
        topo = Topology("tiny")
        topo.add_switch(0, servers=1)
        with pytest.raises(TrafficError, match="at least 2"):
            longest_matching_traffic(topo)

    def test_disconnected_rejected(self):
        topo = Topology("disc")
        topo.add_switch(0, servers=1)
        topo.add_switch(1, servers=1)
        with pytest.raises(TrafficError, match="disconnected"):
            longest_matching_traffic(topo)

    def test_odd_server_count(self):
        topo = random_regular_topology(5, 2, servers_per_switch=1, seed=8)
        tm = longest_matching_traffic(topo, seed=9)
        assert tm.num_flows == 5
        assert all(src != dst for src, dst in tm.server_pairs)
