"""Tests for RRG construction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.topology.random_regular import random_regular_topology


class TestRandomRegular:
    def test_basic_structure(self):
        topo = random_regular_topology(12, 4, servers_per_switch=3, seed=1)
        assert topo.num_switches == 12
        assert topo.num_links == 24
        assert topo.num_servers == 36
        assert all(topo.degree(v) == 4 for v in topo.switches)

    def test_connected_by_default(self):
        for seed in range(5):
            topo = random_regular_topology(20, 3, seed=seed)
            assert topo.is_connected()

    def test_odd_stub_total_leaves_one_port(self):
        # N * r odd: 5 switches of degree 3 -> 15 stubs -> 7 links.
        topo = random_regular_topology(
            5, 3, seed=2, require_connected=False
        )
        assert topo.num_links == 7

    def test_degree_must_be_below_n(self):
        with pytest.raises(TopologyError, match="must be <"):
            random_regular_topology(5, 5)

    def test_degree_zero_allowed_disconnected(self):
        topo = random_regular_topology(3, 0, require_connected=False)
        assert topo.num_links == 0

    def test_custom_capacity(self):
        topo = random_regular_topology(8, 3, capacity=2.5, seed=3)
        link = topo.links[0]
        assert link.capacity == 2.5

    def test_deterministic_with_seed(self):
        a = random_regular_topology(14, 5, seed=9)
        b = random_regular_topology(14, 5, seed=9)
        edges_a = sorted((min(l.u, l.v), max(l.u, l.v)) for l in a.links)
        edges_b = sorted((min(l.u, l.v), max(l.u, l.v)) for l in b.links)
        assert edges_a == edges_b

    def test_name_defaults_to_parameters(self):
        topo = random_regular_topology(10, 4, seed=1)
        assert "N=10" in topo.name and "r=4" in topo.name

    @given(
        st.integers(min_value=6, max_value=24),
        st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_regularity_property(self, n, r):
        if r >= n:
            return
        topo = random_regular_topology(
            n, r, seed=0, require_connected=False
        )
        degrees = [topo.degree(v) for v in topo.switches]
        # All degrees equal r, except possibly one switch one short when
        # n * r is odd.
        short = [d for d in degrees if d != r]
        if (n * r) % 2 == 0:
            assert not short
        else:
            assert len(short) <= 2 and all(d == r - 1 for d in short)
