"""Tests for the degree-preserving mutation primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.topology.mutation import (
    DoubleEdgeSwap,
    apply_double_edge_swap,
    double_edge_swap,
    random_rewire,
    rewire_link,
    sample_double_edge_swap,
)
from repro.topology.random_regular import random_regular_topology
from repro.topology.smallworld import small_world_topology
from repro.util.rng import as_rng

_instances = st.tuples(
    st.integers(min_value=8, max_value=20),  # switches
    st.integers(min_value=3, max_value=5),   # degree
    st.integers(min_value=0, max_value=10_000),  # seed
)


def _edge_set(topo: Topology) -> set[frozenset]:
    return {frozenset((link.u, link.v)) for link in topo.links}


class TestDoubleEdgeSwap:
    def test_inverse_round_trips(self):
        swap = DoubleEdgeSwap("a", "b", "c", "d")
        assert swap.inverse().inverse() == swap
        assert set(swap.inverse().added) == {("a", "b"), ("c", "d")}

    @given(_instances)
    @settings(max_examples=12, deadline=None)
    def test_swap_preserves_structure(self, params):
        n, r, seed = params
        topo = random_regular_topology(n, r, seed=seed)
        degrees_before = {v: topo.degree(v) for v in topo.switches}
        links_before = topo.num_links
        capacity_before = topo.total_capacity
        rng = as_rng(seed + 1)
        swap = double_edge_swap(topo, rng=rng, preserve_connectivity=True)
        if swap is None:
            return
        assert {v: topo.degree(v) for v in topo.switches} == degrees_before
        assert topo.num_links == links_before
        assert topo.total_capacity == pytest.approx(capacity_before)
        assert topo.is_connected()

    @given(_instances)
    @settings(max_examples=10, deadline=None)
    def test_apply_then_inverse_is_identity(self, params):
        n, r, seed = params
        topo = random_regular_topology(n, r, seed=seed)
        before = _edge_set(topo)
        swap = sample_double_edge_swap(topo, rng=as_rng(seed + 1))
        if swap is None:
            return
        apply_double_edge_swap(topo, swap)
        assert _edge_set(topo) != before
        apply_double_edge_swap(topo, swap.inverse())
        assert _edge_set(topo) == before

    def test_apply_validates_missing_link(self, triangle):
        triangle.add_switch(3, servers=1)
        triangle.add_switch(4, servers=1)
        with pytest.raises(TopologyError, match="missing link"):
            apply_double_edge_swap(triangle, DoubleEdgeSwap(0, 1, 3, 4))

    def test_apply_validates_existing_link(self):
        topo = Topology()
        for v in range(4):
            topo.add_switch(v)
        for u, v in ((0, 1), (2, 3), (0, 3)):
            topo.add_link(u, v)
        with pytest.raises(TopologyError, match="existing link"):
            apply_double_edge_swap(topo, DoubleEdgeSwap(0, 1, 2, 3))

    def test_apply_validates_distinct_endpoints(self, triangle):
        with pytest.raises(TopologyError, match="distinct"):
            apply_double_edge_swap(triangle, DoubleEdgeSwap(0, 1, 1, 2))

    def test_sample_returns_none_without_valid_swap(self):
        star = Topology()
        star.add_switch("hub")
        for leaf in range(3):
            star.add_switch(leaf)
            star.add_link("hub", leaf)
        assert sample_double_edge_swap(star, rng=as_rng(0)) is None

    def test_sample_returns_none_on_complete_graph(self):
        from repro.topology.complete import complete_topology

        topo = complete_topology(5)
        assert sample_double_edge_swap(topo, rng=as_rng(0)) is None

    def test_connectivity_preserved_on_bridge_graphs(self):
        # Two triangles joined by one bridge: many swaps disconnect; the
        # preserving variant must never commit one.
        topo = Topology()
        for v in range(6):
            topo.add_switch(v)
        for u, v in ((0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)):
            topo.add_link(u, v)
        rng = as_rng(5)
        for _ in range(20):
            double_edge_swap(topo, rng=rng, preserve_connectivity=True)
            assert topo.is_connected()


class TestRandomRewire:
    def test_preserves_degrees_and_connectivity(self):
        topo = random_regular_topology(20, 4, seed=0)
        degrees = {v: topo.degree(v) for v in topo.switches}
        swaps = random_rewire(topo, 30, seed=1)
        assert len(swaps) == 30
        assert {v: topo.degree(v) for v in topo.switches} == degrees
        assert topo.is_connected()

    def test_deterministic_for_seed(self):
        a = random_regular_topology(16, 4, seed=0)
        b = random_regular_topology(16, 4, seed=0)
        random_rewire(a, 15, seed=9)
        random_rewire(b, 15, seed=9)
        assert _edge_set(a) == _edge_set(b)

    def test_zero_swaps_is_noop(self):
        topo = random_regular_topology(10, 3, seed=0)
        before = _edge_set(topo)
        assert random_rewire(topo, 0, seed=1) == []
        assert _edge_set(topo) == before


class TestRewireLink:
    def test_moves_capacity(self):
        topo = Topology()
        for v in range(3):
            topo.add_switch(v)
        topo.add_link(0, 1, capacity=2.5)
        rewire_link(topo, 0, 1, 2)
        assert not topo.has_link(0, 1)
        assert topo.capacity(0, 2) == pytest.approx(2.5)

    def test_rejects_self_loop_and_duplicates(self):
        topo = Topology()
        for v in range(3):
            topo.add_switch(v)
        topo.add_link(0, 1)
        topo.add_link(0, 2)
        with pytest.raises(TopologyError, match="self-loop"):
            rewire_link(topo, 0, 1, 0)
        with pytest.raises(TopologyError, match="already exists"):
            rewire_link(topo, 0, 1, 2)
        with pytest.raises(TopologyError, match="no link"):
            rewire_link(topo, 1, 2, 0)

    def test_smallworld_keeps_link_count_under_full_rewiring(self):
        topo = small_world_topology(30, 4, rewire_probability=1.0, seed=0)
        assert topo.num_links == 30 * 4 // 2
        assert sum(topo.degree(v) for v in topo.switches) == 30 * 4
