"""The growth experiment and the ``repro-experiments grow`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.experiments.growth import run_growth_study
from repro.experiments.registry import available_experiments, run_experiment
from repro.experiments.runner import main


@pytest.fixture(scope="module")
def study():
    return run_growth_study(
        start=12,
        target=32,
        num_stages=2,
        network_degree=4,
        servers_per_switch=2,
        strategies=("swap", "fattree_upgrade"),
        runs=2,
        seed=0,
    )


class TestGrowthStudy:
    def test_registered(self):
        assert "growth" in available_experiments()

    def test_series_per_strategy_plus_granularity(self, study):
        names = {s.name for s in study.series}
        assert names == {
            "swap",
            "fattree_upgrade",
            "swap/servers",
            "fattree_upgrade/servers",
        }
        for series in study.series:
            assert [p.x for p in series.sorted_points()] == [12.0, 20.0, 32.0]

    def test_granularity_gap(self, study):
        """The paper's claim at matched budgets: the random fabric's
        server count climbs smoothly, the ladder's is a step function."""
        rrg = study.get_series("swap/servers").ys()
        ladder = study.get_series("fattree_upgrade/servers").ys()
        assert rrg == sorted(rrg)
        assert len(set(rrg)) == len(rrg)  # strictly increasing
        assert len(set(ladder)) < len(ladder)  # a repeated rung
        idle = study.metadata["churn"]["fattree_upgrade"]
        assert any(cell["idle_switches"] > 0 for cell in idle.values())
        assert all(
            cell["idle_switches"] == 0
            for cell in study.metadata["churn"]["swap"].values()
        )

    def test_churn_metadata(self, study):
        swap_churn = study.metadata["churn"]["swap"]
        assert set(swap_churn) == {12, 20, 32}
        final = swap_churn[32]
        assert final["links_touched"] > 0
        assert final["cumulative_links_touched"] >= final["links_touched"]
        assert final["cable_length"] > 0

    def test_estimator_path_calibrates(self):
        result = run_growth_study(
            start=12,
            target=32,
            num_stages=1,
            network_degree=4,
            servers_per_switch=2,
            strategies=("swap",),
            exact_limit=16,
            runs=1,
        )
        assert result.metadata["calibration"] is not None
        summary = result.metadata["stage_summary"]
        assert summary[0]["target_switches"] == 12
        # Beyond the exact limit the throughput column is an estimate.
        assert result.get_series("swap").y_at(32) > 0

    def test_exact_path_skips_calibration(self, study):
        assert study.metadata["calibration"] is None

    def test_runs_via_registry(self):
        result = run_experiment(
            "growth",
            start=12,
            target=20,
            num_stages=1,
            network_degree=4,
            servers_per_switch=2,
            strategies=("swap",),
            runs=1,
        )
        assert result.experiment_id == "growth"

    def test_rejects_empty_strategies(self):
        with pytest.raises(Exception, match="at least one strategy"):
            run_growth_study(strategies=())


class TestGrowCli:
    def test_grow_writes_artifacts(self, tmp_path, capsys):
        json_path = tmp_path / "g.json"
        csv_path = tmp_path / "g.csv"
        code = main(
            [
                "grow",
                "--name", "cli-growth",
                "--start", "12",
                "--target", "20",
                "--stages", "1",
                "--degree", "4",
                "--servers-per-switch", "2",
                "--strategies", "swap",
                "--seeds", "1",
                "--json", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "growth 'cli-growth'" in out
        assert "final throughput" in out
        payload = json.loads(json_path.read_text())
        assert payload["schedule"]["name"] == "cli-growth"
        assert len(payload["trajectories"]) == 1
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 3  # header + 2 stages

    def test_grow_schedule_file(self, tmp_path, capsys):
        from repro.growth.plan import GrowthSchedule

        schedule = GrowthSchedule.from_targets(
            (12, 16), name="from-file", network_degree=4,
            servers_per_switch=1,
        )
        path = tmp_path / "schedule.json"
        path.write_text(json.dumps(schedule.to_dict()))
        code = main(
            ["grow", "--schedule", str(path), "--strategies", "swap",
             "--quiet"]
        )
        assert code == 0
        assert "'from-file'" in capsys.readouterr().out

    def test_grow_warm_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = [
            "grow", "--start", "12", "--target", "16", "--stages", "1",
            "--degree", "4", "--servers-per-switch", "1",
            "--strategies", "swap", "--cache-dir", cache_dir, "--quiet",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "2 cache hits" in capsys.readouterr().out
