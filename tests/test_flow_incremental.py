"""Differential and property tests for the reusable :class:`EdgeLPModel`.

The incremental model exists to replace a cold
:func:`~repro.flow.edge_lp.max_concurrent_flow` rebuild per annealing
swap; its entire correctness contract is "after any sequence of
``apply_swap`` calls, the model's optimum equals a cold solve of the
mutated topology". The differential matrix here pins that at 1e-9 over
random swap walks, and the property tests pin the structural invariants
the fixed-layout CSC mutation relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FlowError
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.incremental import (
    DEFAULT_METHOD,
    EdgeLPModel,
    model_for,
    model_stats,
    reset_model_stats,
)
from repro.topology.mutation import (
    DoubleEdgeSwap,
    apply_double_edge_swap,
    double_edge_swap,
)
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic

TOL = 1e-9


def _instance(num_switches: int, degree: int = 4, seed: int = 0):
    topo = random_regular_topology(
        num_switches, degree, servers_per_switch=2, seed=seed
    )
    traffic = random_permutation_traffic(topo, seed=seed + 100)
    return topo, traffic


class TestDifferentialMatrix:
    """Mutated-model optima == cold solves, across sizes and swap walks."""

    @pytest.mark.parametrize("num_switches", [8, 12, 16])
    def test_swap_walk_matches_cold_solves(self, num_switches):
        topo, traffic = _instance(num_switches, seed=num_switches)
        model = EdgeLPModel(topo, traffic)
        assert abs(
            model.solve() - max_concurrent_flow(topo, traffic).throughput
        ) <= TOL
        rng = np.random.default_rng(num_switches * 7 + 1)
        applied = 0
        while applied < 6:
            swap = double_edge_swap(topo, rng=rng)
            if swap is None:
                break
            model.apply_swap(swap)
            applied += 1
            cold = max_concurrent_flow(topo, traffic).throughput
            assert abs(model.solve() - cold) <= TOL, (
                f"N={num_switches} swap #{applied}"
            )
        assert applied >= 3, "walk sampled too few valid swaps"

    def test_revert_restores_original_optimum(self):
        topo, traffic = _instance(12, seed=3)
        model = EdgeLPModel(topo, traffic)
        base = model.solve()
        rng = np.random.default_rng(5)
        swap = double_edge_swap(topo, rng=rng)
        assert swap is not None
        model.apply_swap(swap)
        model.apply_swap(swap.inverse())
        assert abs(model.solve() - base) <= TOL

    def test_solve_result_matches_cold_result(self):
        topo, traffic = _instance(12, seed=4)
        model = EdgeLPModel(topo, traffic)
        rng = np.random.default_rng(6)
        swap = double_edge_swap(topo, rng=rng)
        assert swap is not None
        model.apply_swap(swap)
        warm = model.solve_result()
        cold = max_concurrent_flow(topo, traffic)
        assert abs(warm.throughput - cold.throughput) <= TOL
        assert warm.exact
        assert set(warm.arc_capacities) == set(cold.arc_capacities)
        assert warm.total_demand == cold.total_demand


class TestSwapMutation:
    def test_apply_swap_rejects_missing_removed_arc(self):
        topo, traffic = _instance(12, seed=1)
        model = EdgeLPModel(topo, traffic)
        nodes = topo.switches
        absent = next(
            (u, v)
            for u in nodes
            for v in nodes
            if u != v and not topo.has_link(u, v)
        )
        swap = DoubleEdgeSwap(absent[0], absent[1], nodes[2], nodes[3])
        before = model.arcs()
        with pytest.raises(FlowError, match="removes missing arc"):
            model.apply_swap(swap)
        assert model.arcs() == before
        assert model.num_swaps == 0

    def test_apply_swap_rejects_existing_added_arc(self):
        topo, traffic = _instance(12, seed=2)
        model = EdgeLPModel(topo, traffic)
        link1, link2 = topo.links[0], topo.links[1]
        a, b = link1.u, link1.v
        # Find a link (c, d) where (a, d) already exists.
        candidate = None
        for link in topo.links[1:]:
            c, d = link.u, link.v
            if len({a, b, c, d}) == 4 and topo.has_link(a, d):
                candidate = (c, d)
                break
        if candidate is None:
            pytest.skip("no collision-inducing swap in this instance")
        swap = DoubleEdgeSwap(a, b, *candidate)
        with pytest.raises(FlowError, match="adds existing arc"):
            model.apply_swap(swap)

    def test_copy_is_independent(self):
        topo, traffic = _instance(12, seed=5)
        model = EdgeLPModel(topo, traffic)
        clone = model.copy()
        rng = np.random.default_rng(9)
        swap = double_edge_swap(topo, rng=rng)
        assert swap is not None
        clone.apply_swap(swap)
        # Original still solves the unswapped instance.
        original = random_regular_topology(12, 4, servers_per_switch=2, seed=5)
        cold = max_concurrent_flow(
            original, random_permutation_traffic(original, seed=105)
        ).throughput
        assert abs(model.solve() - cold) <= TOL
        assert abs(
            clone.solve() - max_concurrent_flow(topo, traffic).throughput
        ) <= TOL


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), num_swaps=st.integers(1, 8))
def test_structure_invariant_under_swaps(seed, num_swaps):
    """Shape, nnz, capacities, and b_ub never move under swap walks."""
    topo, traffic = _instance(10, seed=17)
    model = EdgeLPModel(topo, traffic)
    shape, nnz = model.shape, model.nnz
    capacities = model._capacities.copy()
    rng = np.random.default_rng(seed)
    for _ in range(num_swaps):
        swap = double_edge_swap(topo, rng=rng)
        if swap is None:
            break
        model.apply_swap(swap)
    assert model.shape == shape
    assert model.nnz == nnz
    assert np.array_equal(model._capacities, capacities)
    # The model's arc set tracks the mutated topology exactly.
    model_arcs = {(u, v) for u, v, _ in model.arcs()}
    topo_arcs = {(u, v) for u, v, _ in topo.arcs()}
    assert model_arcs == topo_arcs


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_inverse_swap_restores_indices(seed):
    topo, traffic = _instance(10, seed=23)
    model = EdgeLPModel(topo, traffic)
    indices = model._eq_indices.copy()
    rng = np.random.default_rng(seed)
    swap = double_edge_swap(topo, rng=rng)
    if swap is None:
        return
    model.apply_swap(swap)
    model.apply_swap(swap.inverse())
    apply_double_edge_swap(topo, swap.inverse())
    assert np.array_equal(model._eq_indices, indices)


class TestDemandDeltas:
    """Warm demand-delta application == cold rebuilds, plus slot rules."""

    def _timeline_instance(self, seed: int = 11, steps: int = 12):
        from repro.traffic.vdc import vdc_timeline

        topo = random_regular_topology(
            12, 4, servers_per_switch=3, seed=seed
        )
        timeline = vdc_timeline(
            topo,
            seed=seed,
            steps=steps,
            arrival_rate=1.5,
            mean_vms=4.0,
            mean_duration=6.0,
        )
        return topo, timeline

    def test_delta_stream_matches_cold_solves(self):
        """Warm-advance a VDC trace; every step equals a cold solve."""
        topo, timeline = self._timeline_instance()
        model = EdgeLPModel(topo, timeline.base, sources="all")
        for step in range(1, timeline.num_steps):
            model.apply_demand_delta(timeline.deltas[step - 1])
            cold = max_concurrent_flow(topo, timeline.matrix_at(step))
            assert abs(model.solve() - cold.throughput) <= TOL, f"step {step}"
            assert model.total_demand == pytest.approx(
                sum(timeline.matrix_at(step).demands.values())
            )
        assert model.num_demand_deltas == timeline.num_steps - 1

    def test_apply_then_inverse_restores_csc_arrays(self):
        from repro.traffic.timeline import DemandDelta

        topo, timeline = self._timeline_instance(seed=3)
        model = EdgeLPModel(topo, timeline.base, sources="all")
        data = model._eq_data.copy()
        indices = model._eq_indices.copy()
        indptr = model._eq_indptr.copy()
        total = model.total_demand
        switches = topo.switches
        delta = DemandDelta.adding(
            {(switches[0], switches[5]): 2.0, (switches[1], switches[2]): 1.0}
        )
        model.apply_demand_delta(delta)
        assert model.total_demand == pytest.approx(total + 3.0)
        model.apply_demand_delta(delta.inverse())
        assert np.array_equal(model._eq_data, data)
        assert np.array_equal(model._eq_indices, indices)
        assert np.array_equal(model._eq_indptr, indptr)
        assert model.total_demand == pytest.approx(total)

    def test_new_source_needs_sources_all(self):
        from repro.traffic.base import TrafficMatrix
        from repro.traffic.timeline import DemandDelta

        topo = random_regular_topology(10, 4, servers_per_switch=2, seed=2)
        a, b, c = topo.switches[:3]
        traffic = TrafficMatrix(name="one", demands={(a, b): 2.0}, num_flows=2)
        delta = DemandDelta.adding({(c, a): 1.0})

        narrow = EdgeLPModel(topo, traffic)
        with pytest.raises(FlowError, match="new source"):
            narrow.apply_demand_delta(delta)

        wide = EdgeLPModel(topo, traffic, sources="all")
        wide.apply_demand_delta(delta)
        grown = delta.apply(traffic)
        cold = max_concurrent_flow(topo, grown)
        assert abs(wide.solve() - cold.throughput) <= TOL

    def test_invalid_deltas_leave_model_untouched(self):
        from repro.traffic.base import TrafficMatrix
        from repro.traffic.timeline import DemandDelta

        topo = random_regular_topology(10, 4, servers_per_switch=2, seed=4)
        a, b = topo.switches[:2]
        traffic = TrafficMatrix(name="one", demands={(a, b): 2.0}, num_flows=2)
        model = EdgeLPModel(topo, traffic, sources="all")
        base = model.solve()

        with pytest.raises(FlowError, match="negative"):
            model.apply_demand_delta(DemandDelta.adding({(a, b): -5.0}))
        with pytest.raises(FlowError, match="no network demand"):
            model.apply_demand_delta(DemandDelta.adding({(a, b): -2.0}))
        with pytest.raises(FlowError, match="not a switch"):
            model.apply_demand_delta(DemandDelta.adding({("nope", b): 1.0}))
        assert model.num_demand_deltas == 0
        assert abs(model.solve() - base) <= TOL

    def test_delta_counter_in_model_stats(self):
        from repro.traffic.timeline import DemandDelta

        reset_model_stats()
        topo, timeline = self._timeline_instance(seed=7, steps=4)
        model = EdgeLPModel(topo, timeline.base, sources="all")
        switches = topo.switches
        model.apply_demand_delta(
            DemandDelta.adding({(switches[0], switches[1]): 1.0})
        )
        assert model_stats()["demand_deltas"] == 1
        reset_model_stats()


class TestModelMemo:
    def test_model_for_memoizes_by_fingerprint(self):
        reset_model_stats()
        topo, traffic = _instance(8, seed=6)
        first = model_for(topo, traffic)
        again = model_for(topo.copy(), traffic)
        assert again is first
        stats = model_stats()
        assert stats["built"] == 1
        assert stats["memo_hits"] == 1
        reset_model_stats()

    def test_mutable_returns_private_copy(self):
        reset_model_stats()
        topo, traffic = _instance(8, seed=6)
        shared = model_for(topo, traffic)
        private = model_for(topo, traffic, mutable=True)
        assert private is not shared
        rng = np.random.default_rng(2)
        work = topo.copy()
        swap = double_edge_swap(work, rng=rng)
        assert swap is not None
        private.apply_swap(swap)
        # The memoized original still matches its fingerprint instance.
        assert {(u, v) for u, v, _ in shared.arcs()} == {
            (u, v) for u, v, _ in topo.arcs()
        }
        reset_model_stats()

    def test_method_is_part_of_the_key(self):
        reset_model_stats()
        topo, traffic = _instance(8, seed=6)
        ipm = model_for(topo, traffic, method=DEFAULT_METHOD)
        simplex = model_for(topo, traffic, method="highs")
        assert ipm is not simplex
        assert model_stats()["built"] == 2
        reset_model_stats()

    def test_empty_traffic_rejected(self):
        topo, _ = _instance(8, seed=6)
        from repro.traffic.base import TrafficMatrix

        with pytest.raises(FlowError, match="no network demands"):
            EdgeLPModel(topo, TrafficMatrix(name="empty", demands={}))
