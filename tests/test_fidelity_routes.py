"""Route-set precomputation: enumeration correctness and caching."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import FlowError, TopologyError
from repro.fidelity.routes import (
    RouteSet,
    canonical_pairs,
    compute_route_set,
    reset_route_stats,
    route_set_for,
    route_set_key,
    route_stats,
)
from repro.pipeline.cache import ResultCache, cache_context
from repro.topology.fattree import fat_tree_topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic


@pytest.fixture()
def instance():
    topo = random_regular_topology(12, 4, servers_per_switch=2, seed=3)
    traffic = random_permutation_traffic(topo, seed=4)
    return topo, tuple(traffic.demands)


def _distances(topo):
    return dict(nx.all_pairs_shortest_path_length(topo.graph))


def _is_simple(path) -> bool:
    return len(set(path)) == len(path)


def _is_valid(topo, path) -> bool:
    return all(topo.graph.has_edge(a, b) for a, b in zip(path[:-1], path[1:]))


class TestEcmpDag:
    def test_paths_are_shortest_and_weighted(self, instance):
        topo, pairs = instance
        routes = route_set_for(topo, pairs, mode="ecmp", k=8)
        dist = _distances(topo)
        for (u, v), group, weights in zip(
            routes.pairs, routes.paths, routes.weights
        ):
            assert group, (u, v)
            assert len(group) == len(weights)
            assert abs(sum(weights) - 1.0) < 1e-9
            for path, weight in zip(group, weights):
                assert path[0] == u and path[-1] == v
                assert _is_simple(path) and _is_valid(topo, path)
                assert len(path) - 1 == dist[u][v]
                assert weight > 0

    def test_next_hops_lie_on_shortest_paths(self, instance):
        topo, pairs = instance
        routes = route_set_for(topo, pairs, mode="ecmp", k=8)
        dist = _distances(topo)
        for (u, v), group in zip(routes.pairs, routes.paths):
            for path in group:
                for node, nxt in zip(path[:-1], path[1:]):
                    assert dist[nxt][v] == dist[node][v] - 1

    def test_enum_method_agrees_on_shortest_lengths(self, instance):
        topo, pairs = instance
        dag = route_set_for(topo, pairs, mode="ecmp", k=4, method="dag")
        enum = route_set_for(topo, pairs, mode="ecmp", k=4, method="enum")
        for pair in dag.pairs:
            lengths_dag = {len(p) for p in dag.paths_for(*pair)}
            lengths_enum = {len(p) for p in enum.paths_for(*pair)}
            assert lengths_dag == lengths_enum  # all shortest, same metric


class TestKsp:
    def test_yen_lengths_non_decreasing(self, instance):
        topo, pairs = instance
        routes = route_set_for(topo, pairs, mode="ksp", k=4, method="yen")
        for (u, v), group in zip(routes.pairs, routes.paths):
            lengths = [len(p) for p in group]
            assert lengths == sorted(lengths)
            assert 1 <= len(group) <= 4
            for path in group:
                assert path[0] == u and path[-1] == v
                assert _is_simple(path) and _is_valid(topo, path)

    def test_yen_prefix_stable_in_k(self, instance):
        topo, pairs = instance
        small = route_set_for(topo, pairs, mode="ksp", k=2, method="yen")
        large = route_set_for(topo, pairs, mode="ksp", k=4, method="yen")
        for pair in small.pairs:
            assert small.paths_for(*pair) == large.paths_for(*pair)[:2]

    def test_tree_paths_simple_and_valid(self, instance):
        topo, pairs = instance
        routes = route_set_for(topo, pairs, mode="ksp", k=6, method="tree")
        dist = _distances(topo)
        for (u, v), group in zip(routes.pairs, routes.paths):
            assert 1 <= len(group) <= 6
            # The first path is a true shortest path; later ones detours.
            assert len(group[0]) - 1 == dist[u][v]
            lengths = [len(p) for p in group]
            assert lengths == sorted(lengths)
            for path in group:
                assert path[0] == u and path[-1] == v
                assert _is_simple(path) and _is_valid(topo, path)


class TestTruncationAndValidation:
    def test_k_one_truncates_multipath_pairs(self):
        topo = fat_tree_topology(4)
        # Edge switches in different pods have many equal-cost paths.
        pairs = [("p0e0", "p1e0")]
        routes = route_set_for(topo, pairs, mode="ecmp", k=1, method="enum")
        assert len(routes.paths[0]) == 1
        assert routes.truncated == 1

    def test_rejects_bad_inputs(self, instance):
        topo, pairs = instance
        with pytest.raises(FlowError):
            compute_route_set(topo, pairs, mode="waypoint")
        with pytest.raises(FlowError):
            compute_route_set(topo, pairs, mode="ksp", method="dag")
        with pytest.raises((FlowError, ValueError)):
            compute_route_set(topo, pairs, k=0)
        u = pairs[0][0]
        with pytest.raises(FlowError):
            compute_route_set(topo, [(u, u)])
        with pytest.raises(TopologyError):
            compute_route_set(topo, [(u, "no-such-switch")])
        with pytest.raises(FlowError):
            compute_route_set(topo, [])


class TestCachingLayers:
    def test_memo_hit_returns_same_object(self, instance):
        topo, pairs = instance
        reset_route_stats()
        first = route_set_for(topo, pairs, mode="ecmp", k=4)
        second = route_set_for(topo, pairs, mode="ecmp", k=4)
        assert first is second
        stats = route_stats()
        assert stats["computed"] == 1
        assert stats["memo_hits"] == 1
        assert stats["disk_hits"] == 0

    def test_disk_hit_after_memo_reset(self, instance, tmp_path):
        topo, pairs = instance
        cache = ResultCache(tmp_path)
        with cache_context(cache):
            reset_route_stats()
            first = route_set_for(topo, pairs, mode="ksp", k=3, method="yen")
            reset_route_stats()  # drops the memo, keeps the disk entry
            second = route_set_for(topo, pairs, mode="ksp", k=3, method="yen")
        assert route_stats() == {
            "computed": 0, "memo_hits": 0, "disk_hits": 1,
        }
        assert second == first

    def test_distinct_k_and_mode_get_distinct_keys(self, instance):
        topo, pairs = instance
        keys = {
            route_set_for(topo, pairs, mode=mode, k=k, method=method).key
            for mode, k, method in (
                ("ecmp", 4, "dag"),
                ("ecmp", 8, "dag"),
                ("ecmp", 4, "enum"),
                ("ksp", 4, "yen"),
                ("ksp", 4, "tree"),
            )
        }
        assert len(keys) == 5


class TestPayload:
    def test_round_trip(self, instance):
        topo, pairs = instance
        routes = route_set_for(topo, pairs, mode="ecmp", k=4)
        rebuilt = RouteSet.from_payload(routes.to_payload())
        assert rebuilt == routes
        assert rebuilt.paths_for(*routes.pairs[0]) == routes.paths[0]

    def test_schema_mismatch_raises(self, instance):
        topo, pairs = instance
        payload = route_set_for(topo, pairs, mode="ecmp", k=4).to_payload()
        payload["schema_version"] = -1
        with pytest.raises(FlowError):
            RouteSet.from_payload(payload)


class TestDeterminism:
    def test_recompute_is_identical(self, instance):
        topo, pairs = instance
        for mode, method in (
            ("ecmp", "dag"), ("ecmp", "enum"), ("ksp", "yen"), ("ksp", "tree")
        ):
            a = compute_route_set(topo, pairs, mode=mode, k=4, method=method)
            b = compute_route_set(topo, pairs, mode=mode, k=4, method=method)
            assert a == b

    def test_canonical_pairs_order_independent(self, instance):
        _, pairs = instance
        shuffled = tuple(reversed(pairs)) + pairs[:2]
        assert canonical_pairs(shuffled) == canonical_pairs(pairs)

    def test_key_depends_on_all_coordinates(self):
        base = route_set_key("t", "p", "ecmp", 4, "dag")
        assert base != route_set_key("t2", "p", "ecmp", 4, "dag")
        assert base != route_set_key("t", "p2", "ecmp", 4, "dag")
        assert base != route_set_key("t", "p", "ksp", 4, "dag")
        assert base != route_set_key("t", "p", "ecmp", 5, "dag")
        assert base != route_set_key("t", "p", "ecmp", 4, "enum")
