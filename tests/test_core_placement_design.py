"""Tests for placement rules, interconnect sweeps, and the joint designer."""

from __future__ import annotations

import pytest

from repro.core.design import HeterogeneousDesigner
from repro.core.interconnect import feasible_cross_fractions
from repro.core.placement import (
    expected_share_per_switch,
    feasible_server_splits,
    proportional_split_for,
    server_placement_ratio,
)
from repro.exceptions import ExperimentError


class TestPlacementNormalization:
    def test_expected_share(self):
        # 480 servers, 30-port switch in a 1000-port network -> 14.4.
        assert expected_share_per_switch(480, 30, 1000) == pytest.approx(14.4)

    def test_ratio(self):
        assert server_placement_ratio(24, 480, 30, 1000) == pytest.approx(
            24 / 14.4
        )

    def test_switch_ports_exceeding_total_rejected(self):
        with pytest.raises(ExperimentError, match="exceeds"):
            expected_share_per_switch(10, 20, 10)


class TestFeasibleSplits:
    def test_totals_and_budgets(self):
        splits = feasible_server_splits(8, 15, 16, 5, 96)
        assert splits
        for split in splits:
            total = split.totals(8, 16)
            assert total == 96
            assert split.servers_per_large <= 14
            assert split.servers_per_small <= 4

    def test_ratios_increase(self):
        splits = feasible_server_splits(8, 15, 16, 5, 96)
        ratios = [s.ratio for s in splits]
        assert ratios == sorted(ratios)

    def test_proportional_split_near_one(self):
        split = proportional_split_for(8, 15, 16, 5, 96)
        assert abs(split.ratio - 1.0) < 0.25

    def test_infeasible_total_rejected(self):
        with pytest.raises(ExperimentError, match="no feasible"):
            feasible_server_splits(2, 3, 2, 3, 100)


class TestFeasibleCrossFractions:
    def test_range_and_count(self):
        fractions = feasible_cross_fractions(8, 7, 16, 2, points=6)
        assert len(fractions) == 6
        assert fractions == sorted(fractions)
        assert fractions[0] >= 0.1

    def test_upper_clip(self):
        # Tiny small-cluster stubs force the max below 2.0.
        fractions = feasible_cross_fractions(
            8, 10, 4, 2, points=5, max_fraction=5.0
        )
        from repro.topology.two_cluster import expected_cross_links

        expected = expected_cross_links(80, 8)
        assert fractions[-1] <= 8 / expected + 1e-9

    def test_empty_range_rejected(self):
        # Feasible max here is ~1.1x expectation (the small cluster has only
        # 4 stubs), so a sweep starting at 1.5 has nowhere to go.
        with pytest.raises(ExperimentError, match="empty sweep"):
            feasible_cross_fractions(
                4, 10, 4, 1, points=3, min_fraction=1.5, max_fraction=2.0
            )

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ExperimentError, match="min_fraction"):
            feasible_cross_fractions(4, 4, 4, 4, min_fraction=0.5, max_fraction=0.2)


class TestDesigner:
    @pytest.fixture(scope="class")
    def search_results(self):
        # Oversubscribed on purpose: the paper's placement claim concerns
        # the capacity-bound regime (underloaded networks instead reward
        # whatever shortens paths).
        designer = HeterogeneousDesigner(
            num_large=4,
            large_ports=12,
            num_small=8,
            small_ports=6,
            total_servers=40,
            runs=2,
            seed=7,
        )
        return designer, designer.search(cross_fractions=[0.6, 1.0, 1.4])

    def test_grid_size(self, search_results):
        designer, points = search_results
        splits = designer.candidate_splits()
        assert len(points) == len(splits) * 3

    def test_sorted_by_throughput(self, search_results):
        _, points = search_results
        values = [p.mean_throughput for p in points]
        assert values == sorted(values, reverse=True)

    def test_best_is_first(self, search_results):
        designer, points = search_results
        assert designer.best(cross_fractions=[0.6, 1.0, 1.4]) == points[0]

    def test_proportional_near_top(self, search_results):
        """The paper's rule: proportional + vanilla random is among the
        optima. Demand it lands within 10% of the best."""
        _, points = search_results
        best = points[0].mean_throughput
        # The integer split grid is coarse at this scale; the nearest
        # feasible split to proportional sits at ratio 1.33.
        closest_ratio = min(
            (abs(p.placement_ratio - 1.0) for p in points)
        )
        near_proportional = [
            p
            for p in points
            if abs(p.placement_ratio - 1.0) <= closest_ratio + 1e-9
            and p.cross_fraction == 1.0
        ]
        assert near_proportional
        assert max(p.mean_throughput for p in near_proportional) >= 0.85 * best

    def test_labels(self, search_results):
        _, points = search_results
        assert "H," in points[0].label()

    def test_empty_grid_rejected(self, search_results):
        designer, _ = search_results
        with pytest.raises(ExperimentError, match="empty"):
            designer.search(splits=[], cross_fractions=[1.0])
