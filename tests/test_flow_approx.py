"""Tests for the Garg-Koenemann approximation against the exact LP."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError
from repro.flow.approx import garg_koenemann_throughput
from repro.flow.edge_lp import max_concurrent_flow
from repro.topology.base import Topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.base import TrafficMatrix
from repro.traffic.permutation import random_permutation_traffic


class TestGargKoenemann:
    def test_feasible_lower_bound(self, small_rrg, small_rrg_traffic):
        lp = max_concurrent_flow(small_rrg, small_rrg_traffic).throughput
        gk = garg_koenemann_throughput(
            small_rrg, small_rrg_traffic, epsilon=0.1
        )
        gk.validate_feasibility()
        assert gk.throughput <= lp * (1 + 1e-6)

    def test_close_to_optimal(self, small_rrg, small_rrg_traffic):
        lp = max_concurrent_flow(small_rrg, small_rrg_traffic).throughput
        gk = garg_koenemann_throughput(
            small_rrg, small_rrg_traffic, epsilon=0.05
        ).throughput
        assert gk >= 0.85 * lp

    def test_tighter_epsilon_not_worse(self, triangle):
        tm = TrafficMatrix(name="one", demands={(0, 1): 1.0}, num_flows=1)
        loose = garg_koenemann_throughput(triangle, tm, epsilon=0.3).throughput
        tight = garg_koenemann_throughput(triangle, tm, epsilon=0.05).throughput
        exact = max_concurrent_flow(triangle, tm).throughput
        assert tight >= loose - 0.15 * exact
        assert tight >= 0.9 * exact

    def test_multiple_seeds_against_lp(self):
        for seed in range(3):
            topo = random_regular_topology(8, 3, servers_per_switch=2, seed=seed)
            traffic = random_permutation_traffic(topo, seed=seed)
            lp = max_concurrent_flow(topo, traffic).throughput
            gk = garg_koenemann_throughput(topo, traffic, epsilon=0.08)
            gk.validate_feasibility()
            assert 0.8 * lp <= gk.throughput <= lp * (1 + 1e-6)

    def test_disconnected_demand_raises(self):
        topo = Topology("split")
        for v in range(4):
            topo.add_switch(v, servers=1)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        tm = TrafficMatrix(name="x", demands={(0, 3): 1.0}, num_flows=1)
        with pytest.raises(FlowError, match="no path"):
            garg_koenemann_throughput(topo, tm)

    def test_invalid_epsilon_rejected(self, triangle):
        tm = TrafficMatrix(name="one", demands={(0, 1): 1.0}, num_flows=1)
        with pytest.raises(ValueError, match="epsilon"):
            garg_koenemann_throughput(triangle, tm, epsilon=0.0)
        with pytest.raises(ValueError, match="epsilon"):
            garg_koenemann_throughput(triangle, tm, epsilon=1.5)

    def test_empty_traffic_rejected(self, triangle):
        tm = TrafficMatrix(name="none", demands={}, num_flows=0)
        with pytest.raises(FlowError, match="no network demands"):
            garg_koenemann_throughput(triangle, tm)

    def test_result_marked_inexact(self, triangle):
        tm = TrafficMatrix(name="one", demands={(0, 1): 1.0}, num_flows=1)
        result = garg_koenemann_throughput(triangle, tm)
        assert not result.exact
        assert result.solver == "garg-koenemann"


class TestIncrementalLengthSum:
    """The arc-length sum is maintained incrementally (O(1) per routed
    chunk instead of a full O(m) rescan); the result must stay
    bit-identical to the rescanning reference."""

    @staticmethod
    def _reference_throughput(topo, traffic, epsilon=0.1, max_phases=10_000):
        """The pre-optimization algorithm: rescan sum(c*l) per chunk."""
        from repro.flow.approx import _shortest_path_arcs

        arcs = topo.arcs()
        num_arcs = len(arcs)
        capacity = [cap for _, _, cap in arcs]
        adjacency = {v: [] for v in topo.switches}
        for i, (u, v, _) in enumerate(arcs):
            adjacency[u].append((v, i))
        delta = (num_arcs / (1.0 - epsilon)) ** (-1.0 / epsilon)
        lengths = [delta / c for c in capacity]
        flows = [0.0] * num_arcs
        commodities = sorted(
            traffic.demands.items(),
            key=lambda kv: (repr(kv[0][0]), repr(kv[0][1])),
        )

        def total_length():
            return sum(c * length for c, length in zip(capacity, lengths))

        phases = 0
        flows_at_last_complete = list(flows)
        while phases < max_phases:
            if total_length() >= 1.0:
                break
            complete = True
            for (src, dst), demand in commodities:
                remaining = float(demand)
                while remaining > 1e-15:
                    if total_length() >= 1.0:
                        complete = False
                        break
                    path_arcs = _shortest_path_arcs(
                        adjacency, lengths, src, dst
                    )
                    bottleneck = min(capacity[a] for a in path_arcs)
                    amount = min(remaining, bottleneck)
                    for a in path_arcs:
                        flows[a] += amount
                        lengths[a] *= 1.0 + epsilon * amount / capacity[a]
                    remaining -= amount
                if not complete:
                    break
            if not complete:
                break
            phases += 1
            flows_at_last_complete = list(flows)
        flows = flows_at_last_complete
        overload = max(
            (flows[a] / capacity[a] for a in range(num_arcs)), default=0.0
        )
        return phases * (1.0 / overload)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_rescan_reference(self, seed):
        topo = random_regular_topology(
            14, 4, servers_per_switch=3, seed=seed
        )
        traffic = random_permutation_traffic(topo, seed=seed + 100)
        reference = self._reference_throughput(topo, traffic, epsilon=0.2)
        incremental = garg_koenemann_throughput(
            topo, traffic, epsilon=0.2
        ).throughput
        assert incremental == reference  # exact float equality, no approx

    def test_bit_identical_nonuniform_capacities(self, triangle):
        topo = triangle.copy()
        topo.remove_link(0, 1)
        topo.add_link(0, 1, capacity=3.5)
        tm = TrafficMatrix(
            name="x", demands={(0, 1): 2.0, (1, 2): 1.0}, num_flows=3
        )
        assert garg_koenemann_throughput(
            topo, tm, epsilon=0.15
        ).throughput == self._reference_throughput(topo, tm, epsilon=0.15)
