"""Job model: decomposition, state machine, manifests, resume."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError
from repro.flow.solvers import SolverConfig
from repro.pipeline.engine import group_cells, run_grid
from repro.pipeline.jobs import (
    MANIFEST_SCHEMA_VERSION,
    GridJob,
    ItemState,
    RetryPolicy,
)
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec


def small_grid(**overrides) -> ScenarioGrid:
    kwargs = dict(
        name="jobs-test",
        topologies=(
            TopologySpec.make("rrg", network_degree=4, servers_per_switch=2),
        ),
        traffics=(TrafficSpec.make("permutation"),),
        solvers=(SolverConfig("edge_lp"), SolverConfig("ecmp")),
        sizes=(8, 10),
        seeds=2,
    )
    kwargs.update(overrides)
    return ScenarioGrid(**kwargs)


class TestDecomposition:
    def test_batched_items_mirror_group_cells(self):
        grid = small_grid()
        job = GridJob(grid)
        groups = group_cells(grid.cells())
        assert len(job.items) == len(groups)
        assert [item.indices for item in job.items] == [
            tuple(i for i, _ in group) for group in groups
        ]
        assert all(item.state == ItemState.PENDING for item in job.items)

    def test_unbatched_items_are_single_cells(self):
        grid = small_grid()
        job = GridJob(grid, batch=False)
        assert len(job.items) == len(grid)
        assert all(len(item.indices) == 1 for item in job.items)

    def test_counts_histogram(self):
        job = GridJob(small_grid())
        counts = job.counts()
        assert counts["pending"] == len(job.items)
        assert counts["cells"] == len(small_grid())
        assert counts["done_cells"] == 0
        assert not job.is_complete


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_max_attempts_validated(self):
        with pytest.raises(ExperimentError):
            RetryPolicy(max_attempts=0)


class TestStateMachine:
    def test_retry_until_exhausted(self):
        job = GridJob(small_grid())
        item = job.items[0]
        policy = RetryPolicy(max_attempts=2, backoff_s=0.0)
        job.mark_running(item)
        assert job.retry_item(item, "boom", policy)
        assert item.state == ItemState.PENDING
        job.mark_running(item)
        assert not job.retry_item(item, "boom again", policy)
        assert item.state == ItemState.FAILED
        assert item.error == "boom again"
        assert job.failed_items() == [item]

    def test_reschedule_refunds_attempt(self):
        job = GridJob(small_grid())
        item = job.items[0]
        job.mark_running(item)
        assert item.attempts == 1
        job.reschedule_item(item)
        assert item.state == ItemState.PENDING
        assert item.attempts == 0

    def test_double_dispatch_rejected(self):
        job = GridJob(small_grid())
        item = job.items[0]
        job.mark_running(item)
        with pytest.raises(ExperimentError):
            job.mark_running(item)

    def test_cancel_sweeps_non_terminal_items(self):
        job = GridJob(small_grid())
        running_item = job.items[0]
        job.mark_running(running_item)
        still_running = job.cancel()
        assert still_running == [running_item]
        assert job.cancelled
        assert all(
            item.state == ItemState.CANCELLED for item in job.items
        )
        assert job.is_complete

    def test_result_cells_raises_while_incomplete(self):
        job = GridJob(small_grid())
        with pytest.raises(ExperimentError, match="unsolved"):
            job.result_cells()


class TestManifest:
    def test_run_writes_manifest(self, tmp_path):
        manifest = tmp_path / "run.json"
        run_grid(
            small_grid(),
            cache_dir=str(tmp_path / "cache"),
            manifest=str(manifest),
        )
        payload = json.loads(manifest.read_text())
        assert payload["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert all(
            item["state"] == ItemState.DONE for item in payload["items"]
        )
        assert len(payload["cells"]) == len(small_grid())

    def test_resume_restores_done_cells(self, tmp_path):
        manifest = tmp_path / "run.json"
        sweep = run_grid(small_grid(), manifest=str(manifest))
        job = GridJob.resume(manifest)
        assert job.is_complete
        assert len(job.restored_indices) == len(sweep.cells)
        restored = job.result_cells()
        assert [c.throughput for c in restored] == [
            c.throughput for c in sweep.cells
        ]
        assert [c.key for c in restored] == [c.key for c in sweep.cells]
        assert job.solve_counts() == {
            "re_solved": 0,
            "cache_hit": 0,
            "skipped": len(sweep.cells),
        }

    def test_resume_requeues_interrupted_items(self, tmp_path):
        manifest = tmp_path / "run.json"
        run_grid(small_grid(), manifest=str(manifest))
        payload = json.loads(manifest.read_text())
        # Simulate a crash mid-item: one item was running, its cells
        # never recorded.
        victim = payload["items"][0]
        victim["state"] = ItemState.RUNNING
        for index in victim["indices"]:
            del payload["cells"][str(index)]
        manifest.write_text(json.dumps(payload))
        job = GridJob.resume(manifest)
        assert not job.is_complete
        assert [item.item_id for item in job.pending_items()] == [
            victim["item_id"]
        ]
        assert len(job.restored_indices) == len(small_grid()) - len(
            victim["indices"]
        )

    def test_resume_rejects_schema_mismatch(self, tmp_path):
        manifest = tmp_path / "run.json"
        run_grid(small_grid(sizes=(8,), seeds=1), manifest=str(manifest))
        payload = json.loads(manifest.read_text())
        payload["schema_version"] = 999
        manifest.write_text(json.dumps(payload))
        with pytest.raises(ExperimentError, match="schema_version"):
            GridJob.resume(manifest)

    def test_resume_rejects_foreign_decomposition(self, tmp_path):
        manifest = tmp_path / "run.json"
        run_grid(small_grid(sizes=(8,), seeds=1), manifest=str(manifest))
        payload = json.loads(manifest.read_text())
        # The same grid decomposed without batching has different items.
        payload["batch"] = False
        manifest.write_text(json.dumps(payload))
        with pytest.raises(ExperimentError, match="decomposition"):
            GridJob.resume(manifest)
