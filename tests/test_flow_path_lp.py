"""Tests for the path-restricted concurrent flow LP."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.path_lp import max_concurrent_flow_paths
from repro.traffic.base import TrafficMatrix


class TestPathLp:
    def test_lower_bounds_edge_lp(self, small_rrg, small_rrg_traffic):
        exact = max_concurrent_flow(small_rrg, small_rrg_traffic).throughput
        for k in (1, 2, 4, 8):
            restricted = max_concurrent_flow_paths(
                small_rrg, small_rrg_traffic, k=k
            ).throughput
            assert restricted <= exact * (1 + 1e-6)

    def test_monotone_in_k(self, small_rrg, small_rrg_traffic):
        previous = 0.0
        for k in (1, 2, 4, 8):
            value = max_concurrent_flow_paths(
                small_rrg, small_rrg_traffic, k=k
            ).throughput
            assert value >= previous - 1e-9
            previous = value

    def test_exact_on_triangle_with_enough_paths(self, triangle):
        tm = TrafficMatrix(name="one", demands={(0, 1): 1.0}, num_flows=1)
        exact = max_concurrent_flow(triangle, tm).throughput
        restricted = max_concurrent_flow_paths(triangle, tm, k=2).throughput
        assert restricted == pytest.approx(exact)

    def test_single_path_restriction(self, triangle):
        tm = TrafficMatrix(name="one", demands={(0, 1): 1.0}, num_flows=1)
        restricted = max_concurrent_flow_paths(triangle, tm, k=1).throughput
        assert restricted == pytest.approx(1.0)  # direct link only

    def test_explicit_paths(self, triangle):
        tm = TrafficMatrix(name="one", demands={(0, 1): 1.0}, num_flows=1)
        paths = {(0, 1): [[0, 2, 1]]}  # force the detour
        result = max_concurrent_flow_paths(triangle, tm, paths_by_pair=paths)
        assert result.throughput == pytest.approx(1.0)
        assert result.arc_flows[(0, 2)] == pytest.approx(1.0)

    def test_invalid_explicit_path_rejected(self, triangle):
        tm = TrafficMatrix(name="one", demands={(0, 1): 1.0}, num_flows=1)
        with pytest.raises(FlowError, match="does not run"):
            max_concurrent_flow_paths(
                triangle, tm, paths_by_pair={(0, 1): [[1, 0]]}
            )
        with pytest.raises(FlowError, match="missing link"):
            max_concurrent_flow_paths(
                triangle, tm, paths_by_pair={(0, 1): [[0, 0, 1]]}
            )

    def test_missing_paths_rejected(self, triangle):
        tm = TrafficMatrix(name="one", demands={(0, 1): 1.0}, num_flows=1)
        with pytest.raises(FlowError, match="no candidate paths"):
            max_concurrent_flow_paths(triangle, tm, paths_by_pair={(0, 1): []})

    def test_result_marked_inexact(self, triangle):
        tm = TrafficMatrix(name="one", demands={(0, 1): 1.0}, num_flows=1)
        result = max_concurrent_flow_paths(triangle, tm, k=1)
        assert not result.exact
        assert result.solver == "path-lp"

    def test_feasibility(self, small_rrg, small_rrg_traffic):
        result = max_concurrent_flow_paths(small_rrg, small_rrg_traffic, k=4)
        result.validate_feasibility()
