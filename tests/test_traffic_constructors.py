"""Tests for the workload constructors: permutation, all-to-all, chunky,
stride, hotspot, gravity."""

from __future__ import annotations

import pytest

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.alltoall import all_to_all_traffic
from repro.traffic.chunky import chunky_traffic
from repro.traffic.gravity import gravity_traffic
from repro.traffic.hotspot import hotspot_traffic
from repro.traffic.permutation import (
    random_permutation_traffic,
    switch_permutation_traffic,
)
from repro.traffic.stride import stride_traffic


@pytest.fixture
def four_switches() -> Topology:
    topo = Topology("four")
    for v in range(4):
        topo.add_switch(v, servers=3)
    topo.add_link(0, 1)
    topo.add_link(1, 2)
    topo.add_link(2, 3)
    topo.add_link(3, 0)
    return topo


class TestRandomPermutation:
    def test_every_server_sends_and_receives_once(self, four_switches):
        tm = random_permutation_traffic(four_switches, seed=1)
        assert tm.num_flows == 12
        senders = [src for src, _ in tm.server_pairs]
        receivers = [dst for _, dst in tm.server_pairs]
        assert len(set(senders)) == 12
        assert len(set(receivers)) == 12

    def test_no_self_flows(self, four_switches):
        for seed in range(5):
            tm = random_permutation_traffic(four_switches, seed=seed)
            assert all(src != dst for src, dst in tm.server_pairs)

    def test_needs_two_servers(self):
        topo = Topology("tiny")
        topo.add_switch(0, servers=1)
        with pytest.raises(TrafficError, match="at least 2"):
            random_permutation_traffic(topo)

    def test_deterministic(self, four_switches):
        a = random_permutation_traffic(four_switches, seed=5)
        b = random_permutation_traffic(four_switches, seed=5)
        assert a.server_pairs == b.server_pairs


class TestSwitchPermutation:
    def test_each_switch_targets_one_other(self, four_switches):
        tm = switch_permutation_traffic(four_switches, seed=2)
        targets = {}
        for (src_sw, _), (dst_sw, _) in tm.server_pairs:
            targets.setdefault(src_sw, set()).add(dst_sw)
        assert all(len(dsts) == 1 for dsts in targets.values())
        assert all(src not in dsts for src, dsts in targets.items())

    def test_demand_equals_server_count(self, four_switches):
        tm = switch_permutation_traffic(four_switches, seed=3)
        for (u, v), units in tm.demands.items():
            assert units == four_switches.servers_at(u)

    def test_restricted_participants(self, four_switches):
        tm = switch_permutation_traffic(four_switches, seed=4, switches=[0, 1, 2])
        switches = {sw for (sw, _), _ in tm.server_pairs}
        assert switches <= {0, 1, 2}

    def test_serverless_participant_rejected(self, four_switches):
        four_switches.set_servers(3, 0)
        with pytest.raises(TrafficError, match="no servers"):
            switch_permutation_traffic(four_switches, switches=[0, 3])


class TestAllToAll:
    def test_demand_products(self, four_switches):
        tm = all_to_all_traffic(four_switches)
        assert tm.demand(0, 1) == 9.0  # 3 * 3
        assert tm.num_flows == 12 * 11
        assert tm.num_local_flows == 4 * 3 * 2

    def test_unequal_server_counts(self):
        topo = Topology("uneven")
        topo.add_switch(0, servers=2)
        topo.add_switch(1, servers=5)
        topo.add_link(0, 1)
        tm = all_to_all_traffic(topo)
        assert tm.demand(0, 1) == 10.0
        assert tm.demand(1, 0) == 10.0

    def test_needs_servers(self):
        topo = Topology("empty")
        topo.add_switch(0)
        topo.add_switch(1)
        topo.add_link(0, 1)
        with pytest.raises(TrafficError, match="at least 2"):
            all_to_all_traffic(topo)


class TestChunky:
    def test_full_chunky_is_switch_permutation(self, four_switches):
        tm = chunky_traffic(four_switches, 1.0, seed=5)
        # Every switch's servers all target one switch.
        targets = {}
        for (src_sw, _), (dst_sw, _) in tm.server_pairs:
            targets.setdefault(src_sw, set()).add(dst_sw)
        assert all(len(dsts) == 1 for dsts in targets.values())

    def test_zero_chunky_is_server_permutation(self, four_switches):
        tm = chunky_traffic(four_switches, 0.0, seed=6)
        assert tm.num_flows == 12

    def test_mixture_flow_count(self, four_switches):
        tm = chunky_traffic(four_switches, 0.5, seed=7)
        assert tm.num_flows == 12

    def test_fraction_validated(self, four_switches):
        with pytest.raises(ValueError, match="chunky_fraction"):
            chunky_traffic(four_switches, 1.5)

    def test_needs_two_tors(self):
        topo = Topology("single")
        topo.add_switch(0, servers=4)
        topo.add_switch(1, servers=0)
        topo.add_link(0, 1)
        with pytest.raises(TrafficError, match="at least 2"):
            chunky_traffic(topo, 0.5)


class TestStride:
    def test_stride_one(self, four_switches):
        tm = stride_traffic(four_switches, stride=1)
        assert tm.num_flows == 12
        src, dst = tm.server_pairs[0]
        assert src == (0, 0) and dst == (0, 1)

    def test_stride_crossing_switches(self, four_switches):
        tm = stride_traffic(four_switches, stride=3)
        assert tm.num_local_flows == 0

    def test_multiple_of_count_rejected(self, four_switches):
        with pytest.raises(TrafficError, match="multiple"):
            stride_traffic(four_switches, stride=12)


class TestHotspot:
    def test_all_send_to_hotspots(self, four_switches):
        tm = hotspot_traffic(four_switches, num_hotspots=2, seed=8)
        receivers = {dst for _, dst in tm.server_pairs}
        assert len(receivers) <= 2
        assert tm.num_flows == 10  # 12 servers - 2 hotspots

    def test_sender_fraction(self, four_switches):
        tm = hotspot_traffic(
            four_switches, num_hotspots=1, sender_fraction=0.5, seed=9
        )
        assert tm.num_flows == round(0.5 * 11)

    def test_needs_enough_servers(self):
        topo = Topology("tiny")
        topo.add_switch(0, servers=1)
        topo.add_switch(1, servers=0)
        topo.add_link(0, 1)
        with pytest.raises(TrafficError, match="more than"):
            hotspot_traffic(topo, num_hotspots=1)


class TestGravity:
    def test_per_source_totals(self, four_switches):
        tm = gravity_traffic(four_switches)
        by_source: dict = {}
        for (u, _), units in tm.demands.items():
            by_source[u] = by_source.get(u, 0.0) + units
        for u, total in by_source.items():
            assert total == pytest.approx(four_switches.servers_at(u))

    def test_needs_two_populated_switches(self):
        topo = Topology("one-sided")
        topo.add_switch(0, servers=5)
        topo.add_switch(1, servers=0)
        topo.add_link(0, 1)
        with pytest.raises(TrafficError, match="at least 2"):
            gravity_traffic(topo)
