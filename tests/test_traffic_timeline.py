"""Property and serialization tests for demand timelines.

The replay pipeline's correctness leans on three timeline properties
pinned here: the delta algebra is exactly invertible (apply-then-revert
is the identity for unit-flow traffic), folding deltas incrementally
equals constructing each step's matrix directly, and step fingerprints
are a pure function of *content* — stable across insertion order,
process hash seeds, and label changes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TrafficError
from repro.traffic.base import TrafficMatrix
from repro.traffic.timeline import (
    DemandDelta,
    TrafficTimeline,
    available_timelines,
    make_timeline,
    read_trace,
    write_trace,
)


def _matrix(pairs: dict, name: str = "tm") -> TrafficMatrix:
    return TrafficMatrix(
        name=name,
        demands=dict(pairs),
        num_flows=int(round(sum(pairs.values()))),
    )


# Integer unit demands on a small switch universe: the VDC generator's
# regime, where delta apply/revert must be bit-exact.
_pairs = st.dictionaries(
    st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(
        lambda p: p[0] != p[1]
    ),
    st.integers(1, 4).map(float),
    min_size=1,
    max_size=12,
)


class TestDemandDelta:
    def test_normalization_merges_sorts_and_drops_zeros(self):
        delta = DemandDelta(
            label="d",
            changes=(((1, 0), 2.0), ((0, 1), 1.0), ((1, 0), -2.0), ((2, 0), 0.0)),
        )
        assert delta.changes == (((0, 1), 1.0),)
        assert delta.touched_pairs() == [(0, 1)]
        assert delta.touched_sources() == [0]

    def test_self_pair_rejected(self):
        with pytest.raises(TrafficError, match="self-pair"):
            DemandDelta(label="d", changes=(((1, 1), 2.0),))

    def test_apply_rejects_negative_demand(self):
        tm = _matrix({(0, 1): 1.0})
        delta = DemandDelta(label="d", changes=(((0, 1), -2.0),))
        with pytest.raises(TrafficError, match="negative"):
            delta.apply(tm)

    def test_apply_rejects_negative_flow_counts(self):
        tm = _matrix({(0, 1): 1.0})
        delta = DemandDelta(label="d", num_flows_delta=-5)
        with pytest.raises(TrafficError, match="flow counts"):
            delta.apply(tm)

    def test_removing_and_scaling_constructors(self):
        tm = _matrix({(0, 1): 2.0, (1, 2): 3.0})
        removed = DemandDelta.removing(tm, [(0, 1)]).apply(tm)
        assert (0, 1) not in removed.demands
        assert removed.demands[(1, 2)] == 3.0

        doubled = DemandDelta.scaling(tm, 2.0).apply(tm)
        assert doubled.demands == {(0, 1): 4.0, (1, 2): 6.0}
        with pytest.raises(TrafficError, match="absent"):
            DemandDelta.removing(tm, [(5, 6)])

    @given(_pairs, _pairs)
    @settings(max_examples=60, deadline=None)
    def test_apply_then_inverse_is_identity(self, base_pairs, add_pairs):
        tm = _matrix(base_pairs)
        delta = DemandDelta.adding(add_pairs)
        forward = delta.apply(tm)
        restored = delta.inverse().apply(forward, name=tm.name)
        assert restored.demands == tm.demands
        assert restored.num_flows == tm.num_flows
        assert restored.num_local_flows == tm.num_local_flows

    def test_round_trip(self):
        delta = DemandDelta.adding({(0, 1): 2.0, (3, 4): 1.0}, label="arrive")
        clone = DemandDelta.from_dict(
            json.loads(json.dumps(delta.to_dict()))
        )
        assert clone == delta


class TestTimelineFold:
    def _timeline(self) -> TrafficTimeline:
        base = _matrix({(0, 1): 1.0, (1, 2): 2.0}, name="base")
        return TrafficTimeline(
            name="tl",
            base=base,
            deltas=(
                DemandDelta.adding({(2, 0): 1.0}, label="t1"),
                DemandDelta(label="noop"),
                DemandDelta.adding({(0, 1): -1.0}, label="t3"),
            ),
        )

    def test_fold_equals_direct(self):
        timeline = self._timeline()
        folded = list(timeline.matrices())
        assert len(folded) == timeline.num_steps == 4
        for step, matrix in enumerate(folded):
            direct = timeline.matrix_at(step)
            assert direct.demands == matrix.demands
            assert direct.num_flows == matrix.num_flows
            assert matrix.name == f"tl@t{step}"

    def test_step_out_of_range(self):
        timeline = self._timeline()
        with pytest.raises(TrafficError, match="out of range"):
            timeline.matrix_at(timeline.num_steps)
        with pytest.raises(TrafficError, match="out of range"):
            timeline.step_fingerprint(-1)

    def test_non_delta_rejected(self):
        with pytest.raises(TrafficError, match="DemandDelta"):
            TrafficTimeline(name="x", base=_matrix({(0, 1): 1.0}), deltas=("no",))

    def test_round_trip(self):
        timeline = self._timeline()
        clone = TrafficTimeline.from_dict(
            json.loads(json.dumps(timeline.to_dict()))
        )
        assert clone.name == timeline.name
        assert clone.deltas == timeline.deltas
        assert clone.base.demands == timeline.base.demands
        assert clone.step_fingerprints() == timeline.step_fingerprints()


class TestStepFingerprints:
    def _base(self) -> TrafficMatrix:
        return _matrix({(0, 1): 1.0, (2, 3): 2.0}, name="base")

    def test_chained_and_prefix_sensitive(self):
        base = self._base()
        d1 = DemandDelta.adding({(1, 2): 1.0})
        d2 = DemandDelta.adding({(3, 0): 1.0})
        fps = TrafficTimeline(name="a", base=base, deltas=(d1, d2)).step_fingerprints()
        assert len(fps) == 3 and len(set(fps)) == 3
        # Changing an early delta changes every later address.
        other = TrafficTimeline(name="a", base=base, deltas=(d2, d2))
        assert other.step_fingerprints()[1:] != fps[1:]
        # Same prefix shares addresses.
        assert other.step_fingerprints()[0] == fps[0]

    def test_noop_delta_keeps_predecessor_address(self):
        base = self._base()
        timeline = TrafficTimeline(
            name="a", base=base, deltas=(DemandDelta(label="idle"),)
        )
        fps = timeline.step_fingerprints()
        assert fps[0] == fps[1]

    def test_labels_do_not_affect_fingerprints(self):
        base = self._base()
        d = {(1, 2): 1.0}
        one = TrafficTimeline(
            name="a", base=base, deltas=(DemandDelta.adding(d, label="x"),)
        )
        two = TrafficTimeline(
            name="b", base=base, deltas=(DemandDelta.adding(d, label="y"),)
        )
        assert one.step_fingerprints() == two.step_fingerprints()

    def test_insertion_order_stable(self):
        base = self._base()
        fwd = DemandDelta(
            label="d", changes=(((0, 2), 1.0), ((3, 1), 2.0), ((1, 3), 1.0))
        )
        rev = DemandDelta(
            label="d", changes=(((1, 3), 1.0), ((3, 1), 2.0), ((0, 2), 1.0))
        )
        assert fwd == rev
        assert (
            TrafficTimeline(name="a", base=base, deltas=(fwd,)).step_fingerprints()
            == TrafficTimeline(name="a", base=base, deltas=(rev,)).step_fingerprints()
        )

    def test_hash_seed_independent(self):
        """Fingerprints agree across processes with different hash seeds."""
        script = textwrap.dedent(
            """
            from repro.traffic.base import TrafficMatrix
            from repro.traffic.timeline import DemandDelta, TrafficTimeline

            base = TrafficMatrix(
                name="base",
                demands={("sw", 0): 1.0, (1, "sw"): 2.0, (3, 4): 1.0},
                num_flows=4,
            )
            timeline = TrafficTimeline(
                name="t",
                base=base,
                deltas=(
                    DemandDelta.adding({(4, 3): 1.0, ("sw", 1): 2.0}),
                    DemandDelta.adding({(3, 4): -1.0}),
                ),
            )
            print("\\n".join(timeline.step_fingerprints()))
            """
        )
        outputs = set()
        for hash_seed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), "src") if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.add(proc.stdout)
        assert len(outputs) == 1


class TestTraceIO:
    def _timeline(self) -> TrafficTimeline:
        base = _matrix({(0, 1): 2.0, (2, 3): 1.0}, name="trace base")
        return TrafficTimeline(
            name="trace",
            base=base,
            deltas=(
                DemandDelta.adding({(1, 0): 1.0}, label="t1"),
                DemandDelta.adding({(0, 1): -2.0}, label="t2"),
            ),
        )

    @pytest.mark.parametrize("suffix", [".json", ".csv"])
    def test_round_trip(self, tmp_path, suffix):
        timeline = self._timeline()
        path = write_trace(timeline, tmp_path / f"trace{suffix}")
        clone = read_trace(path)
        assert clone.num_steps == timeline.num_steps
        for ours, theirs in zip(timeline.matrices(), clone.matrices()):
            assert ours.demands == theirs.demands
        assert clone.step_fingerprints() == timeline.step_fingerprints()

    def test_csv_header_validated(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TrafficError, match="header"):
            read_trace(path)

    def test_missing_file_and_bad_suffix(self, tmp_path):
        with pytest.raises(TrafficError, match="not found"):
            read_trace(tmp_path / "absent.json")
        with pytest.raises(TrafficError, match="unsupported"):
            read_trace_path = tmp_path / "trace.xml"
            read_trace_path.write_text("<x/>")
            read_trace(read_trace_path)

    def test_trace_registry_validates_endpoints(self, tmp_path, small_rrg):
        assert {"trace", "vdc"} <= set(available_timelines())
        timeline = self._timeline()
        path = write_trace(timeline, tmp_path / "t.csv")
        # Endpoints 0..3 exist in the fixture topology, so this loads.
        loaded = make_timeline("trace", small_rrg, path=str(path))
        assert loaded.num_steps == timeline.num_steps
        # A pair outside the topology is rejected.
        bad = TrafficTimeline(
            name="bad",
            base=timeline.base,
            deltas=(DemandDelta.adding({(998, 999): 1.0}),),
        )
        bad_path = write_trace(bad, tmp_path / "bad_trace.csv")
        with pytest.raises(TrafficError, match="unknown switch"):
            make_timeline("trace", small_rrg, path=str(bad_path))
