"""Scheduler failure paths: priority, worker death, timeout, cancel, resume."""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.exceptions import ExperimentError
from repro.flow.solvers import SolverConfig
from repro.pipeline.engine import resume_grid, run_grid
from repro.pipeline.executors import SerialExecutor, ThreadExecutor
from repro.pipeline.jobs import GridJob, ItemState, RetryPolicy
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.pipeline.scheduler import (
    BULK,
    INTERACTIVE,
    GridScheduler,
    parse_priority,
    run_job,
)


def small_grid(**overrides) -> ScenarioGrid:
    kwargs = dict(
        name="sched-test",
        topologies=(
            TopologySpec.make("rrg", network_degree=4, servers_per_switch=2),
        ),
        traffics=(TrafficSpec.make("permutation"),),
        solvers=(SolverConfig("ecmp"),),
        sizes=(8, 10),
        seeds=2,
    )
    kwargs.update(overrides)
    return ScenarioGrid(**kwargs)


def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached in time")


class ManualExecutor:
    """Futures the test resolves by hand — fully deterministic ordering.

    ``running=True`` marks every future as started (uncancellable), the
    state of a shard wedged on a worker; the default leaves them pending
    (cancellable), the state of a shard still in the pool's queue.
    """

    workers = 1
    reset_on_timeout = False

    def __init__(self, running: bool = False) -> None:
        self.running = running
        self.submitted: "list[tuple[tuple, Future]]" = []
        self.resets = 0
        self._lock = threading.Lock()

    def submit(self, scenarios, cache_dir, batch) -> Future:
        future: Future = Future()
        if self.running:
            future.set_running_or_notify_cancel()
        with self._lock:
            self.submitted.append((tuple(scenarios), future))
        return future

    def reset(self) -> None:
        self.resets += 1

    @property
    def generation(self) -> int:
        return self.resets

    def worker_pids(self):
        return ()

    def shutdown(self, wait: bool = True) -> None:
        pass


class DyingExecutor(SerialExecutor):
    """Inline executor whose first ``casualties`` submits die like a
    killed process-pool worker (``BrokenProcessPool`` on the future)."""

    def __init__(self, casualties: int = 1) -> None:
        super().__init__()
        self.casualties = casualties
        self.resets = 0

    def submit(self, scenarios, cache_dir, batch) -> Future:
        if self.casualties > 0:
            self.casualties -= 1
            future: Future = Future()
            future.set_running_or_notify_cancel()
            future.set_exception(
                BrokenProcessPool("worker killed mid-cell (simulated)")
            )
            return future
        return super().submit(scenarios, cache_dir, batch)

    def reset(self) -> None:
        self.resets += 1

    @property
    def generation(self) -> int:
        return self.resets


def solved_cells(grid: ScenarioGrid) -> dict:
    """Reference cells keyed by scenario, for manual future resolution."""
    reference = run_grid(grid)
    return dict(zip(grid.cells(), reference.cells))


class TestRunJob:
    def test_matches_run_grid(self):
        grid = small_grid()
        reference = run_grid(grid)
        cells = run_job(GridJob(grid))
        strip = lambda cs: [  # noqa: E731
            dataclasses.replace(c, elapsed_s=0.0) for c in cs
        ]
        assert strip(cells) == strip(reference.cells)

    def test_thread_executor_matches(self):
        grid = small_grid()
        reference = run_grid(grid)
        cells = run_job(GridJob(grid), executor=ThreadExecutor(workers=2))
        assert [c.throughput for c in cells] == [
            c.throughput for c in reference.cells
        ]

    def test_solver_error_propagates(self):
        grid = small_grid(
            solvers=(SolverConfig.make("edge_lp", unreachable="nonsense"),),
            sizes=(8,),
            seeds=1,
        )
        with pytest.raises(Exception) as excinfo:
            run_job(GridJob(grid))
        assert "nonsense" in str(excinfo.value)

    def test_parse_priority(self):
        assert parse_priority("interactive") == INTERACTIVE
        assert parse_priority("bulk") == BULK
        assert parse_priority(3) == 3
        with pytest.raises(ExperimentError):
            parse_priority("urgent")


class TestInteractivePriority:
    def test_interactive_jumps_queued_bulk_items(self):
        bulk_grid = small_grid()
        query_grid = small_grid(name="query", sizes=(8,), seeds=1)
        cells = solved_cells(bulk_grid)
        cells.update(solved_cells(query_grid))

        executor = ManualExecutor()
        completed: "list[str]" = []
        with GridScheduler(executor, max_in_flight=1) as scheduler:
            bulk_job = GridJob(bulk_grid)
            bulk = scheduler.submit(
                bulk_job,
                priority=BULK,
                on_cell=lambda i, c: completed.append("bulk"),
            )
            wait_until(lambda: len(executor.submitted) == 1)
            # Bulk item 1 is on the (single) worker; the rest are queued.
            query = scheduler.submit(
                GridJob(query_grid),
                priority=INTERACTIVE,
                on_cell=lambda i, c: completed.append("query"),
            )
            # Resolve futures as they appear: the scheduler decides order.
            resolved = 0
            total_items = len(bulk_job.items) + 1
            while resolved < total_items:
                wait_until(lambda: len(executor.submitted) > resolved)
                scenarios, future = executor.submitted[resolved]
                future.set_result([cells[s] for s in scenarios])
                resolved += 1
            assert bulk.wait(10) and query.wait(10)

        # The interactive query ran right after the in-flight bulk item,
        # before every remaining bulk item.
        first_query = completed.index("query")
        assert first_query <= len(query_grid)
        assert completed.count("bulk") == len(bulk_grid)

    def test_fully_restored_job_completes_without_dispatch(self, tmp_path):
        manifest = tmp_path / "run.json"
        run_grid(small_grid(), manifest=str(manifest))
        job = GridJob.resume(manifest)
        executor = ManualExecutor()
        with GridScheduler(executor) as scheduler:
            handle = scheduler.submit(job)
            assert handle.wait(10)
            assert handle.status == "done"
        assert executor.submitted == []  # nothing ran


class TestWorkerDeath:
    def test_item_requeued_and_run_completes(self):
        grid = small_grid()
        reference = run_grid(grid)
        executor = DyingExecutor(casualties=1)
        with GridScheduler(
            executor, retry=RetryPolicy(max_attempts=3, backoff_s=0.0)
        ) as scheduler:
            handle = scheduler.submit(GridJob(grid), fail_fast=True)
            cells = handle.result(timeout=30)
            assert scheduler.items_retried >= 1
            assert scheduler.executor_resets == 1
        assert executor.resets == 1
        assert [c.throughput for c in cells] == [
            c.throughput for c in reference.cells
        ]

    def test_poison_item_fails_after_max_attempts(self):
        grid = small_grid(sizes=(8,), seeds=1)
        executor = DyingExecutor(casualties=100)  # never recovers
        with GridScheduler(
            executor, retry=RetryPolicy(max_attempts=2, backoff_s=0.0)
        ) as scheduler:
            handle = scheduler.submit(GridJob(grid), fail_fast=True)
            with pytest.raises(ExperimentError, match="worker died"):
                handle.result(timeout=30)
            failed = handle.job.failed_items()
            assert failed and failed[0].attempts == 2


class TestTimeout:
    def test_timeout_retries_then_fails(self):
        grid = small_grid(sizes=(8,), seeds=1)
        # Futures run forever and cannot be cancelled: a wedged worker.
        executor = ManualExecutor(running=True)
        retry = RetryPolicy(max_attempts=2, backoff_s=0.0, timeout_s=0.05)
        with GridScheduler(executor, retry=retry) as scheduler:
            handle = scheduler.submit(GridJob(grid))
            assert handle.wait(30)
            assert handle.status == "failed"
            failed = handle.job.failed_items()
            assert len(failed) == len(handle.job.items)
            assert "timed out" in failed[0].error
            assert failed[0].attempts == 2
            # Both attempts dispatched, both abandoned.
            assert len(executor.submitted) >= 2
            assert scheduler._in_flight == {}


class TestCancellation:
    def test_cancel_leaves_no_orphaned_futures(self):
        grid = small_grid()
        executor = ManualExecutor()
        with GridScheduler(executor, max_in_flight=2) as scheduler:
            handle = scheduler.submit(GridJob(grid))
            wait_until(lambda: len(executor.submitted) == 2)
            handle.cancel()
            assert handle.wait(10)
            assert handle.status == "cancelled"
            with pytest.raises(ExperimentError, match="cancelled"):
                handle.result()
            wait_until(lambda: not scheduler._in_flight)
            # Dispatched futures were cancelled, not leaked.
            assert all(
                future.cancelled() for _, future in executor.submitted
            )
            assert all(
                item.state == ItemState.CANCELLED
                for item in handle.job.items
            )


class TestResumeAfterCrash:
    def test_resume_resolves_zero_cached_cells(self, tmp_path):
        grid = small_grid()
        manifest = tmp_path / "run.json"
        cache_dir = tmp_path / "cache"
        first = run_grid(
            grid, cache_dir=str(cache_dir), manifest=str(manifest)
        )
        # Crash simulation: the manifest lost one item's cells (it was
        # mid-flight), but its solves are already in the result cache.
        payload = json.loads(manifest.read_text())
        victim = payload["items"][0]
        victim["state"] = ItemState.RUNNING
        for index in victim["indices"]:
            del payload["cells"][str(index)]
        manifest.write_text(json.dumps(payload))

        resumed = resume_grid(str(manifest))
        assert resumed.restored == len(grid) - len(victim["indices"])
        assert resumed.solve_counts == {
            "re_solved": 0,  # every re-executed cell was a cache hit
            "cache_hit": len(victim["indices"]),
            "skipped": len(grid) - len(victim["indices"]),
        }
        assert [c.throughput for c in resumed.cells] == [
            c.throughput for c in first.cells
        ]
