"""Tests for heterogeneous topologies and server-placement rules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.topology.heterogeneous import (
    beta_server_distribution,
    heterogeneous_random_topology,
    mixed_linespeed_topology,
    power_law_port_counts,
    power_law_ports_with_mean,
    proportional_server_split,
    total_ports,
)


class TestProportionalSplit:
    def test_sums_exactly(self):
        split = proportional_server_split(10, {"a": 1.0, "b": 1.0, "c": 2.0})
        assert sum(split.values()) == 10

    def test_proportionality(self):
        split = proportional_server_split(12, {"a": 1.0, "b": 2.0, "c": 3.0})
        assert split == {"a": 2, "b": 4, "c": 6}

    def test_zero_weight_gets_zero(self):
        split = proportional_server_split(5, {"a": 0.0, "b": 1.0})
        assert split["a"] == 0
        assert split["b"] == 5

    def test_zero_servers(self):
        assert proportional_server_split(0, {"a": 2.0}) == {"a": 0}

    def test_all_zero_weights_rejected(self):
        with pytest.raises(TopologyError, match="weights"):
            proportional_server_split(3, {"a": 0.0})

    @given(
        st.integers(min_value=0, max_value=500),
        st.dictionaries(
            st.integers(0, 20),
            st.floats(min_value=0.01, max_value=50, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_and_rounding_property(self, total, weights):
        split = proportional_server_split(total, weights)
        assert sum(split.values()) == total
        weight_sum = sum(weights.values())
        for node, count in split.items():
            exact = total * weights[node] / weight_sum
            assert abs(count - exact) < 1.0 + 1e-9


class TestBetaDistribution:
    def test_beta_one_is_proportional(self):
        ports = {0: 10, 1: 20, 2: 30}
        servers = beta_server_distribution(ports, 12, beta=1.0)
        assert servers == {0: 2, 1: 4, 2: 6}

    def test_beta_zero_is_uniform(self):
        ports = {0: 10, 1: 20, 2: 30}
        servers = beta_server_distribution(ports, 9, beta=0.0)
        assert servers == {0: 3, 1: 3, 2: 3}

    def test_respects_port_capacity(self):
        ports = {0: 4, 1: 40}
        servers = beta_server_distribution(ports, 30, beta=3.0)
        assert servers[0] <= 3  # 4 ports - 1 reserved
        assert sum(servers.values()) == 30

    def test_overflow_redistributed(self):
        ports = {0: 3, 1: 10, 2: 10}
        servers = beta_server_distribution(ports, 15, beta=5.0)
        assert sum(servers.values()) == 15
        assert servers[0] <= 2

    def test_too_many_servers_rejected(self):
        with pytest.raises(TopologyError, match="cannot place"):
            beta_server_distribution({0: 3, 1: 3}, 10, beta=1.0)

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError, match="beta"):
            beta_server_distribution({0: 5}, 2, beta=-1.0)


class TestHeterogeneousRandom:
    def test_port_budgets_respected(self):
        ports = {0: 8, 1: 8, 2: 4, 3: 4, 4: 4}
        servers = {0: 2, 1: 2, 2: 1, 3: 1, 4: 1}
        topo = heterogeneous_random_topology(ports, servers, seed=1)
        for node in topo.switches:
            assert topo.degree(node) <= ports[node] - servers[node]
        assert topo.num_servers == 7

    def test_servers_exceeding_ports_rejected(self):
        with pytest.raises(TopologyError, match="ports"):
            heterogeneous_random_topology({0: 3, 1: 3}, {0: 4, 1: 0})

    def test_deterministic(self):
        ports = {i: 5 for i in range(8)}
        servers = {i: 1 for i in range(8)}
        a = heterogeneous_random_topology(ports, servers, seed=3)
        b = heterogeneous_random_topology(ports, servers, seed=3)
        ea = sorted(tuple(sorted((l.u, l.v), key=repr)) for l in a.links)
        eb = sorted(tuple(sorted((l.u, l.v), key=repr)) for l in b.links)
        assert ea == eb


class TestPowerLawPorts:
    def test_within_range(self):
        counts = power_law_port_counts(50, exponent=2.0, min_ports=4, max_ports=16, seed=1)
        assert len(counts) == 50
        assert all(4 <= k <= 16 for k in counts)

    def test_skewed_toward_small(self):
        counts = power_law_port_counts(
            500, exponent=2.5, min_ports=4, max_ports=64, seed=2
        )
        small = sum(1 for k in counts if k <= 8)
        assert small > len(counts) / 2

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError, match="max_ports"):
            power_law_port_counts(10, min_ports=8, max_ports=4)

    def test_with_mean_hits_target(self):
        counts = power_law_ports_with_mean(300, target_mean=8.0, seed=3)
        mean = sum(counts) / len(counts)
        assert abs(mean - 8.0) < 1.5

    def test_with_mean_rejects_mean_below_min(self):
        with pytest.raises(ValueError, match="target_mean"):
            power_law_ports_with_mean(10, target_mean=2.0, min_ports=4)


class TestMixedLinespeed:
    def test_high_speed_mesh_added(self):
        topo = mixed_linespeed_topology(
            num_large=6,
            large_low_ports=5,
            num_small=6,
            small_low_ports=3,
            servers_per_large=3,
            servers_per_small=1,
            high_ports_per_large=2,
            high_speed=10.0,
            seed=4,
        )
        fast_caps = [l.capacity for l in topo.links if l.capacity >= 10.0]
        assert fast_caps, "expected some high-speed capacity"
        # High-speed capacity only lands between large switches.
        large = set(topo.nodes_in_cluster("large"))
        for link in topo.links:
            if link.capacity >= 10.0:
                assert link.u in large and link.v in large

    def test_zero_high_ports_is_plain_two_cluster(self):
        topo = mixed_linespeed_topology(
            num_large=4,
            large_low_ports=4,
            num_small=4,
            small_low_ports=3,
            servers_per_large=2,
            servers_per_small=1,
            high_ports_per_large=0,
            high_speed=10.0,
            seed=5,
        )
        assert all(link.capacity == 1.0 for link in topo.links)

    def test_high_ports_bounded_by_cluster(self):
        with pytest.raises(TopologyError, match="high_ports_per_large"):
            mixed_linespeed_topology(
                num_large=3,
                large_low_ports=3,
                num_small=3,
                small_low_ports=3,
                servers_per_large=1,
                servers_per_small=1,
                high_ports_per_large=3,
                high_speed=10.0,
            )


class TestTotalPorts:
    def test_mapping_and_sequence(self):
        assert total_ports({0: 3, 1: 4}) == 7
        assert total_ports([3, 4, 5]) == 12
