"""Tests for the incremental all-pairs shortest-path tracker."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.metrics.incremental import IncrementalASPL
from repro.metrics.paths import (
    all_pairs_shortest_lengths,
    average_shortest_path_length,
)
from repro.topology.base import Topology
from repro.topology.mutation import (
    DoubleEdgeSwap,
    apply_double_edge_swap,
    sample_double_edge_swap,
)
from repro.topology.random_regular import random_regular_topology
from repro.util.rng import as_rng

_instances = st.tuples(
    st.integers(min_value=8, max_value=24),  # switches
    st.integers(min_value=3, max_value=5),   # degree
    st.integers(min_value=0, max_value=10_000),  # seed
)


def _cycle(n: int) -> Topology:
    topo = Topology(f"cycle{n}")
    for v in range(n):
        topo.add_switch(v)
    for v in range(n):
        topo.add_link(v, (v + 1) % n)
    return topo


class TestConstruction:
    def test_matches_full_computation(self):
        topo = random_regular_topology(20, 4, seed=0)
        tracker = IncrementalASPL(topo)
        assert tracker.aspl == pytest.approx(
            average_shortest_path_length(topo), abs=1e-12
        )
        assert tracker.distances() == all_pairs_shortest_lengths(topo)

    def test_rejects_disconnected(self):
        topo = Topology()
        for v in range(4):
            topo.add_switch(v)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        with pytest.raises(TopologyError, match="disconnected"):
            IncrementalASPL(topo)

    def test_rejects_single_switch(self):
        topo = Topology()
        topo.add_switch(0)
        with pytest.raises(TopologyError, match="at least 2"):
            IncrementalASPL(topo)


class TestSwapSequences:
    @given(_instances)
    @settings(max_examples=12, deadline=None)
    def test_tracks_random_swap_sequences_exactly(self, params):
        n, r, seed = params
        topo = random_regular_topology(n, r, seed=seed)
        tracker = IncrementalASPL(topo)
        rng = as_rng(seed + 1)
        applied = 0
        attempts = 0
        while applied < 8 and attempts < 50:
            attempts += 1
            swap = sample_double_edge_swap(topo, rng=rng)
            if swap is None:
                break
            evaluation = tracker.evaluate(swap)
            apply_double_edge_swap(topo, swap)
            if not topo.is_connected():
                assert not evaluation.connected
                apply_double_edge_swap(topo, swap.inverse())
                continue
            assert evaluation.connected
            tracker.commit(evaluation)
            applied += 1
            assert tracker.aspl == pytest.approx(
                average_shortest_path_length(topo), abs=1e-12
            )
        if applied:
            assert tracker.distances() == all_pairs_shortest_lengths(topo)

    def test_evaluate_does_not_mutate_state(self):
        topo = random_regular_topology(16, 4, seed=3)
        tracker = IncrementalASPL(topo)
        before = tracker.aspl
        swap = sample_double_edge_swap(topo, rng=as_rng(4))
        evaluation = tracker.evaluate(swap)
        assert tracker.aspl == before
        assert evaluation.aspl != pytest.approx(before) or True  # may tie
        # Committing afterwards adopts the evaluated state.
        if evaluation.connected:
            tracker.commit(evaluation)
            assert tracker.total_distance == evaluation.total_distance

    def test_detects_disconnecting_swap(self):
        # C6 split into two triangles by one swap.
        topo = _cycle(6)
        tracker = IncrementalASPL(topo)
        swap = DoubleEdgeSwap(0, 1, 3, 4)
        evaluation = tracker.evaluate(swap)
        assert not evaluation.connected
        with pytest.raises(TopologyError, match="disconnect"):
            tracker.commit(evaluation)
        # State is untouched and still usable.
        assert tracker.aspl == pytest.approx(
            average_shortest_path_length(topo), abs=1e-12
        )

    def test_distance_lookup(self):
        topo = _cycle(8)
        tracker = IncrementalASPL(topo)
        assert tracker.distance(0, 4) == 4
        assert tracker.distance(0, 7) == 1
        with pytest.raises(TopologyError):
            tracker.distance(0, "missing")


class TestValidation:
    def test_rejects_missing_removed_link(self):
        topo = _cycle(6)
        tracker = IncrementalASPL(topo)
        with pytest.raises(TopologyError, match="missing link"):
            tracker.evaluate(DoubleEdgeSwap(0, 2, 3, 4))

    def test_rejects_existing_added_link(self):
        topo = _cycle(6)
        topo.add_link(0, 3)
        tracker = IncrementalASPL(topo)
        with pytest.raises(TopologyError, match="existing link"):
            tracker.evaluate(DoubleEdgeSwap(0, 1, 2, 3))

    def test_rejects_repeated_endpoints(self):
        topo = _cycle(6)
        tracker = IncrementalASPL(topo)
        with pytest.raises(TopologyError, match="distinct"):
            tracker.evaluate(DoubleEdgeSwap(0, 1, 1, 2))

    def test_rejects_unknown_switch(self):
        topo = _cycle(6)
        tracker = IncrementalASPL(topo)
        with pytest.raises(TopologyError, match="does not exist"):
            tracker.evaluate(DoubleEdgeSwap(0, 1, 9, 10))
