"""Integration tests for the degraded-fabric resilience experiment."""

from __future__ import annotations

import pytest

from repro.experiments.resilience import matched_random_topology, run_resilience
from repro.topology.fattree import fat_tree_topology


class TestMatchedEquipment:
    def test_random_fabric_matches_fat_tree_budget(self):
        k = 4
        fat_tree = fat_tree_topology(k)
        random_fabric = matched_random_topology(k, seed=0)
        assert random_fabric.num_switches == fat_tree.num_switches
        assert random_fabric.num_servers == fat_tree.num_servers
        # Per-switch port budget is k: servers + network degree <= k.
        for node in random_fabric.switches:
            used = random_fabric.servers_at(node) + random_fabric.degree(node)
            assert used <= k

    def test_seeded_rebuild_identical(self):
        a = matched_random_topology(4, seed=7)
        b = matched_random_topology(4, seed=7)
        assert sorted((repr(l.u), repr(l.v)) for l in a.links) == sorted(
            (repr(l.u), repr(l.v)) for l in b.links
        )


@pytest.mark.slow
class TestResilienceExperiment:
    def test_curves_normalized_and_decreasing(self):
        result = run_resilience(
            k=4, rates=(0.0, 0.1, 0.2), runs=2, seed=0
        )
        assert len(result.series) == 3
        for series in result.series:
            assert series.y_at(0.0) == pytest.approx(1.0)
            # Retained throughput never exceeds intact by more than the
            # served-set shrinkage allows on these small instances.
            ys = series.ys()
            assert ys[-1] <= ys[0] + 1e-9

    def test_metadata_reports_served_fraction_per_rate(self):
        result = run_resilience(k=4, rates=(0.0, 0.1, 0.2), runs=1, seed=0)
        fractions = result.metadata["mean_served_fraction"]
        assert set(fractions) == {s.name for s in result.series}
        for by_rate in fractions.values():
            # Intact cells are excluded: only degraded rates appear.
            assert set(by_rate) == {0.1, 0.2}
            for value in by_rate.values():
                assert 0.0 <= value <= 1.0
