"""Empirical checks of Theorem 2's supporting lemmas on sampled graphs.

Lemma 2: for the complete bipartite demand graph across two equal clusters,
the non-uniform sparsest cut is Θ(q) — linear in the cross-density. These
tests sample the paper's restricted model (equal clusters, regular-ish
degree, controlled cross links) and verify the linear scaling and the
two-regime throughput consequence end to end.
"""

from __future__ import annotations

import pytest

from repro.core.theory import cluster_densities, q_star, two_regime_throughput
from repro.metrics.cuts import nonuniform_sparsest_cut
from repro.metrics.paths import average_shortest_path_length
from repro.topology.two_cluster import two_cluster_random_topology
from repro.traffic.base import TrafficMatrix


def _model_graph(cross_links: int, seed: int):
    """Equal clusters of 8 nodes, degree ~6, exact cross count."""
    return two_cluster_random_topology(
        num_large=8,
        large_network_ports=6,
        num_small=8,
        small_network_ports=6,
        cross_links=cross_links,
        seed=seed,
    )


def _bipartite_demand(topo) -> TrafficMatrix:
    """The K_{V1,V2} demand graph of Theorem 3 / Lemma 2."""
    large = topo.nodes_in_cluster("large")
    small = topo.nodes_in_cluster("small")
    demands = {}
    for u in large:
        for v in small:
            demands[(u, v)] = 1.0
            demands[(v, u)] = 1.0
    return TrafficMatrix(
        name="K(V1,V2)", demands=demands, num_flows=len(demands)
    )


class TestLemma2SparsestCut:
    def test_cut_scales_linearly_in_q(self):
        """Doubling cross links ~doubles the bipartite sparsest cut."""
        values = {}
        for cross in (4, 8, 16):
            topo = _model_graph(cross, seed=5)
            traffic = _bipartite_demand(topo)
            value, _ = nonuniform_sparsest_cut(topo, traffic)
            values[cross] = value
        assert values[8] == pytest.approx(2.0 * values[4], rel=0.35)
        assert values[16] == pytest.approx(4.0 * values[4], rel=0.35)

    def test_cut_side_is_the_cluster_when_starved(self):
        topo = _model_graph(3, seed=6)
        traffic = _bipartite_demand(topo)
        _, side = nonuniform_sparsest_cut(topo, traffic)
        large = set(topo.nodes_in_cluster("large"))
        small = set(topo.nodes_in_cluster("small"))
        assert side in (large, small)

    def test_lemma2_upper_expression(self):
        """phi <= 2q with q from the concrete construction (Lemma 2's easy
        direction, via the whole-cluster cut)."""
        for cross in (4, 8):
            topo = _model_graph(cross, seed=7)
            traffic = _bipartite_demand(topo)
            value, _ = nonuniform_sparsest_cut(topo, traffic)
            # Whole-cluster cut: capacity 2*cross, demand 2*8*8.
            whole_cluster_ratio = 2.0 * cross / (2.0 * 64.0)
            assert value <= whole_cluster_ratio + 1e-9


class TestTwoRegimeEndToEnd:
    def test_predicted_profile_brackets_measurement(self):
        """The Theorem 2 piecewise model, calibrated at the plateau,
        predicts the starved regime within a factor ~2."""
        from repro.flow.edge_lp import max_concurrent_flow
        from repro.traffic.permutation import random_permutation_traffic

        def measure(cross: int) -> float:
            values = []
            for seed in (8, 9):
                topo = _model_graph(cross, seed=seed)
                for v in topo.switches:
                    topo.set_servers(v, 3)
                if not topo.is_connected():
                    continue
                traffic = random_permutation_traffic(topo, seed=seed)
                values.append(max_concurrent_flow(topo, traffic).throughput)
            return sum(values) / len(values)

        plateau = measure(24)  # unbiased-random-ish cross share
        starved_cross = 3
        starved = measure(starved_cross)

        topo = _model_graph(24, seed=8)
        aspl = average_shortest_path_length(topo)
        n = topo.num_switches
        p, q_plateau = cluster_densities(n, 6, 24)
        _, q_starved = cluster_densities(n, 6, starved_cross)
        boundary = q_star(p, aspl, c1=1.0)
        assert q_starved < boundary < q_plateau * 4  # regimes separated

        predicted = two_regime_throughput(
            q_starved, p, aspl, peak=plateau, c1=1.0
        )
        assert predicted == pytest.approx(starved, rel=1.0)
        assert starved < 0.6 * plateau  # the drop is real
