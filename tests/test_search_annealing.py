"""Tests for the simulated-annealing optimizer."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.metrics.paths import average_shortest_path_length
from repro.search.annealing import AnnealResult, CoolingSchedule, anneal
from repro.search.objectives import ASPLObjective
from repro.topology.random_regular import random_regular_topology
from repro.topology.smallworld import small_world_topology


@pytest.fixture
def ring():
    """A 20-switch ring lattice: high ASPL, lots of room to improve."""
    return small_world_topology(20, 4, rewire_probability=0.0, seed=0)


class TestCoolingSchedule:
    def test_geometric_endpoints(self):
        schedule = CoolingSchedule(2.0, 0.002)
        assert schedule.temperature(0, 100) == pytest.approx(2.0)
        assert schedule.temperature(99, 100) == pytest.approx(0.002)
        mid = schedule.temperature(50, 100)
        assert 0.002 < mid < 2.0

    def test_linear_endpoints(self):
        schedule = CoolingSchedule(1.0, 0.5, kind="linear")
        assert schedule.temperature(0, 11) == pytest.approx(1.0)
        assert schedule.temperature(5, 11) == pytest.approx(0.75)
        assert schedule.temperature(10, 11) == pytest.approx(0.5)

    def test_single_step_uses_initial(self):
        schedule = CoolingSchedule(1.0, 0.1)
        assert schedule.temperature(0, 1) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ExperimentError, match="final_temperature"):
            CoolingSchedule(1.0, 2.0)
        with pytest.raises(ExperimentError, match="unknown cooling"):
            CoolingSchedule(1.0, 0.1, kind="volcanic")
        with pytest.raises(ValueError):
            CoolingSchedule(-1.0, 0.1)


class TestAnneal:
    def test_improves_ring_aspl(self, ring):
        before = average_shortest_path_length(ring)
        result = anneal(ring, "aspl", steps=600, seed=1)
        after = average_shortest_path_length(result.topology)
        assert after < before
        assert result.best_score == pytest.approx(-after, abs=1e-12)
        assert result.best_score >= result.initial_score

    def test_preserves_degrees_connectivity_and_servers(self):
        topo = random_regular_topology(18, 4, servers_per_switch=3, seed=2)
        result = anneal(topo, "aspl", steps=300, seed=3)
        optimized = result.topology
        assert optimized.degree_histogram() == topo.degree_histogram()
        assert optimized.is_connected()
        assert optimized.server_map() == topo.server_map()

    def test_input_topology_unchanged(self, ring):
        edges = {frozenset((link.u, link.v)) for link in ring.links}
        anneal(ring, "aspl", steps=200, seed=4)
        assert {frozenset((link.u, link.v)) for link in ring.links} == edges

    def test_deterministic_for_seed(self, ring):
        a = anneal(ring, "aspl", steps=300, seed=7, trace_every=50)
        b = anneal(ring, "aspl", steps=300, seed=7, trace_every=50)
        assert a.best_score == b.best_score
        assert a.accepted == b.accepted
        assert a.trace == b.trace
        assert {frozenset((link.u, link.v)) for link in a.topology.links} == {
            frozenset((link.u, link.v)) for link in b.topology.links
        }

    def test_best_trace_is_monotone(self, ring):
        result = anneal(ring, "aspl", steps=400, seed=5, trace_every=20)
        bests = [entry[3] for entry in result.trace]
        assert bests == sorted(bests)
        temperatures = [entry[1] for entry in result.trace]
        assert temperatures == sorted(temperatures, reverse=True)

    def test_accounting_adds_up(self, ring):
        result = anneal(ring, "aspl", steps=250, seed=6)
        assert result.accepted + result.rejected + result.invalid == 250
        assert result.steps == 250

    def test_objective_instance_and_generic_path(self, ring):
        # Spectral objective has no incremental state: exercises the
        # apply/evaluate/revert fallback.
        result = anneal(ring, ASPLObjective(), steps=60, seed=8)
        assert isinstance(result, AnnealResult)
        spectral = anneal(ring, "spectral", steps=40, seed=9)
        assert spectral.best_score >= spectral.initial_score
        assert spectral.topology.is_connected()

    def test_explicit_schedule(self, ring):
        schedule = CoolingSchedule(0.5, 0.005, kind="linear")
        result = anneal(ring, "aspl", steps=100, seed=10, schedule=schedule)
        assert result.best_score >= result.initial_score

    def test_named_topology(self, ring):
        result = anneal(ring, "aspl", steps=50, seed=11)
        assert result.topology.name.endswith("+aspl")
        assert result.improvement == pytest.approx(
            result.best_score - result.initial_score
        )
