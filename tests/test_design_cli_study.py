"""Tests for the ``design`` CLI subcommand and the registered experiment."""

from __future__ import annotations

import json

from repro.design import default_catalog
from repro.experiments.registry import run_experiment
from repro.experiments.runner import main

CLI_ARGS = [
    "design",
    "--budget",
    "20000",
    "--servers",
    "8",
    "--replicates",
    "1",
    "--generators",
    "rrg,fat-tree,matched",
    "--exact-limit",
    "60",
]


class TestDesignCli:
    def test_cold_then_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        json_path = tmp_path / "frontier.json"
        csv_path = tmp_path / "frontier.csv"
        args = CLI_ARGS + [
            "--cache-dir",
            cache,
            "--json",
            str(json_path),
            "--csv",
            str(csv_path),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "design frontier" in cold
        assert "random beats fat-tree at matched cost: yes" in cold
        assert "0 cold solves" not in cold

        payload = json.loads(json_path.read_text())
        assert payload["dominance"]["confirmed"] is True
        assert payload["frontier"]
        assert csv_path.read_text().count("\n") > 1

        assert main(CLI_ARGS + ["--cache-dir", cache, "--quiet"]) == 0
        warm = capsys.readouterr().out
        assert "0 cold solves" in warm

    def test_custom_catalog_file(self, tmp_path, capsys):
        catalog_path = tmp_path / "catalog.json"
        default_catalog().save(catalog_path)
        args = CLI_ARGS + ["--catalog", str(catalog_path), "--quiet"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cold solves" in out


class TestDesignStudy:
    def test_experiment_reports_dominance(self, tmp_path):
        result = run_experiment(
            "design",
            budget=20_000.0,
            servers=8,
            replicates=1,
            cache_dir=str(tmp_path / "cache"),
        )
        assert result.experiment_id == "design"
        assert result.metadata["dominance_confirmed"] is True
        assert result.metadata["dominating_pairs"] >= 1
        assert result.metadata["frontier_size"] >= 1
        frontier = result.get_series("frontier")
        structured = result.get_series("structured")
        assert frontier.points
        assert structured.points
        # The frontier's best throughput beats every structured design.
        assert frontier.peak().y > structured.peak().y
