"""The failure axis of the scenario pipeline.

Covers the stability contracts the warm cache depends on: failure-free
cells derive the exact seeds and fingerprints a failure-unaware grid
derives, failure draws are deterministic from the cell seed, and
degraded solves get their own content addresses.
"""

from __future__ import annotations

import json

import pytest

from repro.flow.solvers import SolverConfig
from repro.pipeline.engine import evaluate_cell, run_grid
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.resilience import DegradedTopology, FailureSpec

RATES = (0.0, 0.1, 0.3)


def small_grid(**overrides) -> ScenarioGrid:
    kwargs = dict(
        name="t",
        topologies=(
            TopologySpec.make("rrg", network_degree=4, servers_per_switch=2),
        ),
        traffics=(TrafficSpec.make("permutation"),),
        solvers=(SolverConfig("edge_lp"),),
        sizes=(10,),
        seeds=2,
    )
    kwargs.update(overrides)
    return ScenarioGrid(**kwargs)


def failure_axis(model: str = "random_links") -> tuple:
    return tuple(FailureSpec.make(model, rate=rate) for rate in RATES)


class TestGridAxis:
    def test_cell_count_multiplies(self):
        grid = small_grid(failures=failure_axis())
        assert len(grid) == 2 * 3  # 2 replicates x 3 failure levels
        assert len(grid.cells()) == len(grid)

    def test_rate_zero_normalizes_to_none(self):
        grid = small_grid(failures=failure_axis())
        assert grid.failures[0] is None
        assert all(spec is not None for spec in grid.failures[1:])

    def test_empty_axis_rejected(self):
        with pytest.raises(Exception, match="at least one entry"):
            small_grid(failures=())

    def test_dict_roundtrip(self):
        grid = small_grid(failures=failure_axis("random_switches"))
        restored = ScenarioGrid.from_dict(
            json.loads(json.dumps(grid.to_dict()))
        )
        assert restored == grid

    def test_failure_free_grid_dict_roundtrip_unchanged(self):
        grid = small_grid()
        assert grid.to_dict()["failures"] is None
        assert ScenarioGrid.from_dict(grid.to_dict()) == grid


class TestSeedStability:
    def test_failure_axis_keeps_existing_seeds(self):
        """Adding a failure axis must not change any cell's seed — the
        same contract the solver axis honors."""
        plain = {
            (c.size, c.replicate): c.seed for c in small_grid().cells()
        }
        for cell in small_grid(failures=failure_axis()).cells():
            assert cell.seed == plain[(cell.size, cell.replicate)]

    def test_failure_columns_share_instances(self):
        """Every failure level degrades the same sampled topology and
        offers the same workload."""
        grid = small_grid(failures=failure_axis(), seeds=1)
        demands = set()
        base_links = set()
        for cell in grid.cells():
            topo, traffic = cell.build()
            base = topo.base if isinstance(topo, DegradedTopology) else topo
            base_links.add(
                tuple(sorted((repr(l.u), repr(l.v)) for l in base.links))
            )
            demands.add(tuple(sorted(map(repr, traffic.demands.items()))))
        assert len(base_links) == 1
        assert len(demands) == 1

    def test_failed_sets_nested_across_rates(self):
        grid = small_grid(failures=failure_axis(), seeds=1)
        by_rate = {}
        for cell in grid.cells():
            topo, _ = cell.build()
            rate = cell.failure.rate if cell.failure is not None else 0.0
            by_rate[rate] = (
                set(topo.failed_links)
                if isinstance(topo, DegradedTopology)
                else set()
            )
        assert by_rate[0.0] <= by_rate[0.1] <= by_rate[0.3]
        assert by_rate[0.3]

    def test_build_deterministic(self):
        grid = small_grid(failures=failure_axis(), seeds=1)
        cell = [c for c in grid.cells() if c.failure is not None][0]
        a, _ = cell.build()
        b, _ = cell.build()
        assert a.failed_links == b.failed_links


class TestEffectiveSolver:
    def test_failure_cell_defaults_drop(self):
        grid = small_grid(failures=failure_axis())
        for cell in grid.cells():
            config = cell.effective_solver()
            if cell.failure is None:
                assert config == cell.solver
                assert "unreachable" not in config.options_dict()
            else:
                assert config.options_dict()["unreachable"] == "drop"

    def test_explicit_policy_wins(self):
        grid = small_grid(
            failures=failure_axis(),
            solvers=(SolverConfig.make("edge_lp", unreachable="error"),),
        )
        cell = [c for c in grid.cells() if c.failure is not None][0]
        assert cell.effective_solver().options_dict()["unreachable"] == "error"

    def test_label_includes_failure(self):
        grid = small_grid(failures=failure_axis())
        labels = {c.label() for c in grid.cells()}
        assert any("random_links@0.3" in label for label in labels)


class TestEngine:
    def test_degraded_and_intact_keys_differ(self, tmp_path):
        grid = small_grid(failures=failure_axis(), seeds=1)
        keys = {evaluate_cell(c).key for c in grid.cells()}
        assert len(keys) == 3

    def test_failure_free_column_reuses_plain_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_grid(small_grid(), cache_dir=cache_dir)
        sweep = run_grid(small_grid(failures=failure_axis()), cache_dir=cache_dir)
        rate0 = [c for c in sweep.cells if c.scenario.failure is None]
        assert rate0 and all(c.cache_hit for c in rate0)

    def test_warm_rerun_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        grid = small_grid(failures=failure_axis("random_switches"))
        cold = run_grid(grid, cache_dir=cache_dir)
        warm = run_grid(grid, cache_dir=cache_dir)
        assert warm.cache_hits == len(warm.cells)
        assert [c.throughput for c in warm.cells] == [
            c.throughput for c in cold.cells
        ]
        assert [c.dropped_pairs for c in warm.cells] == [
            c.dropped_pairs for c in cold.cells
        ]

    def test_rows_and_summary_carry_failure(self, tmp_path):
        sweep = run_grid(small_grid(failures=failure_axis()))
        rows = sweep.rows()
        assert {row["failure"] for row in rows} == {
            "none",
            "random_links@0.1",
            "random_links@0.3",
        }
        summary = sweep.mean_series()
        assert {entry["failure"] for entry in summary} == {
            "none",
            "random_links@0.1",
            "random_links@0.3",
        }
        assert all("dropped_pairs" in row for row in rows)

    def test_mean_throughput_monotone_in_rate(self):
        """Nested link failures on one sampled fabric: throughput cannot
        rise with the failure rate while nothing is dropped."""
        sweep = run_grid(small_grid(failures=failure_axis(), seeds=3))
        by_rate: dict = {}
        for cell in sweep.cells:
            rate = (
                cell.scenario.failure.rate
                if cell.scenario.failure is not None
                else 0.0
            )
            by_rate.setdefault(rate, []).append(cell.throughput)
        curve = [
            sum(by_rate[rate]) / len(by_rate[rate])
            for rate in sorted(by_rate)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(curve, curve[1:]))

    def test_csv_includes_failure_column(self, tmp_path):
        sweep = run_grid(small_grid(failures=failure_axis()))
        path = tmp_path / "cells.csv"
        sweep.write_csv(str(path))
        header = path.read_text().splitlines()[0]
        assert "failure" in header.split(",")
        assert "dropped_pairs" in header.split(",")
