"""Tests for VL2 and the rewired VL2 construction."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.vl2 import (
    AGG,
    CORE,
    TOR,
    rewired_vl2_topology,
    vl2_equipment_summary,
    vl2_topology,
)


class TestVl2:
    def test_structure_counts(self):
        topo = vl2_topology(4, 6)
        summary = vl2_equipment_summary(topo)
        assert summary[TOR] == 6  # DA*DI/4
        assert summary[AGG] == 6  # DI
        assert summary[CORE] == 2  # DA/2

    def test_agg_core_complete_bipartite(self):
        topo = vl2_topology(4, 4)
        aggs = topo.nodes_of_type(AGG)
        cores = topo.nodes_of_type(CORE)
        for agg in aggs:
            for core in cores:
                assert topo.has_link(agg, core)

    def test_tor_has_two_uplinks_to_distinct_aggs(self):
        topo = vl2_topology(6, 6)
        for tor in topo.nodes_of_type(TOR):
            neighbors = topo.neighbors(tor)
            assert len(neighbors) == 2
            assert all(topo.switch_type_of(v) == AGG for v in neighbors)

    def test_agg_port_budget(self):
        da, di = 6, 6
        topo = vl2_topology(da, di)
        for agg in topo.nodes_of_type(AGG):
            assert topo.degree(agg) == da

    def test_core_port_budget(self):
        da, di = 6, 8
        topo = vl2_topology(da, di)
        for core in topo.nodes_of_type(CORE):
            assert topo.degree(core) == di

    def test_servers_and_capacities(self):
        topo = vl2_topology(4, 4, servers_per_tor=20, fabric_capacity=10.0)
        assert topo.num_servers == 4 * 20
        assert all(link.capacity == 10.0 for link in topo.links)

    def test_odd_degrees_rejected(self):
        with pytest.raises(TopologyError, match="even"):
            vl2_topology(3, 4)
        with pytest.raises(TopologyError, match="even"):
            vl2_topology(4, 6 + 1)

    def test_reduced_tor_count(self):
        topo = vl2_topology(4, 4, num_tors=2)
        assert vl2_equipment_summary(topo)[TOR] == 2

    def test_too_many_tors_rejected(self):
        with pytest.raises(TopologyError, match="at most"):
            vl2_topology(4, 4, num_tors=5)


class TestRewiredVl2:
    def test_equipment_preserved(self):
        topo = rewired_vl2_topology(4, 4, num_tors=4, seed=1)
        summary = vl2_equipment_summary(topo)
        assert summary[AGG] == 4
        assert summary[CORE] == 2
        assert summary[TOR] == 4

    def test_fabric_port_budgets(self):
        da, di = 6, 8
        topo = rewired_vl2_topology(da, di, num_tors=10, seed=2)
        for agg in topo.nodes_of_type(AGG):
            assert topo.degree(agg) <= da
        for core in topo.nodes_of_type(CORE):
            assert topo.degree(core) <= di

    def test_tor_uplinks(self):
        topo = rewired_vl2_topology(6, 8, num_tors=10, tor_uplinks=2, seed=3)
        for tor in topo.nodes_of_type(TOR):
            assert topo.degree(tor) == 2
            for neighbor in topo.neighbors(tor):
                assert topo.switch_type_of(neighbor) in (AGG, CORE)

    def test_tors_can_exceed_vl2_design(self):
        # VL2(4,4) caps at 4 ToRs; rewiring frees ports for more.
        topo = rewired_vl2_topology(4, 4, num_tors=9, seed=4)
        assert vl2_equipment_summary(topo)[TOR] == 9

    def test_port_exhaustion_rejected(self):
        # fabric ports = di*da + (da/2)*di = 16 + 8 = 24 -> max 12 ToRs.
        with pytest.raises(TopologyError, match="fabric ports"):
            rewired_vl2_topology(4, 4, num_tors=13, seed=0)

    def test_connected_at_moderate_size(self):
        for seed in range(4):
            topo = rewired_vl2_topology(6, 8, num_tors=8, seed=seed)
            assert topo.is_connected()

    def test_deterministic(self):
        a = rewired_vl2_topology(4, 4, num_tors=5, seed=9)
        b = rewired_vl2_topology(4, 4, num_tors=5, seed=9)
        ea = sorted(tuple(sorted((l.u, l.v))) for l in a.links)
        eb = sorted(tuple(sorted((l.u, l.v))) for l in b.links)
        assert ea == eb
