"""Tests for the event queue and link-queue primitives."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import EventQueue
from repro.simulation.links import LinkQueue


class TestEventQueue:
    def test_time_ordering(self):
        events = EventQueue()
        fired: list[str] = []
        events.schedule(2.0, lambda: fired.append("late"))
        events.schedule(1.0, lambda: fired.append("early"))
        events.run_until(10.0)
        assert fired == ["early", "late"]

    def test_fifo_at_equal_times(self):
        events = EventQueue()
        fired: list[int] = []
        for i in range(5):
            events.schedule(1.0, lambda i=i: fired.append(i))
        events.run_until(2.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_run_until_stops_at_horizon(self):
        events = EventQueue()
        fired: list[str] = []
        events.schedule(5.0, lambda: fired.append("beyond"))
        processed = events.run_until(4.0)
        assert processed == 0
        assert not fired
        assert events.now == 4.0
        assert len(events) == 1

    def test_nested_scheduling(self):
        events = EventQueue()
        fired: list[float] = []

        def chain() -> None:
            fired.append(events.now)
            if len(fired) < 3:
                events.schedule(1.0, chain)

        events.schedule(1.0, chain)
        events.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_past_scheduling_rejected(self):
        events = EventQueue()
        with pytest.raises(SimulationError, match="past"):
            events.schedule(-1.0, lambda: None)
        events.run_until(5.0)
        with pytest.raises(SimulationError, match="before current"):
            events.schedule_at(1.0, lambda: None)

    def test_event_storm_guard(self):
        events = EventQueue()

        def storm() -> None:
            events.schedule(0.0, storm)

        events.schedule(0.0, storm)
        with pytest.raises(SimulationError, match="exceeded"):
            events.run_until(1.0, max_events=100)


class TestLinkQueue:
    def test_serialization_timing(self):
        events = EventQueue()
        link = LinkQueue(events, rate=2.0, propagation_delay=0.5)
        arrivals: list[float] = []
        link.submit(1.0, lambda: arrivals.append(events.now))
        events.run_until(10.0)
        # 1 unit at rate 2 = 0.5 serialization + 0.5 propagation.
        assert arrivals == [1.0]

    def test_back_to_back_queueing(self):
        events = EventQueue()
        link = LinkQueue(events, rate=1.0, propagation_delay=0.0)
        arrivals: list[float] = []
        for _ in range(3):
            link.submit(1.0, lambda: arrivals.append(events.now))
        events.run_until(10.0)
        assert arrivals == [1.0, 2.0, 3.0]

    def test_buffer_overflow_drops(self):
        events = EventQueue()
        link = LinkQueue(events, rate=1.0, buffer_packets=2)
        accepted = [link.submit(1.0, lambda: None) for _ in range(4)]
        assert accepted == [True, True, False, False]
        assert link.dropped == 2

    def test_occupancy_drains(self):
        events = EventQueue()
        link = LinkQueue(events, rate=1.0, buffer_packets=2)
        link.submit(1.0, lambda: None)
        link.submit(1.0, lambda: None)
        assert link.occupancy == 2
        events.run_until(10.0)
        assert link.occupancy == 0
        assert link.delivered == 2
        # Buffer has space again.
        assert link.submit(1.0, lambda: None)

    def test_utilization_accounting(self):
        events = EventQueue()
        link = LinkQueue(events, rate=1.0)
        link.submit(1.0, lambda: None)
        events.run_until(4.0)
        assert link.utilization(4.0) == pytest.approx(0.25)
        with pytest.raises(SimulationError, match="positive"):
            link.utilization(0.0)

    def test_invalid_parameters_rejected(self):
        events = EventQueue()
        with pytest.raises(ValueError, match="rate"):
            LinkQueue(events, rate=0.0)
        with pytest.raises(SimulationError, match="propagation"):
            LinkQueue(events, rate=1.0, propagation_delay=-0.1)
