"""Tests for the exact max-concurrent-flow LP against known optima."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError
from repro.flow.edge_lp import max_concurrent_flow
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.traffic.permutation import random_permutation_traffic


class TestKnownOptima:
    def test_single_link_bidirectional(self, path_two):
        tm = TrafficMatrix(
            name="pair",
            demands={("a", "b"): 1.0, ("b", "a"): 1.0},
            num_flows=2,
        )
        result = max_concurrent_flow(path_two, tm)
        # Full-duplex link: each direction independently carries 1 unit.
        assert result.throughput == pytest.approx(1.0)

    def test_triangle_single_demand_uses_both_routes(self, triangle):
        tm = TrafficMatrix(name="one", demands={(0, 1): 1.0}, num_flows=1)
        result = max_concurrent_flow(triangle, tm)
        # Direct link (capacity 1) plus the 2-hop detour (capacity 1).
        assert result.throughput == pytest.approx(2.0)

    def test_star_rotation(self):
        topo = Topology("star")
        topo.add_switch("c")
        for leaf in ("l1", "l2", "l3"):
            topo.add_switch(leaf, servers=1)
            topo.add_link("c", leaf, capacity=1.0)
        tm = TrafficMatrix(
            name="rotate",
            demands={("l1", "l2"): 1.0, ("l2", "l3"): 1.0, ("l3", "l1"): 1.0},
            num_flows=3,
        )
        result = max_concurrent_flow(topo, tm)
        # Each access arc carries exactly one flow.
        assert result.throughput == pytest.approx(1.0)

    def test_demand_scaling_inverse(self, triangle):
        tm1 = TrafficMatrix(name="d1", demands={(0, 1): 1.0}, num_flows=1)
        tm2 = tm1.scaled(2.0)
        t1 = max_concurrent_flow(triangle, tm1).throughput
        t2 = max_concurrent_flow(triangle, tm2).throughput
        assert t2 == pytest.approx(t1 / 2.0)

    def test_capacity_scaling_linear(self):
        def build(cap: float) -> Topology:
            topo = Topology("pair")
            topo.add_switch("a", servers=1)
            topo.add_switch("b", servers=1)
            topo.add_link("a", "b", capacity=cap)
            return topo

        tm = TrafficMatrix(name="x", demands={("a", "b"): 1.0}, num_flows=1)
        t1 = max_concurrent_flow(build(1.0), tm).throughput
        t3 = max_concurrent_flow(build(3.0), tm).throughput
        assert t3 == pytest.approx(3.0 * t1)

    def test_bottleneck_cut_respected(self):
        # Two cliques joined by one unit link: all demand crosses it.
        topo = Topology("barbell")
        for v in range(6):
            topo.add_switch(v, servers=1)
        for u in range(3):
            for v in range(u + 1, 3):
                topo.add_link(u, v)
                topo.add_link(u + 3, v + 3)
        topo.add_link(2, 3, capacity=1.0)
        tm = TrafficMatrix(
            name="across",
            demands={(0, 4): 1.0, (1, 5): 1.0},
            num_flows=2,
        )
        result = max_concurrent_flow(topo, tm)
        assert result.throughput == pytest.approx(0.5)


class TestStructure:
    def test_flows_respect_capacity(self, small_rrg, small_rrg_traffic):
        result = max_concurrent_flow(small_rrg, small_rrg_traffic)
        result.validate_feasibility()

    def test_aggregation_matches_per_pair(self, small_rrg, small_rrg_traffic):
        agg = max_concurrent_flow(small_rrg, small_rrg_traffic)
        per_pair = max_concurrent_flow(
            small_rrg, small_rrg_traffic, aggregate_by_source=False
        )
        assert agg.throughput == pytest.approx(per_pair.throughput, rel=1e-6)

    def test_unreachable_demand_raises_by_default(self):
        # Historically edge_lp silently returned t=0 here while every
        # other backend raised; the unified unreachable policy makes
        # "error" raise everywhere and "drop" serve what it can.
        topo = Topology("split")
        for v in range(4):
            topo.add_switch(v, servers=1)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        tm = TrafficMatrix(name="cross", demands={(0, 2): 1.0}, num_flows=1)
        with pytest.raises(FlowError, match="no path"):
            max_concurrent_flow(topo, tm)
        result = max_concurrent_flow(topo, tm, unreachable="drop")
        assert result.throughput == pytest.approx(0.0)
        assert result.dropped_pairs == ((0, 2),)
        assert result.dropped_demand == pytest.approx(1.0)

    def test_empty_traffic_rejected(self, triangle):
        tm = TrafficMatrix(name="none", demands={}, num_flows=0)
        with pytest.raises(FlowError, match="no network demands"):
            max_concurrent_flow(triangle, tm)

    def test_linkless_topology_rejected(self):
        topo = Topology("isolated")
        topo.add_switch(0, servers=1)
        topo.add_switch(1, servers=1)
        tm = TrafficMatrix(name="x", demands={(0, 1): 1.0}, num_flows=1)
        with pytest.raises(FlowError, match="no path"):
            max_concurrent_flow(topo, tm)

    def test_unknown_endpoint_rejected(self, triangle):
        tm = TrafficMatrix(name="bad", demands={(0, "zz"): 1.0}, num_flows=1)
        with pytest.raises(Exception, match="not a switch"):
            max_concurrent_flow(triangle, tm)

    def test_result_metadata(self, small_rrg, small_rrg_traffic):
        result = max_concurrent_flow(small_rrg, small_rrg_traffic)
        assert result.solver == "edge-lp"
        assert result.exact
        assert result.total_demand == small_rrg_traffic.total_demand
        assert result.total_capacity == pytest.approx(
            small_rrg.total_capacity
        )

    def test_throughput_bounded_by_theorem1(self):
        # Sanity against the paper's bound on several seeded RRGs.
        from repro.core.bounds import throughput_upper_bound
        from repro.metrics.paths import average_shortest_path_length
        from repro.topology.random_regular import random_regular_topology

        for seed in range(3):
            topo = random_regular_topology(10, 4, servers_per_switch=3, seed=seed)
            traffic = random_permutation_traffic(topo, seed=seed)
            result = max_concurrent_flow(topo, traffic)
            bound = throughput_upper_bound(
                10,
                4,
                traffic.num_network_flows,
                aspl=average_shortest_path_length(topo),
            )
            assert result.throughput <= bound * (1 + 1e-9)
