"""Tests for the TrafficMatrix data model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TrafficError
from repro.traffic.base import TrafficMatrix, servers_of


class TestServersOf:
    def test_enumeration(self):
        servers = servers_of({"a": 2, "b": 1})
        assert servers == [("a", 0), ("a", 1), ("b", 0)]

    def test_empty(self):
        assert servers_of({}) == []
        assert servers_of({"a": 0}) == []


class TestTrafficMatrix:
    def test_basic_accessors(self):
        tm = TrafficMatrix(
            name="t",
            demands={("a", "b"): 2.0, ("b", "a"): 1.0},
            num_flows=3,
        )
        assert tm.total_demand == 3.0
        assert tm.demand("a", "b") == 2.0
        assert tm.demand("a", "z") == 0.0
        assert set(tm.pairs()) == {("a", "b"), ("b", "a")}
        assert tm.sources() == ["a", "b"]
        assert tm.num_network_flows == 3

    def test_zero_demands_dropped(self):
        tm = TrafficMatrix(name="t", demands={("a", "b"): 0.0}, num_flows=0)
        assert tm.pairs() == []

    def test_self_demand_rejected(self):
        with pytest.raises(TrafficError, match="local"):
            TrafficMatrix(name="t", demands={("a", "a"): 1.0}, num_flows=1)

    def test_negative_demand_rejected(self):
        with pytest.raises(TrafficError, match="negative"):
            TrafficMatrix(name="t", demands={("a", "b"): -1.0}, num_flows=1)

    def test_negative_flow_counts_rejected(self):
        with pytest.raises(TrafficError, match=">= 0"):
            TrafficMatrix(name="t", demands={}, num_flows=-1)

    def test_scaled(self):
        tm = TrafficMatrix(name="t", demands={("a", "b"): 2.0}, num_flows=2)
        doubled = tm.scaled(2.0)
        assert doubled.demand("a", "b") == 4.0
        assert tm.demand("a", "b") == 2.0  # original untouched
        with pytest.raises(TrafficError, match="positive"):
            tm.scaled(0.0)

    def test_scaled_name_compounds_one_factor(self):
        """Regression: repeated scaling folds into a single ``xN`` label.

        ``scaled`` used to append a new `` xK`` suffix per call, so
        logically-identical matrices (``x2 x2`` vs ``x4``) fingerprinted
        differently and missed the result cache.
        """
        tm = TrafficMatrix(name="t", demands={("a", "b"): 2.0}, num_flows=2)
        twice = tm.scaled(2.0).scaled(2.0)
        once = tm.scaled(4.0)
        assert twice.name == once.name == "t x4"
        assert twice.demands == once.demands
        assert twice.scale_base == "t"
        assert twice.scale_factor == pytest.approx(4.0)
        # Fractional round trips land back on the original label too.
        assert tm.scaled(2.0).scaled(0.5).name == "t x1"

    def test_validate_against(self):
        tm = TrafficMatrix(name="t", demands={("a", "b"): 1.0}, num_flows=1)
        tm.validate_against(["a", "b", "c"])
        with pytest.raises(TrafficError, match="not a switch"):
            tm.validate_against(["a"])

    def test_repr(self):
        tm = TrafficMatrix(name="x", demands={("a", "b"): 1.0}, num_flows=1)
        assert "x" in repr(tm)


class TestFromServerPairs:
    def test_aggregation(self):
        pairs = [
            (("u", 0), ("v", 0)),
            (("u", 1), ("v", 1)),
            (("v", 0), ("u", 0)),
        ]
        tm = TrafficMatrix.from_server_pairs(pairs)
        assert tm.demand("u", "v") == 2.0
        assert tm.demand("v", "u") == 1.0
        assert tm.num_flows == 3
        assert tm.num_local_flows == 0
        assert tm.server_pairs is not None and len(tm.server_pairs) == 3

    def test_local_flows_counted_not_demanded(self):
        pairs = [(("u", 0), ("u", 1)), (("u", 0), ("v", 0))]
        tm = TrafficMatrix.from_server_pairs(pairs)
        assert tm.num_local_flows == 1
        assert tm.num_network_flows == 1
        assert tm.total_demand == 1.0

    def test_self_pair_rejected(self):
        with pytest.raises(TrafficError, match="itself"):
            TrafficMatrix.from_server_pairs([(("u", 0), ("u", 0))])

    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 4), st.integers(0, 3)),
                st.tuples(st.integers(0, 4), st.integers(0, 3)),
            ).filter(lambda p: p[0] != p[1]),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_consistent(self, pairs):
        tm = TrafficMatrix.from_server_pairs(pairs)
        assert tm.num_flows == len(pairs)
        assert tm.num_local_flows + tm.num_network_flows == tm.num_flows
        assert tm.total_demand == pytest.approx(tm.num_network_flows)
