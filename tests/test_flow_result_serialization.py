"""ThroughputResult.to_dict/from_dict round trips (the cache's format)."""

from __future__ import annotations

import json

import pytest

from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.result import ThroughputResult


def _round_trip(result: ThroughputResult) -> ThroughputResult:
    # Through actual JSON text, as the on-disk cache does.
    return ThroughputResult.from_dict(json.loads(json.dumps(result.to_dict())))


class TestRoundTrip:
    def test_solved_result(self, small_rrg, small_rrg_traffic):
        original = max_concurrent_flow(small_rrg, small_rrg_traffic)
        restored = _round_trip(original)
        assert restored.throughput == original.throughput
        assert restored.total_demand == original.total_demand
        assert restored.solver == original.solver
        assert restored.exact == original.exact
        assert restored.arc_capacities == original.arc_capacities
        for arc, flow in original.arc_flows.items():
            assert restored.arc_flows.get(arc, 0.0) == flow

    def test_derived_quantities_survive(self, small_rrg, small_rrg_traffic):
        original = max_concurrent_flow(small_rrg, small_rrg_traffic)
        restored = _round_trip(original)
        assert restored.utilization == pytest.approx(original.utilization)
        assert restored.total_capacity == pytest.approx(original.total_capacity)
        assert restored.max_utilization() == pytest.approx(
            original.max_utilization()
        )
        restored.validate_feasibility()

    def test_commodity_flows(self, small_rrg, small_rrg_traffic):
        original = max_concurrent_flow(
            small_rrg, small_rrg_traffic, keep_commodity_flows=True
        )
        assert original.commodity_flows is not None
        restored = _round_trip(original)
        assert restored.commodity_flows is not None
        assert set(restored.commodity_flows) == set(original.commodity_flows)
        for source, flows in original.commodity_flows.items():
            assert restored.commodity_flows[source] == flows

    def test_commodity_flows_absent_stays_none(self):
        result = ThroughputResult(throughput=1.0)
        assert _round_trip(result).commodity_flows is None

    def test_tuple_node_ids(self):
        # Heterogeneous topologies key switches as ("L", 0)-style tuples.
        result = ThroughputResult(
            throughput=0.5,
            arc_flows={(("L", 0), ("S", 1)): 0.25},
            arc_capacities={(("L", 0), ("S", 1)): 1.0, (("S", 1), ("L", 0)): 1.0},
            total_demand=2.0,
            solver="edge-lp",
        )
        restored = _round_trip(result)
        assert restored.arc_flows == {(("L", 0), ("S", 1)): 0.25}
        assert restored.arc_capacities == result.arc_capacities

    def test_floats_bit_exact(self):
        value = 1.0 / 3.0
        result = ThroughputResult(
            throughput=value,
            arc_flows={(0, 1): value * 7},
            arc_capacities={(0, 1): 1.0},
            total_demand=value * 13,
        )
        restored = _round_trip(result)
        assert restored.throughput == value
        assert restored.arc_flows[(0, 1)] == value * 7
        assert restored.total_demand == value * 13
