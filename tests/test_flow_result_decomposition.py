"""Tests for ThroughputResult accounting and the §6.1 decomposition."""

from __future__ import annotations

import pytest

from repro.exceptions import FlowError
from repro.flow.decomposition import (
    cluster_link_classifier,
    decompose_throughput,
    group_utilization,
)
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.result import ThroughputResult
from repro.traffic.base import TrafficMatrix
from repro.traffic.permutation import random_permutation_traffic


def _toy_result() -> ThroughputResult:
    return ThroughputResult(
        throughput=0.5,
        arc_flows={("a", "b"): 1.0, ("b", "a"): 0.0},
        arc_capacities={("a", "b"): 2.0, ("b", "a"): 2.0},
        total_demand=2.0,
        solver="test",
    )


class TestThroughputResult:
    def test_capacity_and_volume(self):
        result = _toy_result()
        assert result.total_capacity == 4.0
        assert result.total_flow_volume == 1.0
        assert result.utilization == pytest.approx(0.25)
        assert result.delivered_rate == pytest.approx(1.0)
        assert result.mean_routed_path_length == pytest.approx(1.0)

    def test_arc_and_link_utilization(self):
        result = _toy_result()
        assert result.arc_utilization("a", "b") == pytest.approx(0.5)
        assert result.arc_utilization("b", "a") == 0.0
        assert result.link_utilization("a", "b") == pytest.approx(0.5)
        with pytest.raises(FlowError, match="unknown arc"):
            result.arc_utilization("a", "z")

    def test_max_utilization_and_table(self):
        result = _toy_result()
        assert result.max_utilization() == pytest.approx(0.5)
        assert set(result.utilizations()) == {("a", "b"), ("b", "a")}
        summary = result.summary()
        assert summary["throughput"] == 0.5

    def test_filtered_utilization(self):
        result = _toy_result()
        forward = result.filtered_utilization(lambda u, v: u == "a")
        assert forward == pytest.approx(0.5)
        with pytest.raises(FlowError, match="predicate"):
            result.filtered_utilization(lambda u, v: False)

    def test_feasibility_validation(self):
        result = _toy_result()
        result.validate_feasibility()
        result.arc_flows[("a", "b")] = 3.0
        with pytest.raises(FlowError, match="overloaded"):
            result.validate_feasibility()

    def test_zero_delivery_path_length_undefined(self):
        result = ThroughputResult(
            throughput=0.0,
            arc_flows={},
            arc_capacities={("a", "b"): 1.0},
            total_demand=1.0,
        )
        with pytest.raises(FlowError, match="undefined"):
            result.mean_routed_path_length


class TestDecomposition:
    def test_identity_holds_on_rrg(self, small_rrg, small_rrg_traffic):
        result = max_concurrent_flow(small_rrg, small_rrg_traffic)
        decomposition = decompose_throughput(
            small_rrg, small_rrg_traffic, result
        )
        assert decomposition.identity_residual < 1e-6
        assert decomposition.stretch >= 1.0 - 1e-9
        assert decomposition.utilization <= 1.0 + 1e-9
        assert decomposition.inverse_aspl == pytest.approx(
            1.0 / decomposition.aspl
        )
        assert decomposition.inverse_stretch == pytest.approx(
            1.0 / decomposition.stretch
        )

    def test_zero_throughput_rejected(self, triangle):
        result = ThroughputResult(
            throughput=0.0,
            arc_flows={},
            arc_capacities={(0, 1): 1.0},
            total_demand=1.0,
        )
        tm = TrafficMatrix(name="x", demands={(0, 1): 1.0}, num_flows=1)
        with pytest.raises(FlowError, match="zero-throughput"):
            decompose_throughput(triangle, tm, result)

    def test_stretch_one_on_single_links(self, path_two):
        tm = TrafficMatrix(
            name="x", demands={("a", "b"): 1.0, ("b", "a"): 1.0}, num_flows=2
        )
        result = max_concurrent_flow(path_two, tm)
        decomposition = decompose_throughput(path_two, tm, result)
        assert decomposition.stretch == pytest.approx(1.0)
        assert decomposition.aspl == pytest.approx(1.0)


class TestGroupUtilization:
    def test_cluster_grouping(self, small_two_cluster):
        traffic = random_permutation_traffic(small_two_cluster, seed=1)
        result = max_concurrent_flow(small_two_cluster, traffic)
        groups = group_utilization(small_two_cluster, result)
        assert set(groups) <= {"large-large", "large-small", "small-small"}
        for value in groups.values():
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_custom_classifier(self, triangle):
        tm = TrafficMatrix(name="x", demands={(0, 1): 1.0}, num_flows=1)
        result = max_concurrent_flow(triangle, tm)
        groups = group_utilization(
            triangle, result, classifier=lambda u, v: "all"
        )
        assert set(groups) == {"all"}

    def test_unlabelled_nodes_grouped(self, triangle):
        classify = cluster_link_classifier(triangle)
        assert classify(0, 1) == "unlabelled-unlabelled"

    def test_bottleneck_localization(self):
        """Cross-cluster starvation shows up as saturated cross links."""
        from repro.topology.two_cluster import two_cluster_random_topology

        topo = two_cluster_random_topology(
            num_large=4,
            large_network_ports=6,
            num_small=8,
            small_network_ports=3,
            servers_per_large=4,
            servers_per_small=2,
            cross_links=3,
            seed=3,
        )
        traffic = random_permutation_traffic(topo, seed=4)
        result = max_concurrent_flow(topo, traffic)
        groups = group_utilization(topo, result)
        # The scarce cross links must be the hottest group.
        assert groups["large-small"] == max(groups.values())
        assert groups["large-small"] > 0.9
