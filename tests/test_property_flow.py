"""Hypothesis property tests tying the flow engines and bounds together.

Each property samples random small instances and checks cross-engine
invariants that must hold for *every* input, not just the curated cases:

- path-LP and Garg-Koenemann never exceed the exact LP,
- ECMP never exceeds the exact LP,
- the exact LP never exceeds Theorem 1's bound (with observed ASPL) nor
  the non-uniform sparsest cut,
- scaling capacities scales throughput linearly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    throughput_upper_bound,
    topology_throughput_upper_bound,
)
from repro.flow.approx import garg_koenemann_throughput
from repro.flow.ecmp import ecmp_throughput
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.path_lp import max_concurrent_flow_paths
from repro.metrics.cuts import nonuniform_sparsest_cut
from repro.metrics.paths import average_shortest_path_length
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic

_instances = st.tuples(
    st.integers(min_value=6, max_value=12),   # switches
    st.integers(min_value=3, max_value=5),    # degree
    st.integers(min_value=1, max_value=3),    # servers per switch
    st.integers(min_value=0, max_value=10_000),  # seed
)


def _build(params):
    n, r, servers, seed = params
    if r >= n:
        r = n - 1
    topo = random_regular_topology(
        n, r, servers_per_switch=servers, seed=seed
    )
    traffic = random_permutation_traffic(topo, seed=seed + 1)
    return topo, traffic


class TestEngineOrdering:
    @given(_instances)
    @settings(max_examples=15, deadline=None)
    def test_restricted_engines_lower_bound_lp(self, params):
        topo, traffic = _build(params)
        exact = max_concurrent_flow(topo, traffic).throughput
        path8 = max_concurrent_flow_paths(topo, traffic, k=8).throughput
        ecmp = ecmp_throughput(topo, traffic).throughput
        tolerance = exact * 1e-6 + 1e-9
        assert path8 <= exact + tolerance
        assert ecmp <= exact + tolerance

    @given(_instances)
    @settings(max_examples=8, deadline=None)
    def test_gk_between_guarantee_and_lp(self, params):
        topo, traffic = _build(params)
        exact = max_concurrent_flow(topo, traffic).throughput
        gk = garg_koenemann_throughput(topo, traffic, epsilon=0.1)
        gk.validate_feasibility()
        assert gk.throughput <= exact * (1 + 1e-6)
        assert gk.throughput >= 0.7 * exact  # (1-eps)^3-ish with slack


class TestBoundOrdering:
    @given(_instances)
    @settings(max_examples=15, deadline=None)
    def test_lp_below_theorem1_with_observed_aspl(self, params):
        topo, traffic = _build(params)
        n, r = topo.num_switches, max(topo.degree(v) for v in topo.switches)
        exact = max_concurrent_flow(topo, traffic).throughput
        # Charge the topology's *actual* directed capacity: when n * r is
        # odd the RRG leaves one stub unused, so N * r misstates capacity.
        bound = topology_throughput_upper_bound(
            topo,
            traffic.num_network_flows,
            aspl=average_shortest_path_length(topo),
        )
        # The observed-ASPL variant charges every flow the *average*
        # distance; individual permutations can be luckier, so compare
        # against the d*-based universal bound too.
        universal = throughput_upper_bound(n, r, traffic.num_network_flows)
        assert exact <= max(bound, universal) * (1 + 1e-6) + 1e-9

    @given(_instances)
    @settings(max_examples=10, deadline=None)
    def test_lp_below_sparsest_cut(self, params):
        topo, traffic = _build(params)
        if topo.num_switches > 10:
            return  # keep exact cut enumeration cheap
        exact = max_concurrent_flow(topo, traffic).throughput
        cut, _ = nonuniform_sparsest_cut(topo, traffic)
        assert exact <= cut * (1 + 1e-6) + 1e-9


class TestScaling:
    @given(
        _instances,
        st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
    )
    @settings(max_examples=10, deadline=None)
    def test_capacity_scaling_linear(self, params, factor):
        n, r, servers, seed = params
        if r >= n:
            r = n - 1
        base = random_regular_topology(
            n, r, servers_per_switch=servers, seed=seed
        )
        scaled = random_regular_topology(
            n, r, servers_per_switch=servers, capacity=factor, seed=seed
        )
        traffic = random_permutation_traffic(base, seed=seed + 1)
        t_base = max_concurrent_flow(base, traffic).throughput
        t_scaled = max_concurrent_flow(scaled, traffic).throughput
        assert t_scaled == pytest.approx(factor * t_base, rel=1e-6)
