"""Tests for the homogeneous bounds (Theorem 1 and Cerf et al.)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    aspl_lower_bound,
    aspl_step_boundaries,
    rrg_diameter_upper_bound,
    throughput_upper_bound,
)
from repro.exceptions import BoundError
from repro.metrics.paths import average_shortest_path_length
from repro.topology.complete import complete_topology
from repro.topology.hypercube import hypercube_topology


class TestAsplLowerBound:
    def test_complete_graph_degree(self):
        # Degree n-1 places everyone at distance 1.
        assert aspl_lower_bound(10, 9) == pytest.approx(1.0)

    def test_two_levels_exact(self):
        # N=8, r=3: 3 at distance 1, remaining 4 at distance 2.
        expected = (3 * 1 + 4 * 2) / 7
        assert aspl_lower_bound(8, 3) == pytest.approx(expected)

    def test_paper_value_degree10_n40(self):
        # 10 at distance 1, 29 at distance 2 -> (10 + 58)/39.
        assert aspl_lower_bound(40, 10) == pytest.approx(68 / 39)

    def test_matches_real_graphs(self):
        # The bound must lower-bound actual regular graphs.
        cube = hypercube_topology(4)
        assert aspl_lower_bound(16, 4) <= average_shortest_path_length(cube)
        clique = complete_topology(7)
        assert aspl_lower_bound(7, 6) <= average_shortest_path_length(clique)

    def test_monotone_decreasing_in_degree(self):
        values = [aspl_lower_bound(100, r) for r in range(2, 30)]
        assert values == sorted(values, reverse=True)

    def test_monotone_increasing_in_size(self):
        values = [aspl_lower_bound(n, 4) for n in range(6, 200, 7)]
        assert values == sorted(values)

    def test_degree_one_special_cases(self):
        assert aspl_lower_bound(2, 1) == pytest.approx(1.0)
        with pytest.raises(BoundError, match="1-regular"):
            aspl_lower_bound(4, 1)

    def test_tiny_sizes_rejected(self):
        with pytest.raises(BoundError, match="at least 2"):
            aspl_lower_bound(1, 3)

    @given(
        st.integers(min_value=4, max_value=2000),
        st.integers(min_value=2, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_at_least_one_property(self, n, r):
        assert aspl_lower_bound(n, r) >= 1.0


class TestStepBoundaries:
    def test_degree_four_paper_series(self):
        assert aspl_step_boundaries(4, 6) == [5, 17, 53, 161, 485, 1457]

    def test_degree_three(self):
        assert aspl_step_boundaries(3, 4) == [4, 10, 22, 46]

    def test_degree_below_two_rejected(self):
        with pytest.raises(BoundError, match="degree >= 2"):
            aspl_step_boundaries(1)

    def test_boundaries_are_bend_points(self):
        # Just below a boundary the marginal node joins the current level;
        # just above, a more distant one: the bound's slope increases.
        for boundary in aspl_step_boundaries(4, 4)[1:]:
            below = aspl_lower_bound(boundary, 4)
            above = aspl_lower_bound(boundary + 1, 4)
            assert above > below


class TestThroughputUpperBound:
    def test_formula_with_explicit_aspl(self):
        # N*r / (<D> * f).
        assert throughput_upper_bound(10, 4, 20, aspl=2.0) == pytest.approx(1.0)

    def test_default_uses_cerf_bound(self):
        value = throughput_upper_bound(40, 10, 200)
        expected = 40 * 10 / (aspl_lower_bound(40, 10) * 200)
        assert value == pytest.approx(expected)

    def test_capacity_scaling(self):
        one = throughput_upper_bound(10, 4, 20, aspl=2.0)
        ten = throughput_upper_bound(10, 4, 20, aspl=2.0, capacity_per_link=10.0)
        assert ten == pytest.approx(10.0 * one)

    def test_more_flows_lower_bound(self):
        few = throughput_upper_bound(20, 5, 10)
        many = throughput_upper_bound(20, 5, 100)
        assert many == pytest.approx(few / 10.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            throughput_upper_bound(0, 4, 10)
        with pytest.raises(ValueError):
            throughput_upper_bound(10, 4, 10, aspl=-1.0)


class TestDiameterBound:
    def test_upper_bounds_aspl_ratio_shrinks(self):
        # diameter bound / aspl lower bound tends toward 1-ish growth wise;
        # here just check it upper-bounds the Cerf bound.
        for n in (50, 200, 1000):
            assert rrg_diameter_upper_bound(n, 4) > aspl_lower_bound(n, 4)

    def test_small_degree_rejected(self):
        with pytest.raises(BoundError, match="degree >= 3"):
            rrg_diameter_upper_bound(100, 2)

    def test_small_n_rejected(self):
        with pytest.raises(BoundError, match="num_nodes"):
            rrg_diameter_upper_bound(4, 3)
