"""Tests for the search-vs-random experiment module (CI scale)."""

from __future__ import annotations

import pytest

from repro.experiments.search_study import (
    run_incremental_speedup,
    run_search_vs_random,
)


class TestSearchVsRandom:
    def test_tiny_run_structure(self):
        result = run_search_vs_random(
            points=((12, 3),), steps=120, samples=2, seed=0
        )
        assert result.experiment_id == "search1"
        optimized = result.get_series("Optimized (annealed ASPL)").ys()[0]
        random_mean = result.get_series("Random RRG (mean)").ys()[0]
        bound = result.get_series("Theorem 1 bound (d*)").ys()[0]
        # Ordering invariants: the bound caps both measurements, and the
        # optimizer never returns something worse than its own start.
        assert optimized <= bound * (1 + 1e-6)
        assert random_mean <= bound * (1 + 1e-6)
        assert result.metadata["max_gap_pct"] == pytest.approx(
            100.0 * (optimized - random_mean) / optimized
        )
        assert result.metadata["aspl_optimized_N12_r3"] <= (
            result.metadata["aspl_random_N12_r3"] + 1e-9
        )
        assert "N=12,r=3" in result.metadata["gaps_pct"]

    def test_table_renders(self):
        result = run_search_vs_random(
            points=((10, 3),), steps=60, samples=2, seed=1
        )
        table = result.to_table()
        assert "Optimized (annealed ASPL)" in table
        assert "Gap (%)" in table


class TestIncrementalSpeedup:
    def test_small_graph_agrees_and_reports(self):
        result = run_incremental_speedup(
            num_switches=60, degree=4, num_swaps=5, seed=0
        )
        assert result.experiment_id == "search2"
        assert result.metadata["incremental_ms"] > 0
        assert result.metadata["full_ms"] > 0
        assert result.metadata["speedup"] == pytest.approx(
            result.metadata["full_ms"] / result.metadata["incremental_ms"]
        )
