"""Golden-file schema pins: PR2/PR3-era payloads and the sweep CSV.

The estimator fields added to :class:`ThroughputResult` must never break
cache entries (or sweep artifacts) written by earlier code. These tests
load payloads frozen in ``tests/golden/`` — hand-written in exactly the
schema PR 2 (intact results) and PR 3 (degraded-fabric fields) emitted —
and pin three guarantees:

- old payloads still parse, with the new fields defaulting off;
- re-serializing an old payload reproduces it byte-for-byte (canonical
  JSON equality), i.e. exact solves never emit the estimator fields;
- a PR3-era on-disk cache entry is still a cache *hit*.

The CSV golden pins the current artifact schema so future column changes
are a deliberate, reviewed diff instead of an accident.
"""

from __future__ import annotations

import csv
import io
import json
import shutil
from pathlib import Path

from repro.flow.result import ThroughputResult
from repro.flow.solvers import SolverConfig
from repro.pipeline.cache import ResultCache
from repro.pipeline.engine import CellResult, run_grid
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.util.hashing import canonical_json

GOLDEN = Path(__file__).parent / "golden"


def _load(name: str) -> dict:
    with open(GOLDEN / name, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestIntactPR2Payload:
    def test_parses_with_new_fields_defaulted(self):
        result = ThroughputResult.from_dict(_load(
            "throughput_result_intact_pr2.json"
        ))
        assert result.throughput == 0.75
        assert result.total_demand == 4.0
        assert result.solver == "edge-lp"
        assert result.exact
        assert result.is_estimate is False
        assert result.error_band is None
        assert result.dropped_pairs == ()
        assert result.truncated_pairs == 0
        assert result.total_capacity == 9.0

    def test_round_trips_byte_identically(self):
        payload = _load("throughput_result_intact_pr2.json")
        result = ThroughputResult.from_dict(payload)
        assert canonical_json(result.to_dict()) == canonical_json(payload)

    def test_zero_flow_arcs_survive(self):
        # from_dict drops zero flows from the sparse arc_flows dict but
        # to_dict must still emit every arc with its 0.0 flow.
        payload = _load("throughput_result_intact_pr2.json")
        result = ThroughputResult.from_dict(payload)
        emitted = {(e["u"], e["v"]): e["flow"] for e in result.to_dict()["arcs"]}
        assert emitted[(2, 1)] == 0.0


class TestDegradedPR3Payload:
    def test_parses_with_degraded_bookkeeping(self):
        result = ThroughputResult.from_dict(_load(
            "throughput_result_degraded_pr3.json"
        ))
        assert result.dropped_pairs == (("a", "z"), ("z", "b"))
        assert result.dropped_demand == 2.5
        assert result.truncated_pairs == 3
        assert result.served_fraction == 3.0 / 5.5
        assert result.is_estimate is False
        assert result.error_band is None

    def test_round_trips_byte_identically(self):
        payload = _load("throughput_result_degraded_pr3.json")
        result = ThroughputResult.from_dict(payload)
        assert canonical_json(result.to_dict()) == canonical_json(payload)


class TestNewFieldsStayOptIn:
    def test_estimate_fields_absent_unless_set(self):
        result = ThroughputResult(throughput=1.0, total_demand=1.0)
        payload = result.to_dict()
        assert "is_estimate" not in payload
        assert "error_band" not in payload

    def test_estimate_fields_emitted_when_set(self):
        result = ThroughputResult(
            throughput=1.0,
            total_demand=1.0,
            is_estimate=True,
            error_band=(0.9, 1.2),
        )
        payload = json.loads(json.dumps(result.to_dict()))
        back = ThroughputResult.from_dict(payload)
        assert back.is_estimate
        assert back.error_band == (0.9, 1.2)


class TestPR3CacheEntryStillHits:
    def test_old_entry_is_a_hit(self, tmp_path):
        entry = _load("cache_entry_pr3.json")
        key = entry["key"]
        cache = ResultCache(tmp_path)
        target = tmp_path / key[:2] / f"{key}.json"
        target.parent.mkdir(parents=True)
        shutil.copy(GOLDEN / "cache_entry_pr3.json", target)
        result = cache.get(key)
        assert result is not None
        assert cache.hits == 1
        assert result.throughput == 0.625
        assert result.is_estimate is False


#: The grid CSV column schema as of this PR (estimator columns included).
EXPECTED_CSV_HEADER = (
    "topology,size,traffic,solver,failure,replicate,seed,throughput,"
    "engine,exact,is_estimate,error_lo,error_hi,total_demand,"
    "dropped_pairs,dropped_demand,utilization,num_switches,num_servers,"
    "cache_hit,elapsed_s,key"
)


class TestGridCSVSchema:
    def test_fields_constant_matches_golden_header(self):
        assert ",".join(CellResult.FIELDS) == EXPECTED_CSV_HEADER

    def test_written_csv_uses_golden_header(self, tmp_path):
        grid = ScenarioGrid(
            name="golden",
            topologies=(TopologySpec.make("complete", num_switches=3,
                                          servers_per_switch=1),),
            traffics=(TrafficSpec.make("all-to-all"),),
            solvers=(SolverConfig("ecmp"), SolverConfig("estimate_bound")),
        )
        sweep = run_grid(grid)
        path = tmp_path / "cells.csv"
        sweep.write_csv(path)
        with open(path, "r", encoding="utf-8", newline="") as handle:
            reader = csv.DictReader(handle)
            assert ",".join(reader.fieldnames) == EXPECTED_CSV_HEADER
            rows = list(reader)
        by_solver = {row["solver"]: row for row in rows}
        assert by_solver["ecmp"]["is_estimate"] == "False"
        assert by_solver["ecmp"]["error_lo"] == ""
        assert by_solver["estimate_bound"]["is_estimate"] == "True"

    def test_estimator_band_lands_in_csv(self, tmp_path):
        grid = ScenarioGrid(
            name="banded",
            topologies=(TopologySpec.make("complete", num_switches=3,
                                          servers_per_switch=1),),
            traffics=(TrafficSpec.make("all-to-all"),),
            solvers=(
                SolverConfig.make("estimate_bound", error_band=(0.9, 1.3)),
            ),
        )
        sweep = run_grid(grid)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(CellResult.FIELDS))
        writer.writeheader()
        for row in sweep.rows():
            writer.writerow(row)
        reader = csv.DictReader(io.StringIO(buffer.getvalue()))
        row = next(iter(reader))
        assert float(row["error_lo"]) == 0.9
        assert float(row["error_hi"]) == 1.3
