"""Growth strategies: registry, per-strategy semantics, the grown kind."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.growth.factory import grown_topology
from repro.growth.plan import GrowthSchedule, GrowthStage
from repro.growth.strategies import (
    FatTreeUpgrade,
    GrowthStrategy,
    available_strategies,
    fat_tree_ladder_arity,
    grow_stages,
    make_strategy,
    register_strategy,
)
from repro.pipeline.fingerprint import topology_fingerprint
from repro.topology.registry import factory_accepts_seed, make_topology


@pytest.fixture
def schedule() -> GrowthSchedule:
    return GrowthSchedule.from_targets(
        (12, 20, 32), name="t", network_degree=4, servers_per_switch=2
    )


class TestRegistry:
    def test_builtins_available(self):
        assert available_strategies() == [
            "fattree_upgrade", "rebuild", "swap", "swap_anneal",
        ]

    def test_unknown_raises(self):
        with pytest.raises(TopologyError, match="unknown growth strategy"):
            make_strategy("forklift")

    def test_options_forwarded(self):
        strategy = make_strategy("swap_anneal", steps=7, objective="spectral")
        assert strategy.steps == 7
        assert "steps=7" in strategy.label()

    def test_strategy_instance_passes_through(self):
        strategy = make_strategy("swap")
        assert make_strategy(strategy) is strategy

    def test_instance_plus_options_raises(self):
        # Options alongside a built instance would be dropped silently.
        strategy = make_strategy("swap_anneal", steps=10)
        with pytest.raises(TopologyError, match="already-constructed"):
            make_strategy(strategy, steps=500)

    def test_register_rejects_duplicates(self):
        with pytest.raises(TopologyError, match="already registered"):
            register_strategy("swap", GrowthStrategy)

    def test_register_custom(self):
        class Custom(GrowthStrategy):
            name = "custom-test-strategy"

            def grow(self, topo, stage, schedule, seed=None):
                return topo.copy()

        register_strategy(Custom.name, Custom)
        try:
            assert isinstance(make_strategy(Custom.name), Custom)
        finally:
            from repro.growth import strategies

            strategies._STRATEGIES.pop(Custom.name)


class TestSwapGrowth:
    def test_chain_reaches_targets(self, schedule):
        sizes = [
            topo.num_switches
            for _, _, topo in grow_stages(schedule, "swap", seed=0)
        ]
        assert sizes == [12, 20, 32]

    def test_existing_switches_keep_degree(self, schedule):
        chain = list(grow_stages(schedule, "swap", seed=1))
        _, _, first = chain[0]
        _, _, last = chain[-1]
        for node in last.switches:
            assert last.degree(node) == 4
        assert last.num_servers == 64
        assert last.is_connected()
        assert set(first.switches) <= set(last.switches)

    def test_deterministic_per_seed(self, schedule):
        def final(seed):
            *_, (_, _, topo) = grow_stages(schedule, "swap", seed=seed)
            return topo

        assert topology_fingerprint(final(3)) == topology_fingerprint(final(3))
        assert topology_fingerprint(final(3)) != topology_fingerprint(final(4))

    def test_heterogeneous_arrivals(self):
        schedule = GrowthSchedule(
            name="hetero",
            network_degree=4,
            servers_per_switch=2,
            stages=(
                GrowthStage(12),
                GrowthStage(16, network_degree=6, servers_per_switch=5),
            ),
        )
        *_, (_, _, topo) = grow_stages(schedule, "swap", seed=5)
        originals = [v for v in topo.switches if isinstance(v, int) and v < 12]
        arrivals = [v for v in topo.switches if isinstance(v, int) and v >= 12]
        assert all(topo.degree(v) == 4 for v in originals)
        assert all(topo.degree(v) == 6 for v in arrivals)
        assert all(topo.servers_at(v) == 5 for v in arrivals)


class TestSwapAnneal:
    def test_preserves_degrees_and_size(self, schedule):
        *_, (_, _, topo) = grow_stages(
            schedule, "swap_anneal", seed=2, steps=25
        )
        assert topo.num_switches == 32
        assert all(topo.degree(v) == 4 for v in topo.switches)
        assert topo.is_connected()

    def test_shares_initial_build_with_swap(self, schedule):
        (_, _, plain), *_ = grow_stages(schedule, "swap", seed=9)
        (_, _, annealed), *_ = grow_stages(
            schedule, "swap_anneal", seed=9, steps=25
        )
        assert topology_fingerprint(plain) == topology_fingerprint(annealed)


class TestRebuild:
    def test_resamples_whole_fabric(self, schedule):
        chain = list(grow_stages(schedule, "rebuild", seed=3))
        _, _, last = chain[-1]
        assert last.num_switches == 32
        assert all(last.degree(v) == 4 for v in last.switches)


class TestFatTreeLadder:
    def test_ladder_arities(self):
        assert [
            fat_tree_ladder_arity(b) for b in (5, 19, 20, 45, 80, 2000, 2048)
        ] == [2, 2, 4, 6, 8, 40, 40]

    def test_budget_below_smallest_rung_raises(self):
        with pytest.raises(TopologyError, match="no complete fat-tree"):
            fat_tree_ladder_arity(4)

    def test_step_function(self, schedule):
        chain = list(grow_stages(schedule, "fattree_upgrade"))
        sizes = [topo.num_switches for _, _, topo in chain]
        assert sizes == [5, 20, 20]  # budget 32 still deploys the k=4 rung
        _, stage, topo = chain[-1]
        assert stage.target_switches - topo.num_switches == 12  # idle budget

    def test_max_arity_saturates(self):
        strategy = FatTreeUpgrade(max_arity=4)
        schedule = GrowthSchedule.from_targets(
            (20, 45, 80), network_degree=4
        )
        sizes = [
            topo.num_switches
            for _, _, topo in grow_stages(schedule, strategy)
        ]
        assert sizes == [20, 20, 20]

    def test_odd_max_arity_rounds_down(self):
        assert FatTreeUpgrade(max_arity=7).max_arity == 6
        with pytest.raises(TopologyError):
            FatTreeUpgrade(max_arity=1)


class TestGrownKind:
    def test_registry_builds_and_accepts_seed(self):
        topo = make_topology(
            "grown", num_switches=40, network_degree=4,
            servers_per_switch=1, seed=7,
        )
        assert topo.num_switches == 40
        assert topo.num_servers == 40
        assert factory_accepts_seed("grown")

    def test_fingerprint_stable(self):
        fps = {
            topology_fingerprint(
                grown_topology(40, 4, servers_per_switch=1, seed=11)
            )
            for _ in range(2)
        }
        assert len(fps) == 1

    def test_start_defaults_legal(self):
        # num_switches // 8 would undercut the RRG requirement r < N.
        topo = grown_topology(24, 10, seed=0)
        assert topo.num_switches == 24
        assert all(topo.degree(v) == 10 for v in topo.switches)

    def test_bad_start_raises(self):
        with pytest.raises(TopologyError, match="exceeds num_switches"):
            grown_topology(16, 4, start_switches=32, seed=0)
        with pytest.raises(TopologyError, match="must exceed network_degree"):
            grown_topology(16, 4, start_switches=3, seed=0)

    def test_strategy_option_flows_through(self):
        topo = grown_topology(
            24, 4, strategy="swap_anneal", steps=10, seed=1
        )
        assert topo.num_switches == 24

    def test_sweepable_in_scenario_grid(self):
        from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec

        grid = ScenarioGrid(
            name="grown-grid",
            topologies=(
                TopologySpec.make(
                    "grown", network_degree=4, servers_per_switch=1,
                    num_stages=2,
                ),
            ),
            traffics=(TrafficSpec.make("permutation"),),
            sizes=(16, 24),
        )
        cells = grid.cells()
        assert len(cells) == 2
        topo, traffic = cells[0].build()
        assert topo.num_switches == 16
        assert traffic.num_flows > 0
