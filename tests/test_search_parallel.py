"""Tests for parallel search determinism and the engine entry points."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.metrics.paths import average_shortest_path_length
from repro.search.engine import optimize_topology, optimized_topology
from repro.search.parallel import ParallelSearchResult, parallel_anneal
from repro.topology.random_regular import random_regular_topology
from repro.topology.registry import make_topology


def _edges(topo):
    return {frozenset((link.u, link.v)) for link in topo.links}


@pytest.fixture(scope="module")
def base():
    return random_regular_topology(16, 4, servers_per_switch=1, seed=0)


class TestParallelAnneal:
    def test_pool_matches_serial_for_fixed_seed(self, base):
        serial = parallel_anneal(
            base, "aspl", num_runs=3, steps=150, seed=42, max_workers=0
        )
        pooled = parallel_anneal(
            base, "aspl", num_runs=3, steps=150, seed=42, max_workers=2
        )
        assert serial.best_scores() == pooled.best_scores()
        assert _edges(serial.best.topology) == _edges(pooled.best.topology)

    def test_runs_are_independent_walks(self, base):
        result = parallel_anneal(
            base, "aspl", num_runs=3, steps=150, seed=1, max_workers=0
        )
        assert len(result.runs) == 3
        # Different seed streams should explore differently (scores rarely
        # all identical; accept ties on score but demand some divergence).
        traces = [run.accepted for run in result.runs]
        assert len(set(traces)) > 1 or len(set(result.best_scores())) > 1

    def test_best_is_max_score(self, base):
        result = parallel_anneal(
            base, "aspl", num_runs=3, steps=100, seed=2, max_workers=0
        )
        assert result.best.best_score == max(result.best_scores())
        assert result.topology is result.best.topology

    def test_explicit_temperatures(self, base):
        result = parallel_anneal(
            base,
            "aspl",
            num_runs=2,
            steps=80,
            seed=3,
            temperatures=[0.5, 0.01],
            max_workers=0,
        )
        assert len(result.runs) == 2

    def test_temperature_length_validated(self, base):
        with pytest.raises(ExperimentError, match="temperatures"):
            parallel_anneal(
                base, "aspl", num_runs=3, steps=10, temperatures=[1.0]
            )

    def test_empty_result_has_no_best(self):
        with pytest.raises(ExperimentError, match="no runs"):
            ParallelSearchResult(runs=[]).best


class TestEngine:
    def test_single_run_equals_anneal(self, base):
        from repro.search.annealing import anneal

        direct = anneal(base, "aspl", steps=120, seed=5)
        via_engine = optimize_topology(base, "aspl", steps=120, seed=5)
        assert via_engine.best_score == direct.best_score

    def test_multi_run_picks_winner(self, base):
        result = optimize_topology(
            base, "aspl", steps=100, seed=6, num_runs=2, max_workers=0
        )
        solo = optimize_topology(base, "aspl", steps=100, seed=6)
        assert result.best_score >= min(result.best_score, solo.best_score)
        assert result.topology.degree_histogram() == base.degree_histogram()

    def test_optimized_topology_is_reproducible(self):
        a = optimized_topology(14, 3, servers_per_switch=2, seed=9, steps=120)
        b = optimized_topology(14, 3, servers_per_switch=2, seed=9, steps=120)
        assert _edges(a) == _edges(b)
        assert a.server_map() == b.server_map()
        assert a.name.startswith("optimized-rrg")

    def test_optimized_beats_its_random_base_on_aspl(self):
        base = random_regular_topology(20, 4, seed=11)
        optimized = optimized_topology(20, 4, seed=11, steps=400)
        # Same family, so the bound is shared; the optimized graph should
        # be at least as short-pathed as a typical random sample.
        assert average_shortest_path_length(
            optimized
        ) <= average_shortest_path_length(base) + 1e-9

    def test_registry_kind(self):
        topo = make_topology(
            "optimized", num_switches=12, network_degree=3, steps=80, seed=1
        )
        assert topo.num_switches == 12
        assert topo.is_connected()
        assert "optimized" in __import__(
            "repro.topology.registry", fromlist=["available_topologies"]
        ).available_topologies()
