"""Degraded-fabric demand policy across every solver backend.

The unified ``unreachable`` keyword is the contract that lets the
pipeline solve partitioned fabrics: ``"error"`` raises everywhere
(including ``edge_lp``, which historically returned a silent 0),
``"drop"`` solves over the served demand set and reports the drops.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import FlowError
from repro.flow.reachability import split_unreachable_demands
from repro.flow.result import ThroughputResult
from repro.flow.solvers import available_solvers, solve_throughput
from repro.resilience import FailureSpec, apply_failures
from repro.topology.base import Topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.base import TrafficMatrix
from repro.traffic.permutation import random_permutation_traffic

BACKENDS = ("edge_lp", "path_lp", "approx", "ecmp")


@pytest.fixture
def split_topo():
    """Two disjoint components: {a, b} and {c, d}, one server each."""
    topo = Topology("split")
    for v in "abcd":
        topo.add_switch(v, servers=1)
    topo.add_link("a", "b")
    topo.add_link("c", "d")
    return topo


@pytest.fixture
def mixed_traffic():
    """Two routable demands plus one cross-partition demand."""
    return TrafficMatrix(
        "mixed",
        demands={("a", "b"): 1.0, ("a", "c"): 1.0, ("c", "d"): 2.0},
        num_flows=4,
    )


def test_backends_cover_registry():
    # Estimator backends get the same unreachable-policy coverage in
    # tests/test_estimate_unreachable.py (including exact-parity checks),
    # and the fidelity simulation backends in tests/test_fidelity_solvers.py
    # and tests/test_fidelity_adapter.py; together the matrices must span
    # the whole registry.
    from repro.estimate import ESTIMATOR_BACKENDS
    from repro.flow.solvers import get_solver

    simulation = {
        name for name in available_solvers() if get_solver(name).simulation
    }
    covered = set(BACKENDS) | set(ESTIMATOR_BACKENDS) | simulation
    assert covered == set(available_solvers())


class TestErrorPolicy:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partition_raises(self, split_topo, mixed_traffic, backend):
        with pytest.raises(FlowError, match="no path"):
            solve_throughput(split_topo, mixed_traffic, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_missing_endpoint_raises(self, split_topo, backend):
        tm = TrafficMatrix("bad", demands={("a", "zz"): 1.0}, num_flows=1)
        with pytest.raises(FlowError, match="not a switch"):
            solve_throughput(split_topo, tm, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_policy_rejected(self, split_topo, mixed_traffic, backend):
        with pytest.raises(FlowError, match="unknown unreachable policy"):
            solve_throughput(
                split_topo, mixed_traffic, backend, unreachable="ignore"
            )


class TestDropPolicy:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_serves_routable_subset(self, split_topo, mixed_traffic, backend):
        result = solve_throughput(
            split_topo, mixed_traffic, backend, unreachable="drop"
        )
        # Served demands: a->b (1 unit) and c->d (2 units), each component
        # one unit link: t = min(1/1, 1/2) = 0.5 for every backend here.
        assert result.throughput == pytest.approx(0.5, rel=1e-6)
        assert result.dropped_pairs == (("a", "c"),)
        assert result.dropped_demand == pytest.approx(1.0)
        assert result.num_dropped_pairs == 1
        assert result.total_demand == pytest.approx(3.0)
        assert result.offered_demand == pytest.approx(4.0)
        assert result.served_fraction == pytest.approx(0.75)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_nothing_served(self, split_topo, backend):
        tm = TrafficMatrix(
            "cross", demands={("a", "c"): 1.0, ("b", "d"): 1.0}, num_flows=2
        )
        result = solve_throughput(split_topo, tm, backend, unreachable="drop")
        assert result.throughput == 0.0
        assert result.total_demand == 0.0
        assert len(result.dropped_pairs) == 2
        assert result.dropped_demand == pytest.approx(2.0)
        assert result.served_fraction == 0.0
        # Capacities still describe the (degraded) fabric.
        assert result.total_capacity == pytest.approx(4.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_intact_fabric_unaffected(
        self, small_rrg, small_rrg_traffic, backend
    ):
        plain = solve_throughput(small_rrg, small_rrg_traffic, backend)
        dropped = solve_throughput(
            small_rrg, small_rrg_traffic, backend, unreachable="drop"
        )
        assert dropped.throughput == plain.throughput
        assert dropped.dropped_pairs == ()
        assert dropped.dropped_demand == 0.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_failed_switch_endpoints_dropped(self, backend):
        topo = random_regular_topology(12, 4, servers_per_switch=1, seed=3)
        traffic = random_permutation_traffic(topo, seed=5)
        degraded = apply_failures(
            topo, FailureSpec.make("random_switches", rate=0.25), seed=8
        )
        result = solve_throughput(
            degraded, traffic, backend, unreachable="drop"
        )
        failed = set(degraded.failed_switches)
        assert result.dropped_pairs  # permutations touch every switch
        for u, v in result.dropped_pairs:
            assert u in failed or v in failed or not degraded.is_connected()
        served = result.total_demand
        assert served + result.dropped_demand == pytest.approx(
            traffic.total_demand
        )

    def test_dropped_pairs_survive_serialization(self, split_topo, mixed_traffic):
        result = solve_throughput(
            split_topo, mixed_traffic, "edge_lp", unreachable="drop"
        )
        restored = ThroughputResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored.dropped_pairs == result.dropped_pairs
        assert restored.dropped_demand == result.dropped_demand
        assert restored.throughput == result.throughput

    def test_intact_payload_unchanged(self, small_rrg, small_rrg_traffic):
        """Intact solves emit no new keys — PR 2 cache entries round trip."""
        result = solve_throughput(small_rrg, small_rrg_traffic, "edge_lp")
        payload = result.to_dict()
        assert "dropped_pairs" not in payload
        assert "dropped_demand" not in payload
        assert "truncated_pairs" not in payload


class TestSplitHelper:
    def test_no_drop_returns_same_matrix(self, small_rrg, small_rrg_traffic):
        served, dropped = split_unreachable_demands(
            small_rrg, small_rrg_traffic
        )
        assert served is small_rrg_traffic
        assert dropped == ()

    def test_partition_split(self, split_topo, mixed_traffic):
        served, dropped = split_unreachable_demands(split_topo, mixed_traffic)
        assert dropped == (("a", "c"),)
        assert set(served.demands) == {("a", "b"), ("c", "d")}
        # Offered-workload bookkeeping is preserved.
        assert served.num_flows == mixed_traffic.num_flows
