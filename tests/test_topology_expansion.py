"""Tests for incremental expansion by link swaps."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.expansion import add_switch_by_link_swaps, expand_topology
from repro.topology.random_regular import random_regular_topology


class TestAddSwitch:
    def test_degree_and_link_accounting(self):
        topo = random_regular_topology(12, 4, servers_per_switch=2, seed=1)
        links_before = topo.num_links
        report = add_switch_by_link_swaps(
            topo, "new", network_ports=4, servers=2, seed=2
        )
        assert topo.degree("new") == 4
        assert topo.servers_at("new") == 2
        assert report.links_removed == 2
        assert report.links_added == 4
        assert topo.num_links == links_before + 2
        # Everyone else keeps their degree.
        for v in topo.switches:
            if v != "new":
                assert topo.degree(v) == 4

    def test_preserves_connectivity(self):
        for seed in range(4):
            topo = random_regular_topology(12, 4, seed=seed)
            add_switch_by_link_swaps(topo, "new", network_ports=4, seed=seed)
            assert topo.is_connected()

    def test_odd_ports_leave_leftover(self):
        topo = random_regular_topology(12, 4, seed=3)
        report = add_switch_by_link_swaps(topo, "new", network_ports=5, seed=4)
        assert report.leftover_ports == 1
        assert topo.degree("new") == 4

    def test_existing_switch_rejected(self):
        topo = random_regular_topology(8, 3, seed=5)
        with pytest.raises(TopologyError, match="already exists"):
            add_switch_by_link_swaps(topo, 0, network_ports=2)

    def test_throughput_stays_reasonable_after_expansion(self):
        """Expansion must not wreck the network (Jellyfish's selling point)."""
        from repro.flow.edge_lp import max_concurrent_flow
        from repro.traffic.permutation import random_permutation_traffic

        topo = random_regular_topology(12, 4, servers_per_switch=2, seed=6)
        before = max_concurrent_flow(
            topo, random_permutation_traffic(topo, seed=7)
        ).throughput
        add_switch_by_link_swaps(topo, "new", network_ports=4, servers=2, seed=8)
        after = max_concurrent_flow(
            topo, random_permutation_traffic(topo, seed=7)
        ).throughput
        assert after >= 0.6 * before

    def test_capacity_preserved_on_split(self):
        topo = random_regular_topology(10, 3, capacity=2.5, seed=9)
        add_switch_by_link_swaps(topo, "new", network_ports=2, seed=10)
        for neighbor in topo.neighbors("new"):
            assert topo.capacity("new", neighbor) == pytest.approx(2.5)


class TestExpandTopology:
    def test_multiple_switches(self):
        topo = random_regular_topology(12, 4, seed=11)
        reports = expand_topology(
            topo,
            {"a": 4, "b": 4},
            servers={"a": 2},
            seed=12,
        )
        assert len(reports) == 2
        assert topo.degree("a") == 4
        assert topo.degree("b") == 4
        assert topo.servers_at("a") == 2
        assert topo.servers_at("b") == 0
        assert topo.is_connected()
