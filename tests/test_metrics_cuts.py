"""Tests for cut metrics: bisection bandwidth and sparsest cuts."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.metrics.cuts import (
    bisection_bandwidth,
    cut_capacity,
    nonuniform_sparsest_cut,
    uniform_sparsest_cut,
)
from repro.topology.base import Topology
from repro.topology.complete import complete_topology
from repro.topology.random_regular import random_regular_topology
from repro.traffic.base import TrafficMatrix


def _barbell() -> Topology:
    """Two triangles joined by a single unit bridge."""
    topo = Topology("barbell")
    for v in range(6):
        topo.add_switch(v, servers=1)
    for u in range(3):
        for v in range(u + 1, 3):
            topo.add_link(u, v)
            topo.add_link(u + 3, v + 3)
    topo.add_link(2, 3)
    return topo


class TestCutCapacity:
    def test_single_node_cut(self, triangle):
        assert cut_capacity(triangle, {0}) == pytest.approx(4.0)

    def test_unknown_node_rejected(self, triangle):
        with pytest.raises(TopologyError, match="unknown"):
            cut_capacity(triangle, {"zz"})


class TestBisectionBandwidth:
    def test_complete_graph_exact(self):
        topo = complete_topology(6)
        # Balanced bisection of K6 cuts 3*3 = 9 links, both directions.
        assert bisection_bandwidth(topo) == pytest.approx(18.0)

    def test_barbell_exact(self):
        # The bridge is the only balanced min cut: capacity 2 (both dirs).
        assert bisection_bandwidth(_barbell()) == pytest.approx(2.0)

    def test_heuristic_upper_bounds_exact(self):
        topo = random_regular_topology(14, 4, seed=3)
        exact = bisection_bandwidth(topo, exact_limit=16)
        heuristic = bisection_bandwidth(topo, exact_limit=4, attempts=100, seed=0)
        assert heuristic >= exact - 1e-9

    def test_needs_two_switches(self):
        topo = Topology("one")
        topo.add_switch(0)
        with pytest.raises(TopologyError, match="at least 2"):
            bisection_bandwidth(topo)


class TestUniformSparsestCut:
    def test_barbell_cut_found(self):
        value, side = uniform_sparsest_cut(_barbell())
        assert value == pytest.approx(2.0 / 9.0)  # bridge / (3 * 3)
        assert side in ({0, 1, 2}, {3, 4, 5})

    def test_complete_graph(self):
        value, side = uniform_sparsest_cut(complete_topology(5))
        # K5: cap(S) = 2|S||S'|, so every cut has ratio exactly 2.
        assert value == pytest.approx(2.0)

    def test_heuristic_upper_bounds_exact(self):
        topo = random_regular_topology(12, 3, seed=4)
        exact, _ = uniform_sparsest_cut(topo, exact_limit=12)
        heuristic, _ = uniform_sparsest_cut(topo, exact_limit=4)
        assert heuristic >= exact - 1e-9


class TestNonuniformSparsestCut:
    def test_upper_bounds_throughput(self):
        """Sparsest cut >= max concurrent flow (the easy LP direction)."""
        from repro.flow.edge_lp import max_concurrent_flow
        from repro.traffic.permutation import random_permutation_traffic

        for seed in range(3):
            topo = random_regular_topology(
                10, 3, servers_per_switch=1, seed=seed
            )
            traffic = random_permutation_traffic(topo, seed=seed)
            throughput = max_concurrent_flow(topo, traffic).throughput
            cut_value, _ = nonuniform_sparsest_cut(topo, traffic)
            assert cut_value >= throughput - 1e-9

    def test_within_log_factor_of_throughput(self):
        """Theorem 3 (Linial-London-Rabinovich) empirically: the gap between
        sparsest cut and throughput is O(log k)."""
        import math

        from repro.flow.edge_lp import max_concurrent_flow
        from repro.traffic.permutation import random_permutation_traffic

        topo = random_regular_topology(12, 3, servers_per_switch=1, seed=9)
        traffic = random_permutation_traffic(topo, seed=9)
        throughput = max_concurrent_flow(topo, traffic).throughput
        cut_value, _ = nonuniform_sparsest_cut(topo, traffic)
        k = len(traffic.demands)
        assert cut_value <= throughput * (4.0 * math.log(max(k, 2)) + 4.0)

    def test_barbell_with_cross_demand(self):
        topo = _barbell()
        tm = TrafficMatrix(
            name="cross", demands={(0, 5): 1.0, (1, 4): 1.0}, num_flows=2
        )
        value, side = nonuniform_sparsest_cut(topo, tm)
        assert value == pytest.approx(1.0)  # bridge 2 / demand 2

    def test_empty_traffic_rejected(self, triangle):
        tm = TrafficMatrix(name="none", demands={}, num_flows=0)
        with pytest.raises(TopologyError, match="no network demands"):
            nonuniform_sparsest_cut(triangle, tm)
