"""Differential gate for the simulation backends: sim <= LP, in band.

Mirrors ``test_differential_solvers``'s auto-enrollment: every backend
registered with ``simulation=True`` (and not ``estimate=True`` — those
already face the estimator band assertions) is pulled from the live
registry, calibrated per family with :func:`calibrate_mechanisms`, and
asserted to (a) never exceed the exact LP and (b) land inside its
calibrated mechanism band on fresh instances of the calibration family.
"""

from __future__ import annotations

import pytest

from repro.estimate import within_band
from repro.fidelity.calibrate import calibrate_mechanisms
from repro.flow.solvers import available_solvers, get_solver, solve_throughput
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic

#: (num_switches, degree, seed) — same family as CALIBRATION_FAMILY.
INSTANCES = [(8, 4, 11), (10, 4, 12), (12, 4, 13)]

#: Mechanism options under which both the bands and the assertions run.
MECHANISM_OPTIONS = {
    "sim_ecmp": {"paths": 8},
    "sim_mptcp": {"subflows": 8},
}

CALIBRATION_FAMILY = {
    "rrg": {
        "kind": "rrg",
        "params": {"network_degree": 4, "servers_per_switch": 2},
        "size_param": "num_switches",
        "sizes": (8, 12),
    }
}


def _mechanism_backends() -> list[str]:
    return [
        name
        for name in available_solvers()
        if get_solver(name).simulation and not get_solver(name).estimate
    ]


def _build(num_switches: int, degree: int, seed: int):
    topo = random_regular_topology(
        num_switches, degree, servers_per_switch=2, seed=seed
    )
    traffic = random_permutation_traffic(topo, seed=seed + 1)
    return topo, traffic


@pytest.fixture(scope="module")
def mechanism_bands():
    mechanisms = {
        name: MECHANISM_OPTIONS.get(name, {}) for name in _mechanism_backends()
    }
    table = calibrate_mechanisms(
        mechanisms, families=CALIBRATION_FAMILY, replicates=3, base_seed=100
    )
    return {name: table.band("rrg", name) for name in mechanisms}


@pytest.fixture(scope="module")
def references():
    return {
        coords: solve_throughput(*_build(*coords), "edge_lp").throughput
        for coords in INSTANCES
    }


@pytest.mark.parametrize("name", _mechanism_backends())
@pytest.mark.parametrize("coords", INSTANCES)
def test_mechanism_below_lp_and_in_band(
    name, coords, references, mechanism_bands
):
    topo, traffic = _build(*coords)
    options = MECHANISM_OPTIONS.get(name, {})
    result = solve_throughput(topo, traffic, name, **options)
    exact = references[coords]
    assert result.throughput <= exact * (1 + 1e-6), (name, coords)
    assert within_band(result.throughput, exact, mechanism_bands[name]), (
        name, coords, result.throughput, exact, mechanism_bands[name],
    )


def test_simulation_backends_registered():
    """Guard: the fidelity mechanisms are live registry members."""
    assert set(_mechanism_backends()) >= {"sim_ecmp", "sim_mptcp"}
    simulation_flagged = {
        name for name in available_solvers() if get_solver(name).simulation
    }
    assert "sim_packet" in simulation_flagged


def test_calibration_table_round_trips(tmp_path):
    table = calibrate_mechanisms(
        {"sim_ecmp": {"paths": 4}},
        families=CALIBRATION_FAMILY,
        replicates=2,
        base_seed=7,
    )
    from repro.estimate.calibrate import CalibrationTable

    rebuilt = CalibrationTable.from_dict(table.to_dict())
    assert rebuilt.band("rrg", "sim_ecmp") == table.band("rrg", "sim_ecmp")
    record = table.get("rrg", "sim_ecmp")
    assert record.samples >= 2
    assert 0 < record.ratio_min <= record.ratio_max <= 1 + 1e-9
