"""Hypothesis property tests for every topology builder.

Each family gets a randomized-constructor strategy and asserts the four
invariant groups the builders promise:

- **declared-vs-actual counts** — the closed-form switch/server counts
  each family's docstring states;
- **port-budget conservation** — no switch exceeds its network-port
  budget (degree) or its declared server attachment;
- **handshake parity** — the degree sum equals twice the link count
  (the graph stayed simple and consistent after any collapsing);
- **connectivity or documented exception** — families that guarantee a
  connected fabric must deliver one on every sampled input; families
  that explicitly do not (small-world rewiring, two-cluster with
  arbitrary cross wiring) assert their weaker documented invariants
  instead.

Structural validity (positive capacities, no self-loops, non-negative
server counts) is asserted through ``Topology.validate`` on every sample.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.base import Topology
from repro.topology.bcube import bcube_topology
from repro.topology.clos import folded_clos_topology, leaf_spine_topology
from repro.topology.complete import (
    complete_bipartite_topology,
    complete_topology,
)
from repro.topology.dragonfly import dragonfly_topology
from repro.topology.fattree import fat_tree_topology
from repro.topology.flattened_butterfly import flattened_butterfly_topology
from repro.topology.heterogeneous import (
    heterogeneous_random_topology,
    mixed_linespeed_topology,
)
from repro.topology.hypercube import hypercube_topology
from repro.topology.random_regular import random_regular_topology
from repro.topology.smallworld import small_world_topology
from repro.topology.torus import torus_topology
from repro.topology.two_cluster import two_cluster_random_topology
from repro.topology.vl2 import rewired_vl2_topology, vl2_topology

SETTINGS = settings(max_examples=15, deadline=None)

seeds = st.integers(min_value=0, max_value=10_000)


def check_common(topo: Topology) -> None:
    """Invariants every builder must satisfy on every output."""
    topo.validate()
    degree_sum = sum(topo.degree(v) for v in topo.switches)
    assert degree_sum == 2 * topo.num_links, "handshake parity violated"


class TestRandomRegular:
    @given(
        st.integers(5, 18), st.integers(2, 5), st.integers(0, 3), seeds
    )
    @SETTINGS
    def test_invariants(self, n, r, servers, seed):
        r = min(r, n - 1)
        topo = random_regular_topology(
            n, r, servers_per_switch=servers, seed=seed
        )
        check_common(topo)
        assert topo.num_switches == n
        assert topo.num_servers == n * servers
        assert all(topo.degree(v) <= r for v in topo.switches)
        # Stub accounting: at most one stub per switch plus the global
        # odd-parity stub can go unused.
        assert sum(topo.degree(v) for v in topo.switches) >= n * r - n - 1
        assert topo.is_connected()


class TestFatTree:
    @given(st.sampled_from([2, 4, 6]))
    @SETTINGS
    def test_invariants(self, k):
        topo = fat_tree_topology(k)
        check_common(topo)
        assert topo.num_switches == 5 * k * k // 4
        assert topo.num_servers == k ** 3 // 4
        for v in topo.switches:
            assert topo.degree(v) + topo.servers_at(v) <= k
        assert topo.is_connected()


class TestVL2:
    @given(
        st.sampled_from([2, 4, 6, 8]),
        st.sampled_from([2, 4, 6]),
        st.integers(1, 4),
    )
    @SETTINGS
    def test_invariants(self, da, di, servers_per_tor):
        topo = vl2_topology(da, di, servers_per_tor=servers_per_tor)
        check_common(topo)
        num_tors = da * di // 4
        assert topo.num_switches == num_tors + di + da // 2
        assert topo.num_servers == num_tors * servers_per_tor
        for tor in topo.nodes_of_type("tor"):
            assert topo.degree(tor) <= 2
        for agg in topo.nodes_of_type("agg"):
            assert topo.degree(agg) <= da
        for core in topo.nodes_of_type("core"):
            assert topo.degree(core) <= di
        assert topo.is_connected()

    @given(
        st.sampled_from([4, 6, 8]),
        st.sampled_from([4, 6]),
        st.sampled_from(["max", "max-1", "half"]),
        seeds,
    )
    @SETTINGS
    def test_rewired_invariants(self, da, di, tor_choice, seed):
        # Too few ToRs make the aggregate degree budgets ungraphical
        # (documented feasibility constraint), so sample the designed
        # operating range: full, one removed, and half the ToR count.
        max_tors = da * di // 4
        num_tors = {
            "max": max_tors,
            "max-1": max(2, max_tors - 1),
            "half": max(2, max_tors // 2),
        }[tor_choice]
        topo = rewired_vl2_topology(da, di, num_tors=num_tors, seed=seed)
        check_common(topo)
        assert len(topo.nodes_of_type("tor")) == num_tors


class TestHypercube:
    @given(st.integers(1, 6), st.integers(0, 3))
    @SETTINGS
    def test_invariants(self, dim, servers):
        topo = hypercube_topology(dim, servers_per_switch=servers)
        check_common(topo)
        assert topo.num_switches == 2 ** dim
        assert all(topo.degree(v) == dim for v in topo.switches)
        assert topo.num_servers == servers * 2 ** dim
        assert topo.is_connected()


class TestTorus:
    @given(st.lists(st.integers(3, 5), min_size=2, max_size=3))
    @SETTINGS
    def test_invariants(self, dims):
        # Documented constraint: every dimension >= 3 (wrap links would
        # otherwise duplicate grid links); each dimension adds 2 ports.
        topo = torus_topology(tuple(dims))
        check_common(topo)
        expected = 1
        for d in dims:
            expected *= d
        assert topo.num_switches == expected
        assert all(
            topo.degree(v) == 2 * len(dims) for v in topo.switches
        )
        assert topo.is_connected()


class TestComplete:
    @given(st.integers(2, 12), st.integers(0, 3))
    @SETTINGS
    def test_complete(self, n, servers):
        topo = complete_topology(n, servers_per_switch=servers)
        check_common(topo)
        assert topo.num_switches == n
        assert topo.num_links == n * (n - 1) // 2
        assert all(topo.degree(v) == n - 1 for v in topo.switches)
        assert topo.is_connected()

    @given(st.integers(1, 6), st.integers(1, 6))
    @SETTINGS
    def test_complete_bipartite(self, left, right):
        topo = complete_bipartite_topology(left, right)
        check_common(topo)
        assert topo.num_switches == left + right
        assert topo.num_links == left * right
        assert topo.is_connected()


class TestClos:
    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 4),
           st.integers(1, 3))
    @SETTINGS
    def test_leaf_spine(self, leaves, spines, servers, links_per_pair):
        topo = leaf_spine_topology(
            leaves, spines, servers, links_per_pair=links_per_pair
        )
        check_common(topo)
        assert topo.num_switches == leaves + spines
        assert topo.num_links == leaves * spines
        for leaf in topo.nodes_of_type("leaf"):
            assert topo.degree(leaf) == spines
        for spine in topo.nodes_of_type("spine"):
            assert topo.degree(spine) == leaves
        assert topo.is_connected()

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 4))
    @SETTINGS
    def test_folded_clos(self, leaves, spines, servers):
        topo = folded_clos_topology(leaves, spines, servers)
        check_common(topo)
        assert topo.num_switches == leaves + spines
        assert topo.num_servers == leaves * servers
        assert topo.is_connected()


class TestBCube:
    @given(st.integers(2, 3), st.integers(1, 2))
    @SETTINGS
    def test_invariants(self, n, k):
        topo = bcube_topology(n, k)
        check_common(topo)
        hosts = n ** (k + 1)
        assert topo.num_switches == hosts + (k + 1) * n ** k
        assert topo.num_servers == hosts
        for v in topo.nodes_of_type("server"):
            assert topo.degree(v) == k + 1
        for v in topo.nodes_of_type("switch"):
            assert topo.degree(v) == n
        assert topo.is_connected()


class TestFlattenedButterfly:
    @given(st.integers(2, 4), st.integers(2, 3))
    @SETTINGS
    def test_invariants(self, k, dims):
        topo = flattened_butterfly_topology(k, dimensions=dims)
        check_common(topo)
        assert topo.num_switches == k ** dims
        assert all(
            topo.degree(v) == (k - 1) * dims for v in topo.switches
        )
        assert topo.is_connected()


class TestDragonfly:
    @given(st.integers(2, 4), st.integers(0, 2), st.integers(1, 2))
    @SETTINGS
    def test_invariants(self, a, p, h):
        topo = dragonfly_topology(
            a, servers_per_router=p, global_ports_per_router=h
        )
        check_common(topo)
        groups = a * h + 1
        assert topo.num_switches == groups * a
        assert topo.num_servers == groups * a * p
        # Port budget: a-1 intra-group + h global ports per router.
        assert all(
            topo.degree(v) <= (a - 1) + h for v in topo.switches
        )
        assert topo.is_connected()


class TestSmallWorld:
    """Documented exception: rewiring may disconnect the ring, so
    connectivity is not asserted; the link count and simplicity are."""

    @given(
        st.integers(6, 18),
        st.sampled_from([2, 4]),
        st.floats(0.0, 1.0),
        seeds,
    )
    @SETTINGS
    def test_invariants(self, n, nn, p, seed):
        topo = small_world_topology(
            n, nn, rewire_probability=p, seed=seed
        )
        check_common(topo)
        assert topo.num_switches == n
        # Every rewire replaces a link one-for-one (or keeps it when no
        # valid endpoint exists), so the ring-lattice count is preserved.
        assert topo.num_links == n * nn // 2
        if p == 0.0:
            assert topo.is_connected()


class TestTwoCluster:
    """Documented exception: the cross-wiring budget is exact, so extreme
    parameter draws can legally disconnect a cluster from the other;
    connectivity is only guaranteed in the paper's operating regime.
    ``clamp_cross=True`` because tiny clusters can make even the
    unbiased-expectation budget infeasible (more cross links than
    distinct large-small pairs), which raises without clamping."""

    @given(
        st.integers(2, 5),
        st.integers(2, 6),
        st.integers(2, 6),
        st.integers(2, 4),
        seeds,
    )
    @SETTINGS
    def test_invariants(self, num_large, large_ports, num_small,
                        small_ports, seed):
        topo = two_cluster_random_topology(
            num_large=num_large,
            large_network_ports=large_ports,
            num_small=num_small,
            small_network_ports=small_ports,
            servers_per_large=2,
            servers_per_small=1,
            clamp_cross=True,
            seed=seed,
        )
        check_common(topo)
        assert topo.num_switches == num_large + num_small
        assert topo.num_servers == 2 * num_large + num_small
        assert len(topo.nodes_in_cluster("large")) == num_large
        assert len(topo.nodes_in_cluster("small")) == num_small
        for v in topo.nodes_in_cluster("large"):
            assert topo.degree(v) <= large_ports
        for v in topo.nodes_in_cluster("small"):
            assert topo.degree(v) <= small_ports


class TestHeterogeneous:
    @given(
        st.lists(st.integers(2, 6), min_size=4, max_size=10),
        seeds,
    )
    @SETTINGS
    def test_invariants(self, ports, seed):
        port_counts = {f"s{i}": p for i, p in enumerate(ports)}
        servers = {f"s{i}": 1 for i in range(len(ports))}
        topo = heterogeneous_random_topology(port_counts, servers, seed=seed)
        check_common(topo)
        assert topo.num_switches == len(ports)
        assert topo.num_servers == len(ports)
        for node, budget in port_counts.items():
            assert topo.degree(node) <= budget

    @given(st.integers(2, 4), st.integers(2, 5), st.integers(1, 3), seeds)
    @SETTINGS
    def test_mixed_linespeed(self, num_large, num_small, high_ports, seed):
        # Documented constraint: the high-speed mesh needs more large
        # switches than high ports per switch.
        high_ports = min(high_ports, num_large - 1)
        topo = mixed_linespeed_topology(
            num_large=num_large,
            large_low_ports=4,
            num_small=num_small,
            small_low_ports=3,
            servers_per_large=2,
            servers_per_small=1,
            high_ports_per_large=high_ports,
            high_speed=4.0,
            seed=seed,
        )
        check_common(topo)
        assert topo.num_switches == num_large + num_small
        assert topo.num_servers == 2 * num_large + num_small
