"""Tests for experiment containers and aggregation helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSeries,
    SeriesPoint,
    mean_and_std,
    sweep_average,
)


class TestSeries:
    def test_add_and_sort(self):
        series = ExperimentSeries("s")
        series.add(2.0, 0.5)
        series.add(1.0, 0.25)
        assert series.xs() == [1.0, 2.0]
        assert series.ys() == [0.25, 0.5]

    def test_y_at(self):
        series = ExperimentSeries("s")
        series.add(1.0, 0.3)
        assert series.y_at(1.0) == 0.3
        with pytest.raises(ExperimentError, match="no point"):
            series.y_at(9.0)

    def test_peak(self):
        series = ExperimentSeries("s")
        series.add(1.0, 0.3)
        series.add(2.0, 0.9)
        series.add(3.0, 0.6)
        assert series.peak() == SeriesPoint(2.0, 0.9, 0.0)

    def test_peak_of_empty_rejected(self):
        with pytest.raises(ExperimentError, match="empty"):
            ExperimentSeries("s").peak()

    def test_normalized_to_peak(self):
        series = ExperimentSeries("s")
        series.add(1.0, 0.5, std=0.1)
        series.add(2.0, 1.0)
        normalized = series.normalized_to_peak()
        assert normalized.y_at(1.0) == pytest.approx(0.5)
        assert normalized.y_at(2.0) == pytest.approx(1.0)
        assert normalized.sorted_points()[0].std == pytest.approx(0.1)

    def test_normalize_zero_peak_rejected(self):
        series = ExperimentSeries("s")
        series.add(1.0, 0.0)
        with pytest.raises(ExperimentError, match="non-positive"):
            series.normalized_to_peak()


class TestResult:
    def _result(self) -> ExperimentResult:
        result = ExperimentResult("id", "title", "x", "y")
        a = ExperimentSeries("a")
        a.add(1.0, 0.1)
        a.add(2.0, 0.2)
        b = ExperimentSeries("b")
        b.add(2.0, 0.9)
        result.add_series(a)
        result.add_series(b)
        return result

    def test_get_series(self):
        result = self._result()
        assert result.get_series("a").name == "a"
        with pytest.raises(ExperimentError, match="no series"):
            result.get_series("zz")

    def test_table_contains_all_points(self):
        table = self._result().to_table()
        assert "id" in table and "title" in table
        assert "0.9000" in table
        assert "-" in table  # series b has no point at x=1


class TestAggregation:
    def test_mean_and_std(self):
        mean, std = mean_and_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(0.8164965809)

    def test_single_value(self):
        assert mean_and_std([4.0]) == (4.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError, match="no values"):
            mean_and_std([])

    def test_sweep_average(self):
        mean, std = sweep_average(lambda seed: float(seed) * 2, [1, 2, 3])
        assert mean == pytest.approx(4.0)
