"""Scale experiment: registry wiring, series shape, band bookkeeping."""

from __future__ import annotations

import pytest

from repro.experiments.registry import available_experiments, run_experiment
from repro.experiments.scale import (
    fat_tree_arity_for,
    run_scale,
    scale_families,
    vl2_degrees_for,
)


class TestSizing:
    def test_fat_tree_arity_is_even_and_tracks_n(self):
        for n in (20, 100, 500, 1000, 5000, 10000):
            k = fat_tree_arity_for(n)
            assert k % 2 == 0 and k >= 4
            assert abs(5 * k * k / 4 - n) / n < 0.35

    def test_vl2_degrees_even_and_track_n(self):
        for n in (50, 200, 1000, 10000):
            da, di = vl2_degrees_for(n)
            assert da == di and da % 2 == 0
            assert abs((da * di / 4 + di + da / 2) - n) / n < 0.35

    def test_families_cover_three_designs(self):
        labels = [label for label, _, _ in scale_families(100)]
        assert labels == ["rrg", "fat-tree", "vl2"]


class TestRunScale:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        return run_scale(
            sizes=(24, 40),
            exact_limit=40,
            runs=1,
            network_degree=4,
            servers_per_switch=2,
        )

    def test_series_per_family_and_solver(self, tiny_result):
        names = {s.name for s in tiny_result.series}
        for family in ("rrg", "fat-tree", "vl2"):
            for solver in ("estimate_bound", "estimate_cut", "edge_lp"):
                assert f"{family}/{solver}" in names

    def test_every_series_has_both_sizes(self, tiny_result):
        for series in tiny_result.series:
            assert series.xs() == [24.0, 40.0]
            assert all(y > 0 for y in series.ys())

    def test_band_checks_recorded_and_clean(self, tiny_result):
        assert tiny_result.metadata["band_checks"] > 0
        assert tiny_result.metadata["band_violations"] == 0

    def test_calibration_table_in_metadata(self, tiny_result):
        records = tiny_result.metadata["calibration"]["records"]
        keys = {(r["family"], r["estimator"]) for r in records}
        assert ("rrg", "estimate_bound") in keys
        assert ("vl2", "estimate_cut") in keys

    def test_estimates_above_exact_where_paired(self, tiny_result):
        # Both default estimators are upper bounds: at every size where
        # the exact LP also ran, the estimate series sits at or above it.
        for family in ("rrg", "fat-tree", "vl2"):
            exact = tiny_result.get_series(f"{family}/edge_lp")
            for estimator in ("estimate_bound", "estimate_cut"):
                est = tiny_result.get_series(f"{family}/{estimator}")
                for x in exact.xs():
                    assert est.y_at(x) >= exact.y_at(x) * (1 - 1e-9)


class TestRegistryWiring:
    def test_scale_registered(self):
        assert "scale" in available_experiments()

    def test_rejects_empty_sizes(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            run_experiment("scale", sizes=())
