"""Solver registry: protocol conformance, aliasing, SolverConfig."""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import FlowError
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.solvers import (
    SolverConfig,
    ThroughputSolver,
    available_solvers,
    get_solver,
    normalize_solver_name,
    register_solver,
    solve_throughput,
)


class TestRegistry:
    def test_canonical_backends_present(self):
        names = available_solvers()
        for key in ("edge_lp", "path_lp", "approx", "ecmp"):
            assert key in names

    def test_alias_listing(self):
        names = available_solvers(include_aliases=True)
        assert "edge-lp" in names
        assert "garg-koenemann" in names

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("edge-lp", "edge_lp"),
            ("EDGE_LP", "edge_lp"),
            ("path-lp", "path_lp"),
            ("garg-koenemann", "approx"),
            ("gk", "approx"),
            ("ecmp", "ecmp"),
        ],
    )
    def test_normalization(self, alias, canonical):
        assert normalize_solver_name(alias) == canonical

    def test_unknown_name_raises(self):
        with pytest.raises(FlowError, match="unknown solver"):
            normalize_solver_name("simplex-of-doom")

    def test_non_string_name_raises(self):
        with pytest.raises(FlowError, match="must be a string"):
            normalize_solver_name(42)

    def test_backends_satisfy_protocol(self):
        for name in available_solvers():
            assert isinstance(get_solver(name).fn, ThroughputSolver)

    def test_double_registration_rejected(self):
        with pytest.raises(FlowError, match="already registered"):
            register_solver("edge_lp", max_concurrent_flow)

    def test_exact_flags(self):
        assert get_solver("edge_lp").exact
        assert not get_solver("path_lp").exact
        assert not get_solver("approx").exact


class TestSolveThroughput:
    def test_matches_direct_call(self, small_rrg, small_rrg_traffic):
        direct = max_concurrent_flow(small_rrg, small_rrg_traffic)
        via_registry = solve_throughput(small_rrg, small_rrg_traffic, "edge_lp")
        assert via_registry.throughput == pytest.approx(direct.throughput)
        assert via_registry.solver == direct.solver

    def test_options_forwarded(self, small_rrg, small_rrg_traffic):
        exact = solve_throughput(small_rrg, small_rrg_traffic).throughput
        restricted = solve_throughput(
            small_rrg, small_rrg_traffic, "path_lp", k=1
        )
        assert restricted.throughput <= exact * (1 + 1e-9)

    def test_all_backends_solve(self, small_rrg, small_rrg_traffic):
        exact = solve_throughput(small_rrg, small_rrg_traffic).throughput
        for name in available_solvers():
            result = solve_throughput(small_rrg, small_rrg_traffic, name)
            assert result.throughput > 0
            if not get_solver(name).estimate:
                # Optimizing backends are the optimum or a lower bound;
                # estimators may legitimately sit above it (the bound and
                # cut estimates are upper bounds by construction).
                assert result.throughput <= exact * (1 + 1e-6)


class TestSolverConfig:
    def test_canonicalizes_name_and_options(self):
        a = SolverConfig.make("path-lp", k=8)
        b = SolverConfig("path_lp", options=(("k", 8),))
        assert a == b
        assert a.name == "path_lp"
        assert hash(a) == hash(b)

    def test_option_order_irrelevant(self):
        a = SolverConfig(name="approx", options=(("epsilon", 0.1), ("a", 1)))
        b = SolverConfig(name="approx", options=(("a", 1), ("epsilon", 0.1)))
        assert a == b

    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(FlowError):
            SolverConfig.make("nope")

    def test_dict_round_trip(self):
        config = SolverConfig.make("path_lp", k=4)
        assert SolverConfig.from_dict(config.to_dict()) == config

    def test_label(self):
        assert SolverConfig.make("edge_lp").label() == "edge_lp"
        assert SolverConfig.make("path_lp", k=8).label() == "path_lp(k=8)"

    def test_solve(self, small_rrg, small_rrg_traffic):
        config = SolverConfig.make("ecmp")
        result = config.solve(small_rrg, small_rrg_traffic)
        assert result.throughput > 0
        assert not result.exact

    def test_picklable(self):
        config = SolverConfig.make("path_lp", k=8)
        assert pickle.loads(pickle.dumps(config)) == config
