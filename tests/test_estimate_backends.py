"""Estimator backends: registry wiring, bound properties, result fields."""

from __future__ import annotations

import json

import pytest

from repro.estimate import ESTIMATOR_BACKENDS, estimate_sampled_lp
from repro.exceptions import FlowError
from repro.flow.result import ThroughputResult
from repro.flow.solvers import (
    SolverConfig,
    available_solvers,
    get_solver,
    solve_throughput,
)


class TestRegistryWiring:
    def test_every_estimator_registered(self):
        names = available_solvers()
        for key in ESTIMATOR_BACKENDS:
            assert key in names

    def test_estimate_flag_set_only_on_estimators(self):
        for name in available_solvers():
            backend = get_solver(name)
            if backend.simulation:
                # Fidelity backends manage their own estimate flag
                # (sim_packet is a calibrated estimate; the fluid
                # mechanisms are constructive lower bounds).
                continue
            assert backend.estimate == (name in ESTIMATOR_BACKENDS)

    def test_estimators_are_inexact(self):
        for key in ESTIMATOR_BACKENDS:
            assert not get_solver(key).exact

    def test_solver_config_builds_estimators(self, small_rrg, small_rrg_traffic):
        config = SolverConfig.make("estimate-bound")
        assert config.name == "estimate_bound"
        result = config.solve(small_rrg, small_rrg_traffic)
        assert result.is_estimate


class TestEstimateResults:
    @pytest.mark.parametrize("name", ESTIMATOR_BACKENDS)
    def test_marks_result_as_estimate(self, small_rrg, small_rrg_traffic, name):
        result = solve_throughput(small_rrg, small_rrg_traffic, name)
        assert result.is_estimate
        assert not result.exact
        assert result.solver == name.replace("_", "-")
        assert result.throughput > 0
        assert result.total_demand == small_rrg_traffic.total_demand

    @pytest.mark.parametrize("name", ESTIMATOR_BACKENDS)
    def test_error_band_recorded_and_serialized(
        self, small_rrg, small_rrg_traffic, name
    ):
        result = solve_throughput(
            small_rrg, small_rrg_traffic, name, error_band=(0.8, 1.5)
        )
        assert result.error_band == (0.8, 1.5)
        payload = json.loads(json.dumps(result.to_dict()))
        back = ThroughputResult.from_dict(payload)
        assert back.error_band == (0.8, 1.5)
        assert back.is_estimate
        assert back.throughput == result.throughput

    @pytest.mark.parametrize("name", ESTIMATOR_BACKENDS)
    def test_bad_error_band_rejected(self, small_rrg, small_rrg_traffic, name):
        with pytest.raises(FlowError):
            solve_throughput(
                small_rrg, small_rrg_traffic, name, error_band=(1.5, 0.8)
            )
        with pytest.raises(FlowError):
            solve_throughput(
                small_rrg, small_rrg_traffic, name, error_band=(0.0, 1.0)
            )

    def test_exact_solver_results_unchanged(self, small_rrg, small_rrg_traffic):
        result = solve_throughput(small_rrg, small_rrg_traffic, "edge_lp")
        assert not result.is_estimate
        assert result.error_band is None
        payload = result.to_dict()
        assert "is_estimate" not in payload
        assert "error_band" not in payload


class TestUpperBoundEstimators:
    @pytest.mark.parametrize("name", ["estimate_bound", "estimate_cut"])
    def test_never_below_exact(self, small_rrg, small_rrg_traffic, name):
        exact = solve_throughput(
            small_rrg, small_rrg_traffic, "edge_lp"
        ).throughput
        estimate = solve_throughput(
            small_rrg, small_rrg_traffic, name
        ).throughput
        assert estimate >= exact * (1 - 1e-9)

    def test_cut_no_looser_than_trivial_single_node(self, small_rrg, small_rrg_traffic):
        # The single-switch candidate set alone implies est <= min over
        # switches of cap(v)/dem(v); the sampled estimator includes it.
        result = solve_throughput(small_rrg, small_rrg_traffic, "estimate_cut")
        best_single = float("inf")
        for v in small_rrg.switches:
            cap = 2.0 * sum(
                small_rrg.capacity(v, w) for w in small_rrg.neighbors(v)
            )
            dem = sum(
                units
                for (a, b), units in small_rrg_traffic.demands.items()
                if v in (a, b)
            )
            if dem > 0:
                best_single = min(best_single, cap / dem)
        assert result.throughput <= best_single + 1e-9


class TestSampledLP:
    def test_full_solve_when_sample_covers_demand(
        self, small_rrg, small_rrg_traffic
    ):
        exact = solve_throughput(
            small_rrg, small_rrg_traffic, "edge_lp"
        ).throughput
        estimate = solve_throughput(
            small_rrg,
            small_rrg_traffic,
            "estimate_sampled_lp",
            max_pairs=10_000,
        )
        assert estimate.throughput == pytest.approx(exact, rel=1e-9)
        assert estimate.is_estimate

    def test_sampling_is_deterministic_per_seed(self, small_rrg, small_rrg_traffic):
        a = estimate_sampled_lp(
            small_rrg, small_rrg_traffic, max_pairs=4, seed=7
        ).throughput
        b = estimate_sampled_lp(
            small_rrg, small_rrg_traffic, max_pairs=4, seed=7
        ).throughput
        assert a == b

    def test_sample_fraction_clamps_against_max_and_min(
        self, small_rrg, small_rrg_traffic
    ):
        # fraction * pairs below min_pairs -> min_pairs wins (full solve
        # here because the workload has few pairs anyway).
        result = estimate_sampled_lp(
            small_rrg,
            small_rrg_traffic,
            sample_fraction=0.01,
            min_pairs=1000,
        )
        exact = solve_throughput(
            small_rrg, small_rrg_traffic, "edge_lp"
        ).throughput
        assert result.throughput == pytest.approx(exact, rel=1e-9)
        with pytest.raises(ValueError):
            estimate_sampled_lp(
                small_rrg, small_rrg_traffic, sample_fraction=1.5
            )

    def test_result_flows_feasible(self, small_rrg, small_rrg_traffic):
        result = estimate_sampled_lp(small_rrg, small_rrg_traffic, max_pairs=6)
        result.validate_feasibility()
