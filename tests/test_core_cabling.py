"""Tests for cable-length accounting and layouts."""

from __future__ import annotations

import pytest

from repro.core.cabling import (
    cable_report,
    compare_layouts,
    grid_layout,
    linear_layout,
)
from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.topology.two_cluster import two_cluster_random_topology


@pytest.fixture
def clustered_topo() -> Topology:
    """Cross-sparse two-cluster network (the clustering-friendly regime)."""
    return two_cluster_random_topology(
        6, 5, 6, 5, cross_links=3, seed=3
    )


class TestLayouts:
    def test_linear_layout_assigns_all(self, clustered_topo):
        layout = linear_layout(clustered_topo, seed=1)
        assert set(layout) == set(clustered_topo.switches)
        assert sorted(layout.values()) == list(range(12))

    def test_cluster_grouping_contiguous(self, clustered_topo):
        layout = linear_layout(clustered_topo, group_by_cluster=True, seed=1)
        large_slots = sorted(
            layout[v] for v in clustered_topo.nodes_in_cluster("large")
        )
        # Contiguous block: max - min spans exactly the cluster size.
        assert large_slots[-1] - large_slots[0] == len(large_slots) - 1

    def test_explicit_order(self, clustered_topo):
        order = list(clustered_topo.switches)[::-1]
        layout = linear_layout(clustered_topo, order=order)
        assert layout[order[0]] == 0

    def test_bad_order_rejected(self, clustered_topo):
        with pytest.raises(TopologyError, match="every switch"):
            linear_layout(clustered_topo, order=[0, 1])

    def test_grid_layout_shape(self, clustered_topo):
        layout = grid_layout(clustered_topo, columns=4, seed=2)
        rows = {pos[0] for pos in layout.values()}
        cols = {pos[1] for pos in layout.values()}
        assert max(cols) <= 3
        assert len(rows) == 3  # 12 switches / 4 columns

    def test_grid_columns_validated(self, clustered_topo):
        with pytest.raises(TopologyError, match="columns"):
            grid_layout(clustered_topo, columns=0)


class TestCableReport:
    def test_simple_line(self):
        topo = Topology("line")
        for v in range(3):
            topo.add_switch(v)
        topo.add_link(0, 1)
        topo.add_link(0, 2)
        report = cable_report(topo, {0: 0, 1: 1, 2: 2})
        assert report.total_length == pytest.approx(3.0)  # 1 + 2
        assert report.mean_length == pytest.approx(1.5)
        assert report.max_length == pytest.approx(2.0)
        assert report.num_cables == 2

    def test_capacity_weighting(self):
        topo = Topology("trunk")
        topo.add_switch(0)
        topo.add_switch(1)
        topo.add_link(0, 1, capacity=4.0)
        unweighted = cable_report(topo, {0: 0, 1: 2})
        weighted = cable_report(topo, {0: 0, 1: 2}, weight_by_capacity=True)
        assert unweighted.num_cables == 1
        assert weighted.num_cables == 4
        assert weighted.total_length == pytest.approx(8.0)

    def test_grid_positions_use_manhattan(self):
        topo = Topology("grid")
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_link("a", "b")
        report = cable_report(topo, {"a": (0, 0), "b": (2, 3)})
        assert report.total_length == pytest.approx(5.0)

    def test_missing_switch_rejected(self, clustered_topo):
        with pytest.raises(TopologyError, match="misses"):
            cable_report(clustered_topo, {0: 0})


class TestClusteringPaysOff:
    def test_clustered_layout_shortens_cables(self, clustered_topo):
        """The paper's §5.1 consequence: on cross-sparse networks, placing
        clusters contiguously cuts cable length."""
        reports = compare_layouts(clustered_topo, seed=4)
        assert (
            reports["clustered"].mean_length
            < reports["random"].mean_length
        )

    def test_throughput_unchanged_by_layout(self, clustered_topo):
        """Layout is physical only — sanity that we never conflate it with
        the logical topology."""
        from repro.flow.edge_lp import max_concurrent_flow
        from repro.traffic.base import TrafficMatrix

        tm = TrafficMatrix(
            name="x", demands={(0, 7): 1.0, (7, 0): 1.0}, num_flows=2
        )
        before = max_concurrent_flow(clustered_topo, tm).throughput
        compare_layouts(clustered_topo, seed=5)
        after = max_concurrent_flow(clustered_topo, tm).throughput
        assert before == after
