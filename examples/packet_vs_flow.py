#!/usr/bin/env python3
"""Packet-level MPTCP vs. the fluid flow LP (§8.2, Figure 13).

Builds an oversubscribed rewired-VL2 network, computes the optimal
concurrent flow with the exact LP, then runs the discrete-event packet
simulator (8 MPTCP subflows over k-shortest paths) on the very same
workload and compares per-flow goodput.

Run:  python examples/packet_vs_flow.py
"""

from repro import (
    PacketLevelSimulator,
    SimulationConfig,
    max_concurrent_flow,
    random_permutation_traffic,
    rewired_vl2_topology,
)


def main() -> None:
    topo = rewired_vl2_topology(4, 4, num_tors=10, servers_per_tor=4, seed=1)
    traffic = random_permutation_traffic(topo, seed=2)
    print(f"topology: {topo}")
    print(f"traffic : {traffic}")

    lp = max_concurrent_flow(topo, traffic)
    print(f"\nflow-level optimum (LP)  : {lp.throughput:.3f} per flow")

    config = SimulationConfig(
        duration=400.0,
        warmup=150.0,
        subflows=8,
        packet_size=0.25,
    )
    report = PacketLevelSimulator(topo, config).run(traffic, seed=3)
    print(f"packet-level mean goodput: {report.mean_rate:.3f} per flow")
    print(f"packet-level min goodput : {report.min_rate:.3f} per flow")
    print(f"packets dropped          : {report.total_dropped}")
    gap = 1.0 - report.mean_rate / min(lp.throughput, 1.0)
    print(f"\nmean gap to flow optimum : {gap:+.1%}")
    print("(the paper reports a few percent with full MPTCP in htsim; the")
    print(" simplified AIMD transport here typically lands within ~10%)")


if __name__ == "__main__":
    main()
