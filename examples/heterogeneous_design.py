#!/usr/bin/env python3
"""Designing a heterogeneous network from a mixed equipment pool (§5).

You have 8 large switches (15 ports) and 16 small switches (8 ports) and
need to attach 96 servers. Where should the servers go, and how should the
switches interconnect? The paper's answer: servers proportional to port
counts, wired with vanilla randomness. This example verifies that with the
:class:`~repro.core.design.HeterogeneousDesigner` grid search and prints
the ranked design points.

Run:  python examples/heterogeneous_design.py
"""

from repro import HeterogeneousDesigner
from repro.core.placement import proportional_split_for


def main() -> None:
    designer = HeterogeneousDesigner(
        num_large=8,
        large_ports=15,
        num_small=16,
        small_ports=8,
        total_servers=96,
        runs=3,
        seed=42,
    )

    proportional = proportional_split_for(8, 15, 16, 8, 96)
    print(
        "proportional rule says: "
        f"{proportional.servers_per_large} servers on each large switch, "
        f"{proportional.servers_per_small} on each small one "
        f"(placement ratio {proportional.ratio:.2f})"
    )

    points = designer.search(cross_fractions=[0.4, 0.7, 1.0, 1.3])
    print(f"\nevaluated {len(points)} design points; top 8 by throughput:")
    print(f"{'design':>18s}  {'ratio':>6s}  {'throughput':>10s}  {'std':>6s}")
    for point in points[:8]:
        print(
            f"{point.label():>18s}  {point.placement_ratio:6.2f}  "
            f"{point.mean_throughput:10.4f}  {point.std_throughput:6.4f}"
        )

    best = points[0]
    print(
        f"\nbest design: {best.label()} "
        f"(placement ratio {best.placement_ratio:.2f})"
    )
    print(
        "note how near-proportional splits with cross fractions around 1.0 "
        "crowd the top of the ranking, as §5.1 predicts."
    )


if __name__ == "__main__":
    main()
