#!/usr/bin/env python3
"""Clustering racks shortens cables without losing throughput (§5.1).

Figure 6 shows throughput is flat across a wide band of cross-cluster
connectivity. The operational consequence the paper highlights: you can
*bias connectivity toward co-located switches* — fewer long cables — while
staying on the throughput plateau. This study sweeps the bias, laying the
two clusters out contiguously on a line of racks, and reports throughput
next to cable length.

Run:  python examples/cabling_study.py
"""

from repro import max_concurrent_flow, random_permutation_traffic
from repro.core.cabling import cable_report, linear_layout
from repro.topology.two_cluster import two_cluster_random_topology


def main() -> None:
    print("two clusters of 8 switches x 8 net-ports, 4 servers each;")
    print("sweeping cross-cluster link share (x = 1 is unbiased random)\n")
    header = f"{'x':>5} {'throughput':>11} {'mean cable':>11} {'max cable':>10}"
    print(header)
    print("-" * len(header))
    rows = []
    for fraction in (0.25, 0.5, 0.75, 1.0, 1.25):
        throughputs = []
        cable_means = []
        cable_maxes = []
        for seed in (1, 2, 3):
            topo = two_cluster_random_topology(
                num_large=8, large_network_ports=8,
                num_small=8, small_network_ports=8,
                servers_per_large=4, servers_per_small=4,
                cross_fraction=fraction, clamp_cross=True, seed=seed,
            )
            traffic = random_permutation_traffic(topo, seed=seed + 10)
            throughputs.append(max_concurrent_flow(topo, traffic).throughput)
            layout = linear_layout(topo, group_by_cluster=True, seed=seed)
            report = cable_report(topo, layout)
            cable_means.append(report.mean_length)
            cable_maxes.append(report.max_length)
        throughput = sum(throughputs) / len(throughputs)
        mean_cable = sum(cable_means) / len(cable_means)
        max_cable = max(cable_maxes)
        rows.append((fraction, throughput, mean_cable))
        print(f"{fraction:5.2f} {throughput:11.3f} {mean_cable:11.2f} "
              f"{max_cable:10.0f}")

    print()
    base = next(row for row in rows if row[0] == 1.0)
    biased = next(row for row in rows if row[0] == 0.75)
    saved = 1.0 - biased[2] / base[2]
    lost = 1.0 - biased[1] / base[1]
    print(f"cutting cross-cluster links by 25% saves {saved:.0%} mean cable")
    print(f"length at a throughput cost of {max(lost, 0.0):.1%} — the Figure 6")
    print("plateau in action: locality is nearly free until the cut starves")
    print("(compare the collapse at x = 0.25).")


if __name__ == "__main__":
    main()
