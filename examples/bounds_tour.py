#!/usr/bin/env python3
"""A tour of the paper's analytical machinery (§4, §6.2).

1. The Cerf et al. ASPL lower bound and its "curved step" boundaries.
2. Theorem 1's throughput upper bound across network densities.
3. The two-part cut bound (Eqn. 1) on a concrete two-cluster network, and
   the C̄* threshold below which throughput provably drops (Figure 11).

Run:  python examples/bounds_tour.py
"""

from repro import (
    average_shortest_path_length,
    max_concurrent_flow,
    random_permutation_traffic,
    two_cluster_random_topology,
    two_part_throughput_bound,
)
from repro.core.bounds import (
    aspl_lower_bound,
    aspl_step_boundaries,
    throughput_upper_bound,
)
from repro.core.cut_bounds import threshold_cross_capacity
from repro.topology.two_cluster import cluster_cut_capacity


def main() -> None:
    print("ASPL bound steps for degree 4 (Figure 3's x-tics):")
    print(" ", aspl_step_boundaries(4, max_levels=6))

    print("\nThroughput upper bound, N=40 switches, 200 permutation flows:")
    for degree in (5, 10, 20, 30):
        bound = throughput_upper_bound(40, degree, 200)
        d_star = aspl_lower_bound(40, degree)
        print(f"  r={degree:2d}: d*={d_star:.3f}  bound={bound:.3f} per flow")

    print("\nTwo-cluster cut bound vs observed (8x15p + 16x5p, 96 servers):")
    header = f"  {'x':>5s} {'C-bar':>7s} {'bound':>7s} {'observed':>8s}"
    print(header)
    peak = 0.0
    observations = []
    for fraction in (0.15, 0.3, 0.6, 1.0, 1.4):
        topo = two_cluster_random_topology(
            num_large=8, large_network_ports=7,
            num_small=16, small_network_ports=2,
            servers_per_large=8, servers_per_small=2,
            cross_fraction=fraction, clamp_cross=True, seed=99,
        )
        traffic = random_permutation_traffic(topo, seed=5)
        observed = max_concurrent_flow(topo, traffic).throughput
        bound = two_part_throughput_bound(
            total_capacity=topo.total_capacity,
            cross_capacity=cluster_cut_capacity(topo),
            n1=64, n2=32,
            aspl=average_shortest_path_length(topo),
        )
        cut = cluster_cut_capacity(topo)
        print(f"  {fraction:5.2f} {cut:7.0f} {bound:7.3f} {observed:8.3f}")
        peak = max(peak, observed)
        observations.append((fraction, cut, observed))

    cbar_star = threshold_cross_capacity(peak, 64, 32)
    print(f"\npeak T* = {peak:.3f}; C-bar* = {cbar_star:.1f}")
    print("every sampled point with cut capacity below C-bar* must sit below T*:")
    for fraction, cut, observed in observations:
        if cut < cbar_star:
            verdict = "drops, as guaranteed" if observed < peak else "VIOLATION"
            print(f"  x={fraction:.2f}: C-bar={cut:.0f} < C-bar* -> "
                  f"T={observed:.3f} ({verdict})")


if __name__ == "__main__":
    main()
