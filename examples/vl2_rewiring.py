#!/usr/bin/env python3
"""Rewiring VL2 for more servers at full throughput (§7, Figure 12a).

Takes a (scaled-down) VL2 equipment pool — DI aggregation switches with DA
ports, DA/2 core switches with DI ports — and compares how many ToRs the
standard VL2 wiring vs. the paper's rewired design can support at full
throughput under random permutation traffic. Also shows where link
utilization concentrates in each design.

Run:  python examples/vl2_rewiring.py
"""

from repro import (
    max_concurrent_flow,
    random_permutation_traffic,
    rewired_vl2_topology,
    vl2_improvement_ratio,
    vl2_topology,
)
from repro.flow.decomposition import group_utilization


def main() -> None:
    da, di = 6, 8
    servers_per_tor = 10

    comparison = vl2_improvement_ratio(
        da, di, runs=2, seed=11, servers_per_tor=servers_per_tor
    )
    print(f"equipment: DA={da}, DI={di} "
          f"({di} agg x {da} ports, {da // 2} core x {di} ports)")
    print(f"VL2 supports     : {comparison.vl2_tors} ToRs "
          f"({comparison.vl2_tors * servers_per_tor} servers)")
    print(f"rewired supports : {comparison.rewired_tors} ToRs "
          f"({comparison.rewired_tors * servers_per_tor} servers)")
    print(f"improvement      : {comparison.ratio:.2f}x\n")

    # Where do the bottlenecks sit? Compare utilization by link group at
    # VL2's design size.
    num_tors = comparison.vl2_tors
    for label, topo in (
        ("vl2", vl2_topology(da, di, servers_per_tor=servers_per_tor,
                             num_tors=num_tors)),
        ("rewired", rewired_vl2_topology(da, di, num_tors=num_tors,
                                         servers_per_tor=servers_per_tor,
                                         seed=3)),
    ):
        traffic = random_permutation_traffic(topo, seed=5)
        result = max_concurrent_flow(topo, traffic)
        groups = group_utilization(topo, result)
        print(f"{label}: per-flow throughput {result.throughput:.3f}")
        for group, utilization in sorted(groups.items()):
            print(f"  {group:18s} utilization {utilization:.2f}")
        print()


if __name__ == "__main__":
    main()
