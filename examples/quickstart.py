#!/usr/bin/env python3
"""Quickstart: how close is a random graph to the throughput upper bound?

Builds an RRG(N=40, k=15, r=10) — 40 switches, 10 switch-to-switch ports,
5 servers each — routes a random permutation optimally with the exact flow
LP, and compares against the paper's Theorem-1 + Cerf upper bound. Also
prints the §6.1 decomposition of the achieved throughput.

Run:  python examples/quickstart.py
"""

from repro import (
    aspl_lower_bound,
    average_shortest_path_length,
    decompose_throughput,
    max_concurrent_flow,
    random_permutation_traffic,
    random_regular_topology,
    throughput_upper_bound,
)


def main() -> None:
    num_switches = 40
    network_degree = 10
    servers_per_switch = 5

    topo = random_regular_topology(
        num_switches,
        network_degree,
        servers_per_switch=servers_per_switch,
        seed=2014,
    )
    traffic = random_permutation_traffic(topo, seed=7)
    print(f"topology : {topo}")
    print(f"traffic  : {traffic}")

    result = max_concurrent_flow(topo, traffic)
    bound = throughput_upper_bound(
        num_switches, network_degree, traffic.num_network_flows
    )
    print(f"\nper-flow throughput (exact LP) : {result.throughput:.4f}")
    print(f"upper bound (Theorem 1 + Cerf) : {bound:.4f}")
    print(f"ratio to bound                 : {result.throughput / bound:.3f}")

    aspl = average_shortest_path_length(topo)
    aspl_bound = aspl_lower_bound(num_switches, network_degree)
    print(f"\nASPL observed / lower bound    : {aspl:.3f} / {aspl_bound:.3f}")

    decomposition = decompose_throughput(topo, traffic, result)
    print("\nthroughput decomposition (T*f = C*U / (<D>*AS)):")
    print(f"  capacity C      : {decomposition.capacity:.1f}")
    print(f"  utilization U   : {decomposition.utilization:.3f}")
    print(f"  <D> (demand-wtd): {decomposition.aspl:.3f}")
    print(f"  stretch AS      : {decomposition.stretch:.3f}")
    print(f"  identity residual: {decomposition.identity_residual:.2e}")


if __name__ == "__main__":
    main()
